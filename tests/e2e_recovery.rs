//! Crash recovery e2e: the store, the detection models, and the
//! controller cluster all journal to disk through `athena-persist`, so a
//! deployment killed mid-run rehydrates from its data directory with
//! byte-identical logical state. The network itself persists across the
//! kill — it is the physical world; only the software stack is rebuilt.
//!
//! Set `ATHENA_CHAOS_SMOKE=1` for the lighter CI workload (same timeline,
//! same assertions).

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena::persist::PersistConfig;
use athena::telemetry::Telemetry;
use athena::types::{Ipv4Addr, SimDuration, SimTime, VirtualClock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Same seed as the chaos matrix: runs are reproducible bit-for-bit.
const SEED: u64 = 7;

/// Fault window (matches `e2e_failures`): strike mid-attack, heal later.
const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);

/// A checkpoint lands before the fault window so recovery exercises the
/// checkpoint-plus-WAL-tail path, not just a cold replay.
const CHECKPOINT_AT: SimTime = SimTime::from_secs(8);

/// The deployment is killed here — mid-attack, after the checkpoint.
const KILL_AT: SimTime = SimTime::from_secs(18);

/// Runs end here; the DDoS flood (8 s + 22 s) has just finished.
const END: SimTime = SimTime::from_secs(35);

fn smoke() -> bool {
    athena::types::env_flag("ATHENA_CHAOS_SMOKE")
}

fn scaled(n: usize) -> usize {
    if smoke() {
        n / 2
    } else {
        n
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fresh per-test data directories for the store and controller journals.
fn test_dirs() -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!(
        "athena-e2e-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("store"), base.join("controller"))
}

/// One Athena software stack: framework, chaos-wrapped cluster, and the
/// virtual clock that stamps its WAL records.
struct Deployment {
    athena: Athena,
    chaos: ChaosChannel<ControllerCluster>,
    clock: VirtualClock,
}

/// Builds (or *re*builds) the deployment. With `dirs`, the controller and
/// store journals attach under those directories — on a fresh directory
/// that is a no-op, on a populated one it recovers the pre-crash state.
fn deploy(topo: &Topology, tel: &Telemetry, dirs: (&Path, &Path)) -> Deployment {
    let (store_dir, ctrl_dir) = dirs;
    let mut cluster = ControllerCluster::new(topo);
    cluster
        .attach_persistence(PersistConfig::new(ctrl_dir), tel)
        .expect("controller journal");
    let athena = Athena::with_telemetry(AthenaConfig::default(), tel.clone());
    athena.attach(&mut cluster);
    let clock = VirtualClock::new();
    athena
        .runtime()
        .store
        .attach_persistence(PersistConfig::new(store_dir), clock.clone(), tel)
        .expect("store journal");
    let chaos = ChaosChannel::new(cluster, SEED);
    Deployment {
        athena,
        chaos,
        clock,
    }
}

/// Advances the network to `until` in one-second steps, keeping the WAL
/// clock in lockstep with simulated time so journal records carry
/// virtual-time stamps.
fn run_to(net: &mut Network, dep: &mut Deployment, until: SimTime) {
    while net.now() < until {
        let next = (net.now() + SimDuration::from_secs(1)).min(until);
        net.run_until(next, &mut dep.chaos);
        dep.clock.advance_to(net.now());
    }
}

/// Same, with a fault injector applying its due events along the way.
fn run_to_with_faults(
    net: &mut Network,
    dep: &mut Deployment,
    injector: &mut FaultInjector,
    until: SimTime,
) {
    while net.now() < until {
        let next = (net.now() + SimDuration::from_secs(1)).min(until);
        run_with_faults(net, next, &mut dep.chaos, injector);
        dep.clock.advance_to(net.now());
    }
}

/// The DDoS workload of the chaos matrix, bit-identical per seed.
fn ddos_load(topo: &Topology, net: &mut Network) -> Ipv4Addr {
    let victim = topo.hosts[0].ip;
    net.inject_flows(workload::benign_mix_on(
        topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));
    victim
}

/// Trains the DDoS detector on whatever the deployment's store holds and
/// returns the test confusion matrix — the detection verdict.
fn verdict(dep: &Deployment, victim: Ipv4Addr) -> athena::ml::ConfusionMatrix {
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = det.train(&dep.athena).expect("training");
    det.test(&dep.athena, &model).confusion
}

/// The durable identity of every live flow rule. Per-rule packet/byte
/// counters are deliberately excluded: they are soft state owned by the
/// dataplane, continuously refreshed by stats polling, and re-converge
/// after the next poll rather than being journaled per stats reply.
fn rule_identities(
    cluster: &ControllerCluster,
) -> Vec<(athena::types::Dpid, athena::types::AppId, u64, SimTime)> {
    cluster
        .flow_rules()
        .snapshot_records()
        .into_iter()
        .map(|r| (r.dpid, r.app, r.cookie, r.installed_at))
        .collect()
}

/// A deployment killed mid-run and rehydrated from disk holds the same
/// store contents — byte-identical — and renders the same detection
/// verdict as an identically-seeded run that was never interrupted; the
/// recovered stack then keeps detecting through the rest of the attack.
#[test]
fn killed_and_recovered_run_matches_uninterrupted_baseline() {
    let topo = Topology::enterprise();

    // Uninterrupted baseline, stopped (but not killed) at the kill point.
    let (want_contents, want_confusion) = {
        let dirs = test_dirs();
        let tel = Telemetry::off();
        let mut net = Network::new(topo.clone());
        let mut dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
        let victim = ddos_load(&topo, &mut net);
        run_to(&mut net, &mut dep, CHECKPOINT_AT);
        dep.athena.runtime().store.checkpoint().expect("checkpoint");
        dep.chaos.inner_mut().checkpoint().expect("checkpoint");
        run_to(&mut net, &mut dep, KILL_AT);
        let out = (dep.athena.runtime().store.contents(), verdict(&dep, victim));
        let _ = std::fs::remove_dir_all(dirs.0.parent().unwrap());
        out
    };

    // The same seeded run, killed at KILL_AT: the stack is dropped, only
    // the data directories and the network survive.
    let dirs = test_dirs();
    let tel = Telemetry::new();
    let mut net = Network::new(topo.clone());
    let victim = {
        let mut dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
        let victim = ddos_load(&topo, &mut net);
        run_to(&mut net, &mut dep, CHECKPOINT_AT);
        dep.athena.runtime().store.checkpoint().expect("checkpoint");
        dep.chaos.inner_mut().checkpoint().expect("checkpoint");
        run_to(&mut net, &mut dep, KILL_AT);
        victim
    };

    // Rehydrate from disk into a fresh stack.
    let mut dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
    assert_eq!(
        dep.athena.runtime().store.contents(),
        want_contents,
        "recovered store contents diverge from the uninterrupted run"
    );
    assert_eq!(
        verdict(&dep, victim),
        want_confusion,
        "recovered detection verdict diverges from the uninterrupted run"
    );
    let m = tel.metrics();
    assert!(
        m.counter("persist", "store_records_replayed").get() > 0,
        "recovery replayed no store WAL records"
    );
    assert_eq!(m.counter("persist", "store_tails_truncated").get(), 0);

    // The recovered deployment keeps serving: run out the attack and the
    // detector still clears the chaos-matrix bar.
    run_to(&mut net, &mut dep, END);
    let confusion = verdict(&dep, victim);
    let dr = confusion.detection_rate();
    let far = confusion.false_alarm_rate();
    assert!(dr > 0.75, "post-recovery detection rate collapsed: {dr}");
    assert!(far < 0.25, "post-recovery false alarm rate exploded: {far}");
    let _ = std::fs::remove_dir_all(dirs.0.parent().unwrap());
}

/// Chaos-matrix crash scenarios with persistence attached: after the
/// faulted run, a stack rebuilt from the data directories reproduces the
/// store contents byte-for-byte, the mastership map, the flow-rule store,
/// and the detection verdict.
#[test]
fn chaos_crash_scenarios_rehydrate_stack_from_disk() {
    for scenario in [Scenario::ControllerCrash, Scenario::StoreOutage] {
        let dirs = test_dirs();
        let tel = Telemetry::new();
        let topo = Topology::enterprise();
        let mut net = Network::new(topo.clone());
        let mut dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
        let victim = ddos_load(&topo, &mut net);
        let store_nodes = dep.athena.runtime().store.node_count();
        let plan = scenario.plan(&topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
        assert!(!plan.is_empty(), "{}: empty plan", scenario.name());
        let mut injector = FaultInjector::new(plan).with_store(dep.athena.runtime().store.clone());

        run_to_with_faults(&mut net, &mut dep, &mut injector, CHECKPOINT_AT);
        dep.athena.runtime().store.checkpoint().expect("checkpoint");
        dep.chaos.inner_mut().checkpoint().expect("checkpoint");
        run_to_with_faults(&mut net, &mut dep, &mut injector, END);
        assert!(injector.finished(), "{}: events left", scenario.name());

        // The live end-of-run views...
        let want_contents = dep.athena.runtime().store.contents();
        let want_confusion = verdict(&dep, victim);
        let want_masters: Vec<_> = topo
            .switches
            .iter()
            .map(|s| (s.dpid, dep.chaos.inner().master_of(s.dpid)))
            .collect();
        let want_rules = rule_identities(dep.chaos.inner());
        let want_rule_counters = dep.chaos.inner().flow_rules().snapshot_counters();
        drop(dep); // the crash

        // ...must all rehydrate from disk.
        let dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
        assert_eq!(
            dep.athena.runtime().store.contents(),
            want_contents,
            "{}: recovered store contents diverge",
            scenario.name()
        );
        assert_eq!(
            verdict(&dep, victim),
            want_confusion,
            "{}: recovered detection verdict diverges",
            scenario.name()
        );
        let got_masters: Vec<_> = topo
            .switches
            .iter()
            .map(|s| (s.dpid, dep.chaos.inner().master_of(s.dpid)))
            .collect();
        assert_eq!(
            got_masters,
            want_masters,
            "{}: recovered mastership map diverges",
            scenario.name()
        );
        assert_eq!(
            rule_identities(dep.chaos.inner()),
            want_rules,
            "{}: recovered flow-rule store diverges",
            scenario.name()
        );
        assert_eq!(
            dep.chaos.inner().flow_rules().snapshot_counters(),
            want_rule_counters,
            "{}: recovered flow-rule counters diverge",
            scenario.name()
        );
        let _ = std::fs::remove_dir_all(dirs.0.parent().unwrap());
    }
}

/// Recovery is idempotent: rehydrating the same data directory twice
/// yields byte-identical store contents both times.
#[test]
fn recovery_is_deterministic_across_repeated_rehydrations() {
    let dirs = test_dirs();
    let tel = Telemetry::off();
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    {
        let mut dep = deploy(&topo, &tel, (&dirs.0, &dirs.1));
        ddos_load(&topo, &mut net);
        run_to(&mut net, &mut dep, SimTime::from_secs(12));
    }
    let once = deploy(&topo, &tel, (&dirs.0, &dirs.1))
        .athena
        .runtime()
        .store
        .contents();
    let twice = deploy(&topo, &tel, (&dirs.0, &dirs.1))
        .athena
        .runtime()
        .store
        .contents();
    assert_eq!(once, twice, "two rehydrations of the same journal diverged");
    let _ = std::fs::remove_dir_all(dirs.0.parent().unwrap());
}
