//! The chaos matrix: every fault [`Scenario`] crossed with both live
//! detectors (DDoS, port scan), each run under a seeded [`FaultPlan`]
//! injected mid-attack. Every scenario must show *detection continuity*
//! (the detector still works despite the fault) and a *bounded miss
//! window* (Athena-polled monitoring never goes dark for longer than the
//! retry/failover machinery needs).
//!
//! Set `ATHENA_CHAOS_SMOKE=1` to run the same full matrix on a lighter
//! workload (CI keeps the gate under a minute); the matrix itself is
//! never reduced — no scenario is skipped in either mode.

use athena::apps::{DdosDetector, DdosDetectorConfig, ScanDetector, ScanDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, Query};
use athena::dataplane::{workload, Network, Topology};
use athena::faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena::telemetry::Telemetry;
use athena::types::{SimDuration, SimTime};

/// Matrix-wide plan seed: every scenario picks its fault target from
/// this, so the whole matrix is reproducible bit-for-bit.
const SEED: u64 = 7;

/// The fault strikes mid-attack and heals before the run ends.
const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);

/// Bounded miss window: consecutive Athena-polled feature batches may
/// never be further apart than three poll intervals (5 s each) — enough
/// for a stats-poll retry cycle or a mastership re-election, far less
/// than a monitoring outage.
const MISS_WINDOW_BOUND: SimDuration = SimDuration::from_secs(15);

fn smoke() -> bool {
    athena::types::env_flag("ATHENA_CHAOS_SMOKE")
}

/// Workload scale: the smoke profile halves flow counts (same timeline,
/// same assertions) to keep the CI gate fast.
fn scaled(n: usize) -> usize {
    if smoke() {
        n / 2
    } else {
        n
    }
}

struct ChaosRun {
    athena: Athena,
    net: Network,
    chaos: ChaosChannel<ControllerCluster>,
    injector: FaultInjector,
}

/// Builds the standard harness — enterprise topology, three-instance
/// cluster behind a chaos channel, Athena attached — and runs the
/// closure-injected workload to `until` with `scenario`'s fault plan
/// applied. The closure also sees the Athena instance so detectors can
/// deploy their live handlers before traffic starts.
fn run_scenario(
    scenario: Scenario,
    tel: Telemetry,
    until: SimTime,
    load: impl FnOnce(&Topology, &mut Network, &Athena),
) -> ChaosRun {
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_telemetry(AthenaConfig::default(), tel.clone());
    athena.attach(&mut cluster);
    let mut chaos = ChaosChannel::new(cluster, SEED);
    chaos.bind_telemetry(&tel);
    load(&topo, &mut net, &athena);
    let store_nodes = athena.runtime().store.node_count();
    let plan = scenario.plan(&topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
    assert!(!plan.is_empty(), "{}: empty plan", scenario.name());
    let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
    injector.bind_telemetry(&tel);
    run_with_faults(&mut net, until, &mut chaos, &mut injector);
    assert!(injector.finished(), "{}: events left", scenario.name());
    ChaosRun {
        athena,
        net,
        chaos,
        injector,
    }
}

/// The DDoS workload of `e2e_ddos`, time-shifted so the fault window
/// lands inside the attack.
fn ddos_load(topo: &Topology, net: &mut Network) -> athena::types::Ipv4Addr {
    let victim = topo.hosts[0].ip;
    net.inject_flows(workload::benign_mix_on(
        topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));
    victim
}

/// Asserts the bounded miss window: between the first Athena-marked poll
/// and the end of the run, consecutive Athena-polled feature timestamps
/// are never further apart than [`MISS_WINDOW_BOUND`].
fn assert_bounded_miss_window(run: &ChaosRun, scenario: Scenario, end: SimTime) {
    let mut stamps: Vec<SimTime> = run
        .athena
        .request_features(&Query::all())
        .iter()
        .filter(|r| r.meta.athena_polled)
        .map(|r| r.meta.timestamp)
        .collect();
    stamps.sort();
    stamps.dedup();
    assert!(
        !stamps.is_empty(),
        "{}: no Athena-polled features at all",
        scenario.name()
    );
    let mut worst = SimDuration::ZERO;
    for w in stamps.windows(2) {
        let gap = w[1].saturating_since(w[0]);
        if gap > worst {
            worst = gap;
        }
    }
    let tail = end.saturating_since(*stamps.last().unwrap());
    if tail > worst {
        worst = tail;
    }
    assert!(
        worst <= MISS_WINDOW_BOUND,
        "{}: monitoring went dark for {:?} (bound {:?})",
        scenario.name(),
        worst,
        MISS_WINDOW_BOUND
    );
}

/// Every scenario × the DDoS detector: the model still separates attack
/// from benign traffic, and monitoring never goes dark beyond the bound.
#[test]
fn chaos_matrix_ddos_detection_survives_every_scenario() {
    let end = SimTime::from_secs(35);
    for &scenario in Scenario::all() {
        let mut victim = None;
        let run = run_scenario(scenario, Telemetry::off(), end, |topo, net, _| {
            victim = Some(ddos_load(topo, net));
        });
        let detector = DdosDetector::new(DdosDetectorConfig {
            victim: victim.unwrap(),
            ..DdosDetectorConfig::default()
        });
        let model = detector
            .train(&run.athena)
            .unwrap_or_else(|e| panic!("{}: training failed: {e}", scenario.name()));
        let summary = detector.test(&run.athena, &model);
        let dr = summary.confusion.detection_rate();
        let far = summary.confusion.false_alarm_rate();
        assert!(
            dr > 0.75,
            "{}: detection rate collapsed under fault: {dr}",
            scenario.name()
        );
        assert!(
            far < 0.25,
            "{}: false alarm rate exploded under fault: {far}",
            scenario.name()
        );
        assert_bounded_miss_window(&run, scenario, end);
        assert!(
            run.net.delivered_bytes() > 0,
            "{}: network delivered nothing",
            scenario.name()
        );
    }
}

/// Every scenario × the port-scan detector: exactly the scanner is
/// flagged and mitigated, benign clients stay untouched.
#[test]
fn chaos_matrix_port_scan_detection_survives_every_scenario() {
    let end = SimTime::from_secs(25);
    for &scenario in Scenario::all() {
        let topo = Topology::enterprise();
        let scanner = topo.hosts[0].ip;
        let target = topo.hosts[30].ip;
        let mut det = ScanDetector::new(ScanDetectorConfig::default());
        let run = run_scenario(scenario, Telemetry::off(), end, |topo, net, athena| {
            det.deploy(athena);
            net.inject_flows(workload::benign_mix_on(
                topo,
                scaled(80),
                SimDuration::from_secs(20),
                401,
            ));
            net.inject_flows(workload::port_scan(
                scanner,
                target,
                scaled(40) as u16,
                SimTime::from_secs(5),
                402,
            ));
        });
        let flagged = det.detect(&run.athena);
        assert_eq!(
            flagged,
            vec![scanner],
            "{}: scanner not (exactly) flagged",
            scenario.name()
        );
        assert_eq!(
            run.athena.mitigated_hosts(),
            vec![scanner],
            "{}: scanner not mitigated",
            scenario.name()
        );
        assert_bounded_miss_window(&run, scenario, end);
    }
}

/// Same topology, workload, and seed ⇒ byte-identical outcomes: the
/// whole stack (dataplane, chaos channel, cluster, Athena pipeline,
/// injector) runs on seeded RNG and virtual time only.
#[test]
fn chaos_runs_are_deterministic_under_a_fixed_seed() {
    let end = SimTime::from_secs(30);
    let run = || {
        let r = run_scenario(
            Scenario::MessageDrop,
            Telemetry::off(),
            end,
            |topo, net, _| {
                ddos_load(topo, net);
            },
        );
        (
            r.net.delivered_bytes(),
            r.net.counters(),
            r.chaos.counters(),
            r.injector.counters(),
            r.athena.stored_feature_count(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identically-seeded chaos runs diverged");
}

/// Fault, retry, and failover counters all surface in the telemetry
/// report of a faulted run.
#[test]
fn fault_retry_and_failover_counters_surface_in_telemetry() {
    let tel = Telemetry::new();
    let end = SimTime::from_secs(30);
    let run = run_scenario(
        Scenario::ControllerCrash,
        tel.clone(),
        end,
        |topo, net, _| {
            ddos_load(topo, net);
        },
    );
    let m = tel.metrics();
    assert_eq!(m.counter("faults", "injected").get(), 2);
    assert_eq!(m.counter("faults", "controller_events").get(), 2);
    assert!(m.counter("failover", "elections").get() >= 2);
    assert!(m.counter("failover", "switches_moved").get() > 0);
    let rendered = tel.report().render();
    for needle in ["[faults]", "[failover]", "[retry]"] {
        assert!(
            rendered.contains(needle),
            "report misses {needle} counters:\n{rendered}"
        );
    }
    assert!(run.net.delivered_bytes() > 0);
}
