//! Failure injection across the stack: switch state loss, controller
//! mastership failover, and monitoring continuity through both.

use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, Query};
use athena::dataplane::{FlowSpec, Network, Topology};
use athena::types::{ControllerId, Dpid, FiveTuple, SimDuration, SimTime};

fn long_flow(topo: &Topology) -> FlowSpec {
    FlowSpec::new(
        FiveTuple::tcp(topo.hosts[0].ip, 1111, topo.hosts[5].ip, 80),
        SimTime::from_secs(1),
        SimDuration::from_secs(60),
        8_000_000,
    )
}

#[test]
fn switch_reboot_recovers_via_reinstallation() {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    net.inject_flows([long_flow(&topo)]);
    net.run_until(SimTime::from_secs(10), &mut cluster);
    let delivered_before = net.delivered_bytes();
    let punts_before = net.counters().packet_ins;
    assert!(delivered_before > 0);

    // The middle switch loses its flow table.
    let lost = net.wipe_switch(Dpid::new(2));
    assert!(lost > 0, "the transit switch held state");

    net.run_until(SimTime::from_secs(25), &mut cluster);
    // The flow re-punted and kept delivering.
    assert!(net.counters().packet_ins > punts_before, "no re-punt");
    assert!(
        net.delivered_bytes() > delivered_before + 5_000_000,
        "traffic did not recover: {} -> {}",
        delivered_before,
        net.delivered_bytes()
    );
}

#[test]
fn mastership_failover_keeps_athena_monitoring() {
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    net.inject_flows([long_flow(&topo)]);
    net.run_until(SimTime::from_secs(10), &mut cluster);

    // Fail the first edge switch over from instance 0 to instance 2.
    let dpid = topo.hosts[0].switch;
    assert_eq!(cluster.master_of(dpid), Some(ControllerId::new(0)));
    cluster.fail_over(dpid, ControllerId::new(2));
    assert_eq!(cluster.master_of(dpid), Some(ControllerId::new(2)));

    let before: Vec<_> = athena
        .request_features(&Query::parse(&format!("switch=={}", dpid.raw())).unwrap())
        .iter()
        .map(|r| r.meta.controller)
        .collect();
    net.run_until(SimTime::from_secs(30), &mut cluster);
    let after: Vec<_> = athena
        .request_features(&Query::parse(&format!("switch=={}", dpid.raw())).unwrap())
        .iter()
        .map(|r| r.meta.controller)
        .collect();

    // Monitoring continued (more records than before)…
    assert!(after.len() > before.len(), "monitoring stopped at failover");
    // …and the new records came from the new master's SB element.
    assert!(
        after.contains(&ControllerId::new(2)),
        "instance 2's SB element never picked the switch up"
    );
    // Traffic kept flowing throughout.
    assert!(net.delivered_bytes() > 10_000_000);
}

#[test]
fn wiping_an_unknown_switch_is_harmless() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(topo);
    assert_eq!(net.wipe_switch(Dpid::new(99)), 0);
}
