//! Tier-1 gate: the static-analysis rules must hold over the workspace.
//!
//! This runs the same engine as `cargo run -p athena-lint`, in-process,
//! so `cargo test` fails whenever a panic-freedom, unsafe-freedom,
//! lock-discipline, or error-hygiene violation lands in production code.

use std::path::Path;

#[test]
fn workspace_passes_athena_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = athena_lint::check_workspace(root).expect("lint engine runs");

    let mut failures: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == athena_lint::Severity::Error)
        .map(ToString::to_string)
        .collect();
    failures.extend(report.stale_allows.iter().cloned());

    assert!(
        failures.is_empty(),
        "athena-lint found {} violation(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(report.files_scanned > 50, "lint walked the whole workspace");
}

#[test]
fn lint_catches_a_seeded_violation() {
    // The gate must actually be able to fail: run the hot-path rule over
    // a seeded `unwrap()` and require a diagnostic.
    use athena_lint::rules::{NoPanicInHotPath, Rule, SourceFile};

    let file = SourceFile::new(
        "crates/openflow/src/codec.rs".to_string(),
        "fn decode(v: Option<u8>) -> u8 { v.unwrap() }".to_string(),
    );
    let config =
        athena_lint::load_config(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint.toml parses");
    let mut out = Vec::new();
    NoPanicInHotPath.check(&file, &config, &mut out);
    assert_eq!(out.len(), 1, "seeded unwrap must be flagged: {out:?}");
}

#[test]
fn lint_catches_println_in_library_code() {
    use athena_lint::rules::{NoPrintlnInLib, Rule, SourceFile};

    let config =
        athena_lint::load_config(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint.toml parses");

    let lib = SourceFile::new(
        "crates/store/src/cluster.rs".to_string(),
        "fn log(n: u64) { println!(\"{n}\"); }".to_string(),
    );
    let mut out = Vec::new();
    NoPrintlnInLib.check(&lib, &config, &mut out);
    assert_eq!(out.len(), 1, "library println must be flagged: {out:?}");

    // The same text in an exempt binary path is fine.
    let bin = SourceFile::new(
        "crates/bench/src/bin/table9_cbench.rs".to_string(),
        "fn log(n: u64) { println!(\"{n}\"); }".to_string(),
    );
    let mut out = Vec::new();
    NoPrintlnInLib.check(&bin, &config, &mut out);
    assert!(out.is_empty(), "exempt binaries may print: {out:?}");
}
