//! Tier-1 gate: the whole-workspace static analysis must hold.
//!
//! This runs the same engine as `cargo run -p athena-analyze --bin
//! athena-lint`, in-process, so `cargo test` fails whenever a
//! panic-freedom, unsafe-freedom, lock-discipline, lock-order, or
//! error-hygiene violation lands in production code — including
//! violations only visible through the workspace call graph (a panicking
//! helper three hops below a hot entry point, or a lock acquired in an
//! order that contradicts the derived acquisition graph).

use std::path::Path;

use athena_lint::rules::SourceFile;
use athena_lint::{Config, Severity};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_passes_athena_lint() {
    let analysis = athena_analyze::check_workspace(root()).expect("analysis engine runs");
    let report = &analysis.report;

    let mut failures: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect();
    failures.extend(report.stale_allows.iter().cloned());

    assert!(
        failures.is_empty(),
        "athena-lint found {} violation(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(report.files_scanned > 50, "lint walked the whole workspace");
}

#[test]
fn derived_lock_graph_is_cycle_free_and_ordered() {
    let analysis = athena_analyze::check_workspace(root()).expect("analysis engine runs");

    let cycles: Vec<_> = analysis
        .report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-cycle")
        .collect();
    assert!(
        cycles.is_empty(),
        "derived lock graph has cycles: {cycles:?}"
    );

    // The derivation found real structure, not an empty graph.
    assert!(
        analysis.lock_graph.locks.len() >= 10,
        "expected the workspace's lock population, got {:?}",
        analysis.lock_graph.locks
    );
    assert!(
        !analysis.lock_graph.edges.is_empty(),
        "expected derived acquisition-order edges"
    );
    // Acyclic ⇒ the suggested order is a valid topological sort covering
    // every lock (cycle members would simply be appended, so the length
    // check alone is not enough — the cycle assert above is).
    assert_eq!(
        analysis.lock_graph.suggested_order.len(),
        analysis.lock_graph.locks.len()
    );
}

#[test]
fn hot_propagation_reaches_transitive_helpers() {
    // None of these files appears in [analyze] hot_entries: they are
    // reached only through the call graph (forwarding path → match/route
    // helpers; sharded engine → ordered fan-out). The old hand-maintained
    // per-file hot list never covered them. (`topology.rs::shortest_path`
    // used to be on this list; the ECMP controller stub now routes over
    // cached BFS distance maps built from `Topology::adjacency`, so the
    // per-packet path no longer touches it.)
    let analysis = athena_analyze::check_workspace(root()).expect("analysis engine runs");
    for expected in [
        "crates/openflow/src/match_fields.rs::matches",
        "crates/dataplane/src/topology.rs::adjacency",
        "crates/openflow/src/table.rs::lookup_at",
        "crates/parallel/src/lib.rs::run_ordered",
    ] {
        assert!(
            analysis.hot_functions.iter().any(|h| h == expected),
            "{expected} should be transitively hot; got {} hot functions",
            analysis.hot_functions.len()
        );
    }
}

/// A minimal config for the seeded-violation tests below.
fn test_config(extra: &str) -> Config {
    Config::parse(&format!(
        "[analyze]\n\
         hot_entries = [\"crates/x/src/entry.rs::*\"]\n\
         lock_order = [\"x/a\", \"x/b\"]\n\
         lock_helpers = [\"lock_std\"]\n\
         {extra}\n\
         [lint]\n\
         bus_calls = [\"dispatch\"]\n\
         println_exempt = []\n\
         wallclock_exempt = []\n"
    ))
    .expect("test config parses")
}

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile::new(path.to_string(), text.to_string())
}

#[test]
fn propagated_panic_carries_call_chain_witness() {
    // The unwrap lives two files away from the hot entry point; only the
    // call graph connects them. The finding must carry the chain.
    let config = test_config("");
    let files = [
        file(
            "crates/x/src/entry.rs",
            "pub fn per_packet(v: u8) -> u8 { crate::helper::step(v) }",
        ),
        file(
            "crates/x/src/helper.rs",
            "pub fn step(v: u8) -> u8 { deep(v) }\n\
             pub fn deep(v: u8) -> u8 { Some(v).unwrap() }",
        ),
    ];
    let analysis = athena_analyze::analyze_sources(&config, &files);
    let diags: Vec<_> = analysis
        .report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-panic-in-hot-path")
        .collect();
    assert_eq!(diags.len(), 1, "{:?}", analysis.report.diagnostics);
    assert_eq!(diags[0].file, "crates/x/src/helper.rs");
    assert!(
        !diags[0].witness.is_empty(),
        "propagated finding must explain how the site became hot"
    );
    assert!(
        diags[0].witness.iter().any(|h| h.contains("per_packet")),
        "witness should trace back to the hot entry: {:?}",
        diags[0].witness
    );
}

#[test]
fn seeded_lock_inversion_fails_static_gate() {
    // lock_order declares a before b; this code acquires b then a. The
    // derived edge `x/b` → `x/a` must contradict the declared order.
    let config = test_config("");
    let files = [file(
        "crates/x/src/entry.rs",
        "use parking_lot::Mutex;\n\
         pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S {\n\
             pub fn inverted(&self) -> u32 {\n\
                 let gb = self.b.lock();\n\
                 let ga = self.a.lock();\n\
                 *ga + *gb\n\
             }\n\
         }",
    )];
    let analysis = athena_analyze::analyze_sources(&config, &files);
    let diags: Vec<_> = analysis
        .report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-order-violation")
        .collect();
    assert_eq!(diags.len(), 1, "{:?}", analysis.report.diagnostics);
    assert!(
        diags[0].message.contains("`x/b` → `x/a`"),
        "{}",
        diags[0].message
    );

    // The same acquisitions split across two functions joined by a call
    // edge must be caught too — the graph-aware part.
    let files = [file(
        "crates/x/src/entry.rs",
        "use parking_lot::Mutex;\n\
         pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S {\n\
             pub fn outer(&self) -> u32 {\n\
                 let gb = self.b.lock();\n\
                 *gb + self.inner()\n\
             }\n\
             fn inner(&self) -> u32 {\n\
                 *self.a.lock()\n\
             }\n\
         }",
    )];
    let analysis = athena_analyze::analyze_sources(&config, &files);
    assert!(
        analysis
            .report
            .diagnostics
            .iter()
            .any(|d| d.rule == "lock-order-violation"),
        "cross-function inversion missed: {:?}",
        analysis.report.diagnostics
    );
}

#[test]
fn stale_allow_entries_fail_the_gate_with_a_pointer() {
    let config = test_config(
        "[[allow]]\n\
         rule = \"no-panic-in-hot-path\"\n\
         file = \"crates/x/src/entry.rs\"\n\
         pattern = \"nothing matches this\"\n\
         reason = \"stale on purpose\"\n",
    );
    let files = [file(
        "crates/x/src/entry.rs",
        "pub fn per_packet(v: u8) -> u8 { v }",
    )];
    let analysis = athena_analyze::analyze_sources(&config, &files);
    assert!(
        analysis.report.has_errors(),
        "stale allow must fail the gate"
    );
    assert_eq!(analysis.report.stale_allows.len(), 1);
    assert!(
        analysis.report.stale_allows[0].contains("lint.toml:"),
        "stale-allow report must point at the line to delete: {}",
        analysis.report.stale_allows[0]
    );
}

#[test]
fn lint_catches_println_in_library_code() {
    use athena_lint::rules::{NoPrintlnInLib, Rule};

    let config = athena_lint::load_config(root()).expect("lint.toml parses");

    let lib = file(
        "crates/store/src/cluster.rs",
        "fn log(n: u64) { println!(\"{n}\"); }",
    );
    let mut out = Vec::new();
    NoPrintlnInLib.check(&lib, &config, &mut out);
    assert_eq!(out.len(), 1, "library println must be flagged: {out:?}");

    // The same text in an exempt binary path is fine.
    let bin = file(
        "crates/bench/src/bin/table9_cbench.rs",
        "fn log(n: u64) { println!(\"{n}\"); }",
    );
    let mut out = Vec::new();
    NoPrintlnInLib.check(&bin, &config, &mut out);
    assert!(out.is_empty(), "exempt binaries may print: {out:?}");
}
