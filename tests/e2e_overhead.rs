//! The Table IX invariant end-to-end: Athena's overhead is real and
//! ordered — bare controller > Athena-without-DB > Athena-with-DB in
//! Cbench throughput — and the store actually receives the features.
//!
//! Also the telemetry gate: running the same simulation with telemetry
//! enabled changes the simulated results not at all and the wall clock
//! by less than 10 % — and the same holds for the full observe layer
//! (causal tracing + series sampling + alert evaluation) on top.

use athena::controller::cbench::{summarize, throughput_round, CbenchResponder};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, NetworkCounters, Topology};
use athena::observe::Observe;
use athena::telemetry::Telemetry;
use athena::types::{SimDuration, SimTime};
use std::time::{Duration, Instant};

fn cluster_with(athena: Option<&Athena>) -> ControllerCluster {
    let topo = Topology::enterprise();
    let mut cluster = ControllerCluster::bare(&topo);
    cluster.add_processor(Box::new(CbenchResponder));
    if let Some(a) = athena {
        a.attach(&mut cluster);
    }
    cluster
}

fn avg_rate(athena: Option<&Athena>) -> f64 {
    let mut cluster = cluster_with(athena);
    let rounds: Vec<_> = (0..5)
        .map(|i| throughput_round(&mut cluster, 4_000, i))
        .collect();
    // Every packet-in got exactly one flow-mod in every configuration.
    assert!(rounds.iter().all(|r| r.responses == r.requests));
    summarize(&rounds).avg
}

#[test]
fn cbench_overhead_ordering_holds() {
    let without = avg_rate(None);

    let with_db = Athena::new(AthenaConfig::default());
    let with_db_rate = avg_rate(Some(&with_db));

    let no_db = Athena::new(AthenaConfig {
        store_enabled: false,
        ..AthenaConfig::default()
    });
    let no_db_rate = avg_rate(Some(&no_db));

    assert!(
        without > no_db_rate,
        "athena must cost something: {without} vs {no_db_rate}"
    );
    assert!(
        no_db_rate > with_db_rate,
        "db publication must cost more: {no_db_rate} vs {with_db_rate}"
    );

    // The with-DB deployment actually stored the per-event features.
    assert!(
        with_db.stored_feature_count() > 10_000,
        "features stored: {}",
        with_db.stored_feature_count()
    );
    // The no-DB deployment stored nothing.
    assert_eq!(no_db.stored_feature_count(), 0);
}

/// One full simulated deployment: enterprise topology, benign workload,
/// Athena attached, optionally with the observe layer (tracing +
/// sampling + alerting) bound everywhere. Returns the deterministic
/// outcomes plus the wall clock the run took.
fn simulate(tel: &Telemetry, obs: Option<&Observe>) -> (NetworkCounters, usize, Duration) {
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(tel);
    let mut cluster = ControllerCluster::new(&topo);
    let athena = match obs {
        Some(obs) => {
            net.bind_observe(obs);
            Athena::with_observe(AthenaConfig::default(), tel.clone(), obs.clone())
        }
        None => Athena::with_telemetry(AthenaConfig::default(), tel.clone()),
    };
    athena.attach(&mut cluster);
    net.inject_flows(workload::benign_mix_on(
        &topo,
        60,
        SimDuration::from_secs(8),
        1,
    ));
    let start = Instant::now();
    net.run_until(SimTime::from_secs(12), &mut cluster);
    let wall = start.elapsed();
    (net.counters(), athena.stored_feature_count(), wall)
}

#[test]
fn telemetry_changes_results_not_at_all_and_wall_clock_under_10_percent() {
    // Interleave off/on/observe repetitions and keep each
    // configuration's best time: the minimum is the stable estimator
    // under scheduler noise.
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut best_obs = Duration::MAX;
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let (counters, stored, wall) = simulate(&Telemetry::off(), None);
        best_off = best_off.min(wall);
        outcomes.push((counters, stored));
        let on = Telemetry::new();
        let (counters, stored, wall) = simulate(&on, None);
        best_on = best_on.min(wall);
        outcomes.push((counters, stored));
        // The enabled run actually observed the deployment.
        let report = on.report();
        assert!(!report.is_empty(), "enabled telemetry must collect data");
        // Third arm: the full observe layer on top of telemetry.
        let tel = Telemetry::new();
        let obs = Observe::with_telemetry(7, &tel);
        let (counters, stored, wall) = simulate(&tel, Some(&obs));
        best_obs = best_obs.min(wall);
        outcomes.push((counters, stored));
        assert!(!obs.trace_ids().is_empty(), "observe must record traces");
        assert!(obs.samples() > 0, "observe must sample the registry");
    }
    // Identical simulated outcomes in every repetition: off, telemetry,
    // or the full observe pipeline.
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "telemetry/observe must not change simulated results: {outcomes:?}"
    );
    let ratio = best_on.as_secs_f64() / best_off.as_secs_f64();
    assert!(
        ratio < 1.10,
        "telemetry wall-clock overhead must stay under 10%: {ratio:.3} \
         (on {best_on:?} vs off {best_off:?})"
    );
    let obs_ratio = best_obs.as_secs_f64() / best_off.as_secs_f64();
    assert!(
        obs_ratio < 1.10,
        "observe wall-clock overhead must stay under 10%: {obs_ratio:.3} \
         (observe {best_obs:?} vs off {best_off:?})"
    );
}

#[test]
fn store_receives_replicated_journaled_writes() {
    let athena = Athena::new(AthenaConfig::default());
    let mut cluster = cluster_with(Some(&athena));
    let _ = throughput_round(&mut cluster, 2_000, 9);
    let store = &athena.runtime().store;
    let metrics = store.metrics();
    assert!(metrics.inserts >= 2_000);
    // Replication factor 2: every insert hit two nodes' journals.
    assert_eq!(metrics.replica_writes, metrics.inserts * 2);
    assert!(store.total_journal_bytes() > 0);
}
