//! The Table IX invariant end-to-end: Athena's overhead is real and
//! ordered — bare controller > Athena-without-DB > Athena-with-DB in
//! Cbench throughput — and the store actually receives the features.

use athena::controller::cbench::{summarize, throughput_round, CbenchResponder};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::Topology;

fn cluster_with(athena: Option<&Athena>) -> ControllerCluster {
    let topo = Topology::enterprise();
    let mut cluster = ControllerCluster::bare(&topo);
    cluster.add_processor(Box::new(CbenchResponder));
    if let Some(a) = athena {
        a.attach(&mut cluster);
    }
    cluster
}

fn avg_rate(athena: Option<&Athena>) -> f64 {
    let mut cluster = cluster_with(athena);
    let rounds: Vec<_> = (0..5)
        .map(|i| throughput_round(&mut cluster, 4_000, i))
        .collect();
    // Every packet-in got exactly one flow-mod in every configuration.
    assert!(rounds.iter().all(|r| r.responses == r.requests));
    summarize(&rounds).avg
}

#[test]
fn cbench_overhead_ordering_holds() {
    let without = avg_rate(None);

    let with_db = Athena::new(AthenaConfig::default());
    let with_db_rate = avg_rate(Some(&with_db));

    let no_db = Athena::new(AthenaConfig {
        store_enabled: false,
        ..AthenaConfig::default()
    });
    let no_db_rate = avg_rate(Some(&no_db));

    assert!(
        without > no_db_rate,
        "athena must cost something: {without} vs {no_db_rate}"
    );
    assert!(
        no_db_rate > with_db_rate,
        "db publication must cost more: {no_db_rate} vs {with_db_rate}"
    );

    // The with-DB deployment actually stored the per-event features.
    assert!(
        with_db.stored_feature_count() > 10_000,
        "features stored: {}",
        with_db.stored_feature_count()
    );
    // The no-DB deployment stored nothing.
    assert_eq!(no_db.stored_feature_count(), 0);
}

#[test]
fn store_receives_replicated_journaled_writes() {
    let athena = Athena::new(AthenaConfig::default());
    let mut cluster = cluster_with(Some(&athena));
    let _ = throughput_round(&mut cluster, 2_000, 9);
    let store = &athena.runtime().store;
    let metrics = store.metrics();
    assert!(metrics.inserts >= 2_000);
    // Replication factor 2: every insert hit two nodes' journals.
    assert_eq!(metrics.replica_writes, metrics.inserts * 2);
    assert!(store.total_journal_bytes() > 0);
}
