//! Shared deployment harness for the end-to-end suites.
//!
//! Every e2e scenario starts the same way: build a topology, wire a
//! `Network` to a `ControllerCluster`, attach Athena, inject seeded
//! workloads, and advance virtual time. This module owns that
//! boilerplate so each suite only states what is *different* about its
//! scenario. Each integration test is its own crate, so unused helpers
//! are expected per-suite.
#![allow(dead_code)]

use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, FlowSpec, Network, Topology};
use athena::types::{Ipv4Addr, SimDuration, SimTime};

/// A live simulated SDN with Athena attached: network, controller
/// cluster, and the framework instance, plus the topology they share.
pub struct Deployment {
    pub topo: Topology,
    pub net: Network,
    pub cluster: ControllerCluster,
    pub athena: Athena,
}

impl Deployment {
    /// Advances the simulation to `secs` of virtual time.
    pub fn run_until_secs(&mut self, secs: u64) {
        self.net
            .run_until(SimTime::from_secs(secs), &mut self.cluster);
    }

    /// Injects a seeded benign background mix across the topology.
    pub fn inject_benign(&mut self, n_flows: usize, duration_secs: u64, seed: u64) {
        let flows = workload::benign_mix_on(
            &self.topo,
            n_flows,
            SimDuration::from_secs(duration_secs),
            seed,
        );
        self.net.inject_flows(flows);
    }

    /// Injects an arbitrary pre-built flow list.
    pub fn inject(&mut self, flows: Vec<FlowSpec>) {
        self.net.inject_flows(flows);
    }

    /// Injects a DDoS flood toward `victim` (paper scenario 1 shape).
    pub fn inject_ddos(&mut self, victim: Ipv4Addr, start_secs: u64, n_flows: usize, seed: u64) {
        let flows = workload::ddos_flood(
            &self.topo,
            victim,
            workload::DdosParams {
                start: SimTime::from_secs(start_secs),
                duration: SimDuration::from_secs(22),
                n_flows,
                ..workload::DdosParams::default()
            },
            seed,
        );
        self.net.inject_flows(flows);
    }
}

/// Deploys Athena on `topo` with extra controller configuration (e.g.
/// NAE processors) applied before attach.
pub fn deploy_on_with(
    topo: Topology,
    configure: impl FnOnce(&mut ControllerCluster),
) -> Deployment {
    let net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    configure(&mut cluster);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    Deployment {
        topo,
        net,
        cluster,
        athena,
    }
}

/// Deploys Athena on `topo` with the default controller cluster.
pub fn deploy_on(topo: Topology) -> Deployment {
    deploy_on_with(topo, |_| {})
}

/// Deploys Athena on the enterprise topology.
pub fn deploy_enterprise() -> Deployment {
    deploy_on(Topology::enterprise())
}

/// The canonical scenario-1 deployment: enterprise topology, benign mix
/// (seed 101) plus a flood toward `hosts[0]` (seed 102), advanced to
/// 35 s. Returns the deployment and the victim address.
pub fn ddos_scenario(n_benign: usize, n_attack: usize) -> (Deployment, Ipv4Addr) {
    let mut d = deploy_enterprise();
    let victim = d.topo.hosts[0].ip;
    d.inject_benign(n_benign, 30, 101);
    d.inject_ddos(victim, 8, n_attack, 102);
    d.run_until_secs(35);
    (d, victim)
}
