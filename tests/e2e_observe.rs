//! The chaos-alert round trip: every fault [`Scenario`] must *fire* its
//! mapped SLO alert during the fault window and *clear* it after
//! recovery, with the deterministic fire/clear stream byte-identical
//! across reruns. Plus the causal-trace gate: one trace id must stitch
//! a packet-in across at least three subsystems, exported as
//! Chrome-trace JSON (`target/chrome-trace.json`) alongside the
//! point-in-time health report (`target/observe-report.json`).
//!
//! Set `ATHENA_CHAOS_SMOKE=1` for the lighter CI workload (same matrix,
//! same assertions).

use std::collections::{BTreeMap, BTreeSet};

use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena::observe::Observe;
use athena::telemetry::{names, Telemetry};
use athena::types::{SimDuration, SimTime};

/// Matrix-wide plan seed, matching `e2e_failures`.
const SEED: u64 = 7;

const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);
const END: SimTime = SimTime::from_secs(35);

fn scaled(n: usize) -> usize {
    if athena::types::env_flag("ATHENA_CHAOS_SMOKE") {
        n / 2
    } else {
        n
    }
}

/// The alert each fault family must round-trip (fire in the fault
/// window, clear after recovery). All mapped rules are deterministic.
fn mapped_alert(scenario: Scenario) -> &'static str {
    match scenario {
        Scenario::LinkFlap | Scenario::LinkDegrade => "links-degraded",
        Scenario::SwitchReboot => "switch-rebooted",
        Scenario::ControllerCrash => "controller-instance-down",
        Scenario::StoreOutage | Scenario::StorePartition => "store-nodes-down",
        Scenario::MessageDrop => "messages-dropped",
        Scenario::MessageDelay => "messages-delayed",
        Scenario::MessageDuplicate => "messages-duplicated",
    }
}

struct ObservedRun {
    athena: Athena,
    net: Network,
    tel: Telemetry,
    obs: Observe,
}

/// The `e2e_failures` chaos harness with the observe layer bound
/// everywhere: dataplane (sampling driver + packet-in spans), chaos
/// channel (fault events), cluster (controller spans), and the Athena
/// runtime (store/compute/core spans).
fn run_observed(scenario: Scenario) -> ObservedRun {
    let tel = Telemetry::new();
    let obs = Observe::with_telemetry(SEED, &tel);
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(&tel);
    net.bind_observe(&obs);
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_observe(AthenaConfig::default(), tel.clone(), obs.clone());
    athena.attach(&mut cluster);
    let mut chaos = ChaosChannel::new(cluster, SEED);
    chaos.bind_telemetry(&tel);
    chaos.bind_observe(&obs);

    let victim = topo.hosts[0].ip;
    net.inject_flows(workload::benign_mix_on(
        &topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));

    let store_nodes = athena.runtime().store.node_count();
    let plan = scenario.plan(&topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
    assert!(!plan.is_empty(), "{}: empty plan", scenario.name());
    let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
    injector.bind_telemetry(&tel);
    run_with_faults(&mut net, END, &mut chaos, &mut injector);
    assert!(injector.finished(), "{}: events left", scenario.name());
    ObservedRun {
        athena,
        net,
        tel,
        obs,
    }
}

/// Renders the deterministic alert stream — the byte-compared form.
fn det_alert_stream(obs: &Observe) -> Vec<String> {
    obs.deterministic_alert_events()
        .iter()
        .map(|e| e.render())
        .collect()
}

/// Every scenario fires its mapped alert inside the fault window and
/// clears it before the run ends; two identically-seeded runs produce
/// byte-identical deterministic alert streams.
#[test]
fn chaos_matrix_round_trips_every_mapped_alert() {
    for &scenario in Scenario::all() {
        let run = run_observed(scenario);
        let rule = mapped_alert(scenario);
        let events: Vec<_> = run
            .obs
            .alert_events()
            .into_iter()
            .filter(|e| e.rule == rule)
            .collect();
        let fire = events.iter().find(|e| e.fired).unwrap_or_else(|| {
            panic!(
                "{}: alert {rule} never fired; events: {:?}",
                scenario.name(),
                run.obs.alert_events()
            )
        });
        assert!(
            fire.at >= INJECT_AT && fire.at <= RECOVER_AT,
            "{}: {rule} fired at {:?}, outside the fault window",
            scenario.name(),
            fire.at
        );
        let clear = events.iter().find(|e| !e.fired).unwrap_or_else(|| {
            panic!(
                "{}: alert {rule} fired but never cleared; firing at end: {:?}",
                scenario.name(),
                run.obs.firing()
            )
        });
        assert!(
            clear.at > fire.at && clear.at <= END,
            "{}: {rule} cleared at {:?} (fired {:?})",
            scenario.name(),
            clear.at,
            fire.at
        );
        assert!(
            !run.obs.firing().contains(&rule),
            "{}: {rule} still firing at end of run",
            scenario.name()
        );
        assert!(run.net.delivered_bytes() > 0);

        // Byte-identical deterministic stream on an identically-seeded
        // rerun — fire/clear transitions are part of the replayable
        // behavior, not best-effort monitoring.
        let rerun = run_observed(scenario);
        assert_eq!(
            det_alert_stream(&run.obs),
            det_alert_stream(&rerun.obs),
            "{}: deterministic alert streams diverged across reruns",
            scenario.name()
        );
    }
}

/// One trace id stitches a packet-in across at least three subsystems
/// (dataplane → controller → core/store), and the exports land in
/// `target/` for CI to archive.
#[test]
fn one_trace_spans_at_least_three_subsystems_and_exports() {
    let run = run_observed(Scenario::ControllerCrash);
    let spans = run.obs.spans();
    assert!(!spans.is_empty(), "no causal spans recorded");

    let mut by_trace: BTreeMap<u64, BTreeSet<&'static str>> = BTreeMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().insert(s.subsystem);
    }
    let (best_trace, best) = by_trace
        .iter()
        .max_by_key(|(_, subs)| subs.len())
        .expect("at least one trace");
    assert!(
        best.len() >= 3,
        "no single trace crosses >= 3 subsystems; best {best_trace:#x} covers {best:?}"
    );

    // Trace ids are seed-derived, so the stitched trace is replayable.
    assert!(run.obs.trace_ids().contains(best_trace));

    let chrome = run.obs.export_chrome_trace();
    assert!(
        chrome.contains(&format!("{best_trace:#018x}")),
        "chrome trace does not mention trace id {best_trace:#018x}"
    );
    let folded = run.obs.export_folded();
    assert!(folded.contains("dataplane/packet_in"));

    std::fs::create_dir_all("target").unwrap();
    std::fs::write("target/chrome-trace.json", &chrome).unwrap();
    run.obs
        .report()
        .save_json("target/observe-report.json")
        .unwrap();
    let report = run.obs.report();
    assert!(report.spans > 0 && report.samples > 0);
}

/// Every metric the full stack emits under chaos is declared in the
/// central `athena_telemetry::names` registry.
#[test]
fn full_stack_run_emits_only_declared_metric_names() {
    let run = run_observed(Scenario::StoreOutage);
    let undeclared = names::undeclared(&run.tel.report());
    assert!(
        undeclared.is_empty(),
        "metrics emitted outside the names registry: {undeclared:?}"
    );
    // The run actually exercised the pipeline end to end.
    assert!(run.athena.stored_feature_count() > 0);
}
