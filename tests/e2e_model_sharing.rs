//! Off-the-shelf model sharing (paper §II): a detection model trained on
//! one Athena deployment serializes to JSON, loads on a second deployment,
//! and produces identical verdicts there. The disk round-trip goes through
//! the persist layer's checksummed snapshot files, so a shared model is
//! also tamper-evident.

use athena::apps::dataset::{DdosDataset, FEATURES};
use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::compute::ComputeCluster;
use athena::core::{DetectionModel, DetectorManager};
use athena::ml::algorithms::forest::ForestParams;
use athena::ml::algorithms::gbt::GbtParams;
use athena::ml::algorithms::gmm::GmmParams;
use athena::ml::algorithms::kmeans::KMeansParams;
use athena::ml::algorithms::linear::LinearParams;
use athena::ml::Algorithm;
use athena::types::SimTime;

fn features() -> Vec<String> {
    FEATURES.iter().map(|s| (*s).to_owned()).collect()
}

/// Every Table-IV algorithm family the frameworks trains plus the
/// threshold rule — the full menu a deployment might share.
fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::GradientBoostedTrees(GbtParams::default()),
        Algorithm::decision_tree(),
        Algorithm::logistic_regression(),
        Algorithm::NaiveBayes,
        Algorithm::RandomForest(ForestParams {
            trees: 10,
            ..ForestParams::default()
        }),
        Algorithm::Svm(Default::default()),
        Algorithm::GaussianMixture(GmmParams::default()),
        Algorithm::KMeans(KMeansParams {
            k: 4,
            ..KMeansParams::default()
        }),
        Algorithm::Lasso {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
        Algorithm::Linear(LinearParams::default()),
        Algorithm::Ridge {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
        Algorithm::threshold(4, 350.0),
    ]
}

#[test]
fn models_roundtrip_through_json_with_identical_verdicts() {
    let data = DdosDataset::generate(10_000, 8);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let dm = DetectorManager::new(ComputeCluster::new(2));
    for algorithm in [
        Algorithm::kmeans(4),
        Algorithm::logistic_regression(),
        Algorithm::decision_tree(),
        Algorithm::NaiveBayes,
        Algorithm::threshold(4, 350.0),
    ] {
        let model = dm
            .generate_from_points(
                data.points.clone(),
                &features(),
                &det.preprocessor(),
                &algorithm,
            )
            .unwrap();
        let json = model.to_json().unwrap();
        let loaded = DetectionModel::from_json(&json).unwrap();
        assert_eq!(loaded, model, "{}", algorithm.name());

        // Identical verdicts on a second "deployment" (fresh manager).
        let other = DetectorManager::new(ComputeCluster::new(5));
        let a = dm.validate_points(&data.points, &model);
        let b = other.validate_points(&data.points, &loaded);
        assert_eq!(a.confusion, b.confusion, "{}", algorithm.name());
    }
}

#[test]
fn every_algorithm_roundtrips_through_disk_snapshot() {
    let dir = std::env::temp_dir().join(format!("athena-model-share-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = DdosDataset::generate(6_000, 8);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let dm = DetectorManager::new(ComputeCluster::new(2));
    for (i, algorithm) in all_algorithms().into_iter().enumerate() {
        let model = dm
            .generate_from_points(
                data.points.clone(),
                &features(),
                &det.preprocessor(),
                &algorithm,
            )
            .unwrap();
        let path = dir.join(format!("model-{i}.snap"));
        model.save_to(&path, SimTime::from_secs(1)).unwrap();
        let loaded = DetectionModel::load_from(&path).unwrap();
        assert_eq!(loaded, model, "{}", algorithm.name());

        // Identical verdicts on a second "deployment" loading from disk.
        let other = DetectorManager::new(ComputeCluster::new(5));
        let a = dm.validate_points(&data.points, &model);
        let b = other.validate_points(&data.points, &loaded);
        assert_eq!(a.confusion, b.confusion, "{}", algorithm.name());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_model_snapshot_is_rejected_not_misloaded() {
    let dir = std::env::temp_dir().join(format!("athena-model-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = DdosDataset::generate(2_000, 8);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let dm = DetectorManager::new(ComputeCluster::new(2));
    let model = dm
        .generate_from_points(
            data.points.clone(),
            &features(),
            &det.preprocessor(),
            &Algorithm::NaiveBayes,
        )
        .unwrap();
    let path = dir.join("model.snap");
    model.save_to(&path, SimTime::from_secs(1)).unwrap();

    // Flip one payload bit: the checksum must reject the file outright.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    assert!(DetectionModel::load_from(&path).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_model_json_is_rejected() {
    assert!(DetectionModel::from_json("{}").is_err());
    assert!(DetectionModel::from_json("not json").is_err());
}
