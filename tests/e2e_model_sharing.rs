//! Off-the-shelf model sharing (paper §II): a detection model trained on
//! one Athena deployment serializes to JSON, loads on a second deployment,
//! and produces identical verdicts there.

use athena::apps::dataset::{DdosDataset, FEATURES};
use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::compute::ComputeCluster;
use athena::core::{DetectionModel, DetectorManager};
use athena::ml::Algorithm;

fn features() -> Vec<String> {
    FEATURES.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn models_roundtrip_through_json_with_identical_verdicts() {
    let data = DdosDataset::generate(10_000, 8);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let dm = DetectorManager::new(ComputeCluster::new(2));
    for algorithm in [
        Algorithm::kmeans(4),
        Algorithm::logistic_regression(),
        Algorithm::decision_tree(),
        Algorithm::NaiveBayes,
        Algorithm::threshold(4, 350.0),
    ] {
        let model = dm
            .generate_from_points(
                data.points.clone(),
                &features(),
                &det.preprocessor(),
                &algorithm,
            )
            .unwrap();
        let json = model.to_json().unwrap();
        let loaded = DetectionModel::from_json(&json).unwrap();
        assert_eq!(loaded, model, "{}", algorithm.name());

        // Identical verdicts on a second "deployment" (fresh manager).
        let other = DetectorManager::new(ComputeCluster::new(5));
        let a = dm.validate_points(&data.points, &model);
        let b = other.validate_points(&data.points, &loaded);
        assert_eq!(a.confusion, b.confusion, "{}", algorithm.name());
    }
}

#[test]
fn malformed_model_json_is_rejected() {
    assert!(DetectionModel::from_json("{}").is_err());
    assert!(DetectionModel::from_json("not json").is_err());
}
