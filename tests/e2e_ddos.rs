//! End-to-end DDoS detection over the simulated enterprise SDN: the
//! paper's scenario 1 from traffic to verdict to mitigation.

mod common;

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::core::Query;
use common::{ddos_scenario, Deployment};

fn deploy() -> (Deployment, athena::types::Ipv4Addr) {
    ddos_scenario(120, 250)
}

#[test]
fn detector_separates_attack_from_benign_traffic_live() {
    let (d, victim) = deploy();
    let detector = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = detector.train(&d.athena).expect("training");
    assert!(model.trained_on > 1_000, "trained on {}", model.trained_on);

    let summary = detector.test(&d.athena, &model);
    let dr = summary.confusion.detection_rate();
    let far = summary.confusion.false_alarm_rate();
    assert!(dr > 0.9, "detection rate {dr}");
    assert!(far < 0.1, "false alarm rate {far}");
    assert!(summary.benign_unique_flows > 0);
    assert!(summary.malicious_unique_flows > 0);

    // The rendered report carries the Figure 6 fields.
    let report = d.athena.show_results(&summary);
    assert!(report.contains("Detection Rate"));
    assert!(report.contains("Cluster (K-Means)"));
}

#[test]
fn online_validator_blocks_attack_sources() {
    let (mut d, victim) = deploy();
    let detector = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = detector.train(&d.athena).expect("training");
    detector.deploy_online(&d.athena, model);

    // A second attack wave; the online validator should block the bots.
    d.inject_ddos(victim, 40, 120, 103);
    d.run_until_secs(60);
    assert!(d.athena.total_alerts() > 0, "validator never fired");
    assert!(
        !d.athena.mitigated_hosts().is_empty(),
        "no hosts were blocked"
    );
}

#[test]
fn collected_features_span_all_controllers_and_kinds() {
    let (d, _victim) = deploy();
    for kind in ["FLOW_STATS", "PORT_STATS", "SWITCH_STATE", "PACKET_IN"] {
        let q = Query::parse(&format!("feature=={kind}")).unwrap();
        let n = d.athena.request_features(&q).len();
        assert!(n > 0, "no {kind} features");
    }
    let all = d.athena.request_features(&Query::all());
    let controllers: std::collections::HashSet<_> = all.iter().map(|r| r.meta.controller).collect();
    assert_eq!(controllers.len(), 3, "features from all 3 instances");
}
