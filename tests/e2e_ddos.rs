//! End-to-end DDoS detection over the simulated enterprise SDN: the
//! paper's scenario 1 from traffic to verdict to mitigation.

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, Query};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{SimDuration, SimTime};

struct Deployment {
    net: Network,
    cluster: ControllerCluster,
    athena: Athena,
    victim: athena::types::Ipv4Addr,
}

fn deploy() -> Deployment {
    let topo = Topology::enterprise();
    let victim = topo.hosts[0].ip;
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    net.inject_flows(workload::benign_mix_on(
        &topo,
        120,
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: 250,
            ..workload::DdosParams::default()
        },
        102,
    ));
    net.run_until(SimTime::from_secs(35), &mut cluster);
    Deployment {
        net,
        cluster,
        athena,
        victim,
    }
}

#[test]
fn detector_separates_attack_from_benign_traffic_live() {
    let d = deploy();
    let detector = DdosDetector::new(DdosDetectorConfig {
        victim: d.victim,
        ..DdosDetectorConfig::default()
    });
    let model = detector.train(&d.athena).expect("training");
    assert!(model.trained_on > 1_000, "trained on {}", model.trained_on);

    let summary = detector.test(&d.athena, &model);
    let dr = summary.confusion.detection_rate();
    let far = summary.confusion.false_alarm_rate();
    assert!(dr > 0.9, "detection rate {dr}");
    assert!(far < 0.1, "false alarm rate {far}");
    assert!(summary.benign_unique_flows > 0);
    assert!(summary.malicious_unique_flows > 0);

    // The rendered report carries the Figure 6 fields.
    let report = d.athena.show_results(&summary);
    assert!(report.contains("Detection Rate"));
    assert!(report.contains("Cluster (K-Means)"));
}

#[test]
fn online_validator_blocks_attack_sources() {
    let mut d = deploy();
    let detector = DdosDetector::new(DdosDetectorConfig {
        victim: d.victim,
        ..DdosDetectorConfig::default()
    });
    let model = detector.train(&d.athena).expect("training");
    detector.deploy_online(&d.athena, model);

    // A second attack wave; the online validator should block the bots.
    let topo = d.net.topology().clone();
    d.net.inject_flows(workload::ddos_flood(
        &topo,
        d.victim,
        workload::DdosParams {
            start: SimTime::from_secs(40),
            duration: SimDuration::from_secs(15),
            n_flows: 120,
            ..workload::DdosParams::default()
        },
        103,
    ));
    d.net.run_until(SimTime::from_secs(60), &mut d.cluster);
    assert!(d.athena.total_alerts() > 0, "validator never fired");
    assert!(
        !d.athena.mitigated_hosts().is_empty(),
        "no hosts were blocked"
    );
}

#[test]
fn collected_features_span_all_controllers_and_kinds() {
    let d = deploy();
    for kind in ["FLOW_STATS", "PORT_STATS", "SWITCH_STATE", "PACKET_IN"] {
        let q = Query::parse(&format!("feature=={kind}")).unwrap();
        let n = d.athena.request_features(&q).len();
        assert!(n > 0, "no {kind} features");
    }
    let all = d.athena.request_features(&Query::all());
    let controllers: std::collections::HashSet<_> = all.iter().map(|r| r.meta.controller).collect();
    assert_eq!(controllers.len(), 3, "features from all 3 instances");
}
