//! The Figure 10 invariants end-to-end: validation results are identical
//! regardless of cluster size, virtual completion time decreases
//! monotonically with nodes, and the Athena-hosted job stays within the
//! paper's 10 % of the raw compute job.

use athena::apps::dataset::{DdosDataset, FEATURES};
use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::compute::ComputeCluster;
use athena::core::DetectorManager;
use athena::ml::ConfusionMatrix;
use athena::telemetry::Telemetry;

fn features() -> Vec<String> {
    FEATURES.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn results_are_invariant_to_cluster_size_and_time_decreases() {
    let tel = Telemetry::new();
    let data = DdosDataset::generate(40_000, 5);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let train_compute = ComputeCluster::new(2);
    train_compute.bind_telemetry(&tel);
    let trainer = DetectorManager::with_telemetry(train_compute, &tel);
    let model = trainer
        .generate_from_points(
            data.points[..8_000].to_vec(),
            &features(),
            &det.preprocessor(),
            &det.config.algorithm,
        )
        .unwrap();

    let mut last_time = None;
    let mut first_confusion: Option<ConfusionMatrix> = None;
    for nodes in [1usize, 2, 4, 6] {
        let compute = ComputeCluster::new(nodes);
        compute.bind_telemetry(&tel);
        let dm = DetectorManager::with_telemetry(compute, &tel);
        let (summary, vt) = dm.validate_points_distributed(data.points.clone(), &model);
        // Same verdicts at every cluster size.
        match &first_confusion {
            None => first_confusion = Some(summary.confusion),
            Some(c) => assert_eq!(&summary.confusion, c, "nodes={nodes}"),
        }
        // Monotone speedup.
        if let Some(prev) = last_time {
            assert!(vt <= prev, "{nodes} nodes slower than fewer: {vt} > {prev}");
        }
        last_time = Some(vt);
    }
    let c = first_confusion.unwrap();
    assert!(c.detection_rate() > 0.95);

    // The run's telemetry: per-subsystem counters and latency
    // percentiles, printed for inspection and exported as a CI artifact
    // when ATHENA_TELEMETRY_REPORT names a path.
    let report = tel.report();
    let rendered = report.render();
    println!("{rendered}");
    assert!(rendered.contains("compute"), "compute subsystem reported");
    assert!(rendered.contains("core"), "core subsystem reported");
    assert!(rendered.contains("tasks"), "task counter reported");
    assert!(rendered.contains("p99"), "latency percentiles reported");
    if let Ok(path) = std::env::var("ATHENA_TELEMETRY_REPORT") {
        report.save_json(&path).expect("artifact written");
    }
}

#[test]
fn six_nodes_land_near_the_papers_ratio() {
    let data = DdosDataset::generate(60_000, 6);
    let det = DdosDetector::new(DdosDetectorConfig::default());
    let trainer = DetectorManager::new(ComputeCluster::new(2));
    let model = trainer
        .generate_from_points(
            data.points[..6_000].to_vec(),
            &features(),
            &det.preprocessor(),
            &det.config.algorithm,
        )
        .unwrap();

    let one = DetectorManager::new(ComputeCluster::new(1));
    let (_, t1) = one.validate_points_distributed(data.points.clone(), &model);
    let six = DetectorManager::new(ComputeCluster::new(6));
    let (_, t6) = six.validate_points_distributed(data.points.clone(), &model);
    let ratio = t6.as_secs_f64() / t1.as_secs_f64();
    // The paper reports 27.6%; allow slack for measured task jitter and
    // the fixed job overhead at this reduced scale.
    assert!(ratio > 0.15 && ratio < 0.55, "6-node ratio {ratio}");
}
