//! Sharded-engine determinism e2e: the same seeded scenario run at
//! `ATHENA_THREADS=1` and `ATHENA_THREADS=8` through `ShardedNetwork`
//! must produce byte-identical counters, flow tables, controller
//! installs, and active-flow sets. The shard engine's phases (parallel
//! routing rounds, seg-stream offer/credit replay, batched packet-in
//! pipeline, timing-wheel expiry) may only change *how fast* the tick
//! completes, never its outcome — ordered reduction in
//! `athena-parallel` plus width-invariant seg-stream chunking are what
//! make this hold.
//!
//! Two scenarios cover the interesting regimes on a fat-tree (ECMP
//! multipath) fabric:
//!   1. a DDoS flood layered over benign background traffic — the
//!      packet-in path, flow-table churn, and congestion crediting all
//!      run hot;
//!   2. a chaos schedule (switch wipe, reboot, link degradation and
//!      recovery) applied mid-run at fixed virtual times — the
//!      cross-shard handoff and wheel re-arm paths run under topology
//!      damage.

use athena::dataplane::workload::{self, DdosParams};
use athena::dataplane::{
    FlowSpec, LearningControllerStub, NetworkConfig, ShardPlan, ShardedNetwork, Topology,
};
use athena::telemetry::Telemetry;
use athena::types::{Dpid, SimDuration, SimTime};
use std::sync::Mutex;

/// Serializes runs: `ATHENA_THREADS` is process-global, and so is the
/// worker pool's telemetry binding.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ATHENA_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("ATHENA_THREADS");
    out
}

/// k=4 fat-tree with 6 hosts per edge switch: 20 switches, 48 hosts,
/// every inter-pod pair has multiple equal-cost paths (real ECMP
/// fan-out, unlike a linear chain).
fn fabric() -> Topology {
    Topology::fat_tree_with_hosts(4, 6)
}

/// Everything a pool width could perturb, flattened to one comparable
/// string: engine counters, controller installs, the active-flow set,
/// and every switch's flow-table size (small fabric — full tables are
/// cheap here, unlike the sampled digest in `table_scale`).
fn digest(net: &ShardedNetwork, ctrl: &LearningControllerStub) -> String {
    let mut tables = String::new();
    for s in &net.topology().switches {
        if let Some(sw) = net.switch(s.dpid) {
            tables.push_str(&format!("{}:{};", s.dpid.raw(), sw.flow_count()));
        }
    }
    format!(
        "{:?}|installs={}|active={}|{tables}",
        net.counters(),
        ctrl.installs(),
        net.active_flows().len(),
    )
}

/// DDoS flood over benign background on the fat-tree fabric.
fn ddos_flows(topo: &Topology) -> Vec<FlowSpec> {
    let mut flows = workload::benign_mix_on(topo, 120, SimDuration::from_secs(10), 20170610);
    let victim = topo.hosts[topo.hosts.len() / 2].ip;
    flows.extend(workload::ddos_flood(
        topo,
        victim,
        DdosParams {
            n_flows: 150,
            n_bots: 12,
            total_rate_bps: 200_000_000,
            start: SimTime::from_secs(3),
            duration: SimDuration::from_secs(8),
        },
        42,
    ));
    flows
}

/// Runs the DDoS scenario to completion at one pool width and returns
/// its digest (plus the telemetry report when `tel` asks for one).
fn run_ddos(threads: usize, check_names: bool) -> String {
    with_threads(threads, || {
        let topo = fabric();
        let plan = ShardPlan::partition(&topo, 4);
        let mut net = ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan);
        let tel = Telemetry::new();
        if check_names {
            net.bind_telemetry(&tel);
        }
        let mut ctrl = LearningControllerStub::for_topology(topo);
        net.inject_flows(ddos_flows(net.topology()));
        net.run_until(SimTime::from_secs(14), &mut ctrl);
        if check_names {
            net.flush_gauges();
            // Every key the sharded engine emits is declared in the
            // telemetry registry (scale/* and dataplane/wheel_*).
            assert_eq!(
                athena::telemetry::names::undeclared(&tel.report()),
                Vec::<String>::new()
            );
        }
        digest(&net, &ctrl)
    })
}

/// Runs the chaos scenario: fixed virtual-time schedule of switch and
/// link damage, interleaved with the engine's own expiry and routing.
fn run_chaos(threads: usize) -> String {
    with_threads(threads, || {
        let topo = fabric();
        let plan = ShardPlan::partition(&topo, 4);
        let mut net = ShardedNetwork::with_plan(topo.clone(), NetworkConfig::default(), plan);
        let mut ctrl = LearningControllerStub::for_topology(topo);
        let flows =
            workload::benign_mix_on(net.topology(), 180, SimDuration::from_secs(14), 7_701_001);
        net.inject_flows(flows);
        // Fat-tree k=4 dpids: pod p owns p*4+1..=p*4+4 (edges then
        // aggs), cores start at 17. So 1 = pod-0 edge, 3 = pod-0 agg
        // (1-3 is a real edge-agg link), 5/6 = pod-1 edges.
        net.run_until(SimTime::from_secs(4), &mut ctrl);
        assert!(net.wipe_switch(Dpid::new(5)) > 0, "pod-1 edge had flows");
        assert!(net.set_link_state(Dpid::new(1), Dpid::new(3), 0.25) > 0);
        net.run_until(SimTime::from_secs(7), &mut ctrl);
        net.reboot_switch(Dpid::new(6));
        assert!(net.set_link_state(Dpid::new(1), Dpid::new(3), 1.0) > 0);
        net.run_until(SimTime::from_secs(10), &mut ctrl);
        assert!(net.wipe_switch(Dpid::new(17)) > 0, "core had flows");
        net.run_until(SimTime::from_secs(16), &mut ctrl);
        digest(&net, &ctrl)
    })
}

#[test]
fn ddos_on_fat_tree_is_byte_identical_across_widths() {
    let reference = run_ddos(1, true);
    assert!(
        reference.contains("packet_ins"),
        "digest carries the counter block: {reference}"
    );
    for w in [2, 4, 8] {
        let got = run_ddos(w, false);
        assert_eq!(
            got, reference,
            "sharded engine diverged at ATHENA_THREADS={w}"
        );
    }
}

#[test]
fn chaos_schedule_is_byte_identical_across_widths() {
    let reference = run_chaos(1);
    for w in [2, 4, 8] {
        let got = run_chaos(w);
        assert_eq!(got, reference, "chaos run diverged at ATHENA_THREADS={w}");
    }
}
