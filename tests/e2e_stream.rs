//! Streaming-pipeline e2e gate: under live ddos_flood traffic, a
//! `RetrainLoop` deployment must retrain mid-run on the live window,
//! round-trip the candidate through the persist snapshot format, and
//! hot-swap it into the online validator **without breaking detection
//! continuity** — the gap between consecutive alerts during the attack
//! stays within the ≤ 15 virtual-second bound.
//!
//! Determinism: the full run — alert timestamps, retrain reports,
//! store contents, non-`parallel/*` counters, and the snapshot bytes
//! on disk — must be byte-identical across reruns and across
//! `ATHENA_THREADS=1` vs `8` (the background fit joins before the tick
//! returns, so pool width can never reorder a swap relative to the
//! record stream). The same gate then runs composed with the
//! controller-crash chaos scenario.
//!
//! Satellite check: every metric the stream pipeline emitted must be
//! declared in `athena_telemetry::names` (`names::undeclared` empty).
//!
//! Set `ATHENA_CHAOS_SMOKE=1` for the lighter CI workload (same
//! assertions).

use athena::apps::{DdosDataset, DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, FeatureRecord};
use athena::dataplane::{workload, Network, Topology};
use athena::faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena::ml::Algorithm;
use athena::stream::{OnlineSpec, RetrainLoop, RetrainPolicy, StreamConfig};
use athena::telemetry::{names, Telemetry};
use athena::types::{SimDuration, SimTime};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Same seed family as the chaos matrix and determinism e2e.
const SEED: u64 = 7;
const ATTACK_START: SimTime = SimTime::from_secs(8);
const ATTACK_END: SimTime = SimTime::from_secs(30);
const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);
const END: SimTime = SimTime::from_secs(35);
/// The ISSUE acceptance bound on detection continuity, in virtual µs.
const GAP_BOUND_US: u64 = 15_000_000;

fn smoke() -> bool {
    athena::types::env_flag("ATHENA_CHAOS_SMOKE")
}

fn scaled(n: usize) -> usize {
    if smoke() {
        n / 2
    } else {
        n
    }
}

/// Serializes runs: `ATHENA_THREADS` is process-global, and so is the
/// worker pool's telemetry binding.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ATHENA_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("ATHENA_THREADS");
    out
}

/// A fresh snapshot path per run (runs are serialized by `ENV_LOCK`,
/// but distinct paths keep their artifacts inspectable after failures).
fn snapshot_path() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "athena-e2e-stream-{}-{n}.model",
        std::process::id()
    ))
}

/// Everything a streaming run observably produced, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct StreamRun {
    /// Virtual-µs timestamp of every online-validator alert, in order.
    alerts: Vec<u64>,
    /// Every retrain report, rendered.
    reports: Vec<String>,
    store: String,
    counters: Vec<String>,
    /// The last persisted candidate snapshot, byte-for-byte.
    snapshot: Vec<u8>,
    undeclared: Vec<String>,
}

/// Counter values except the `parallel/*` family (pool-width dependent).
fn canonical_counters(tel: &Telemetry) -> Vec<String> {
    tel.report()
        .counters
        .into_iter()
        .filter(|c| c.key.subsystem != "parallel")
        .map(|c| format!("{}={}", c.key.label(), c.value))
        .collect()
}

/// One full streaming deployment: chaos-matrix DDoS load, a bootstrap
/// model pretrained offline on the synthetic dataset, and the retrain
/// loop ticked once per virtual second. With `chaos`, the same run
/// executes under the controller-crash fault plan.
fn stream_run(chaos: bool) -> StreamRun {
    let topo = Topology::enterprise();
    let tel = Telemetry::new();
    athena::parallel::bind_telemetry(&tel);
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(&tel);
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_telemetry(AthenaConfig::default(), tel.clone());
    athena.attach(&mut cluster);

    let victim = topo.hosts[0].ip;
    net.inject_flows(workload::benign_mix_on(
        &topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: ATTACK_START,
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));

    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });

    // The bootstrap: a model shipped with the app, pretrained offline on
    // synthetic data. It serves from the first record; the retrain loop
    // then adapts to the live traffic and hot-swaps mid-run.
    let pretrain = DdosDataset::generate(scaled(4_000), 3);
    let bootstrap = athena
        .detector_manager()
        .generate_from_points(
            pretrain.points,
            &DdosDetector::features(),
            &det.preprocessor(),
            &Algorithm::kmeans(4),
        )
        .expect("bootstrap model");

    let snap = snapshot_path();
    let cfg = StreamConfig {
        name: "stream-ddos".to_owned(),
        features: DdosDetector::features(),
        spec: OnlineSpec::NaiveBayes,
        preprocessor: det.preprocessor(),
        policy: RetrainPolicy {
            interval: SimDuration::from_secs(10),
            snapshot: Some(snap.clone()),
            ..RetrainPolicy::default()
        },
    };
    let truth_det = det.clone();
    let truth: Arc<dyn Fn(&FeatureRecord) -> bool + Send + Sync> =
        Arc::new(move |r| (truth_det.truth())(r));
    let alerts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&alerts);
    let mut retrain = RetrainLoop::deploy(
        &athena,
        &det.query(),
        cfg,
        truth,
        bootstrap,
        Box::new(move |r| {
            sink.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(r.meta.timestamp.as_micros());
            // No mitigation: the flood must keep flowing so continuity
            // is measured against sustained attack traffic.
            None
        }),
    );

    if chaos {
        let store_nodes = athena.runtime().store.node_count();
        let plan = Scenario::ControllerCrash.plan(&topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
        assert!(!plan.is_empty(), "empty fault plan");
        let mut injector = FaultInjector::new(plan).with_store(athena.runtime().store.clone());
        let mut chaos_ch = ChaosChannel::new(cluster, SEED);
        while net.now() < END {
            let next = (net.now() + SimDuration::from_secs(1)).min(END);
            run_with_faults(&mut net, next, &mut chaos_ch, &mut injector);
            retrain.tick(&athena, net.now());
        }
        assert!(injector.finished(), "fault events left unapplied");
    } else {
        while net.now() < END {
            let next = (net.now() + SimDuration::from_secs(1)).min(END);
            net.run_until(next, &mut cluster);
            retrain.tick(&athena, net.now());
        }
    }

    let alerts = alerts.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let snapshot = std::fs::read(&snap).unwrap_or_default();
    let _ = std::fs::remove_file(&snap);
    StreamRun {
        alerts,
        reports: retrain.reports().iter().map(|r| format!("{r:?}")).collect(),
        store: athena.runtime().store.contents(),
        counters: canonical_counters(&tel),
        snapshot,
        undeclared: names::undeclared(&tel.report()),
    }
}

/// The ISSUE acceptance checks every arm must satisfy.
fn assert_gate(what: &str, run: &StreamRun) {
    // Satellite: every stream metric is declared in telemetry names.
    assert!(
        run.undeclared.is_empty(),
        "{what}: undeclared metrics emitted: {:?}",
        run.undeclared
    );

    // Mid-run retrain + hot-swap: at least one candidate fitted on the
    // live window was swapped in while the attack was underway, and it
    // round-tripped through the persist snapshot format.
    let swapped_mid_run = run
        .reports
        .iter()
        .any(|r| r.contains("swapped: true") && r.contains("online-naive-bayes"));
    assert!(
        swapped_mid_run,
        "{what}: no hot-swapped retrain mid-run; reports: {:?}",
        run.reports
    );
    assert!(
        !run.snapshot.is_empty(),
        "{what}: no persisted candidate snapshot"
    );
    assert!(
        !run.reports.iter().any(|r| r.contains("swapped: false")),
        "{what}: a retrain failed to swap: {:?}",
        run.reports
    );

    // Detection continuity through the swap: alerts flow during the
    // attack with no silent window longer than the bound.
    let attack_alerts: Vec<u64> = run
        .alerts
        .iter()
        .copied()
        .filter(|&t| t >= ATTACK_START.as_micros() && t <= ATTACK_END.as_micros())
        .collect();
    assert!(
        !attack_alerts.is_empty(),
        "{what}: no alerts during the attack window"
    );
    let first = attack_alerts[0];
    let last = attack_alerts[attack_alerts.len() - 1];
    assert!(
        first.saturating_sub(ATTACK_START.as_micros()) <= GAP_BOUND_US,
        "{what}: first alert {first}µs misses the bound after attack start"
    );
    assert!(
        ATTACK_END.as_micros().saturating_sub(last) <= GAP_BOUND_US,
        "{what}: detection went silent from {last}µs to attack end"
    );
    let max_gap = attack_alerts
        .windows(2)
        .map(|w| w[1].saturating_sub(w[0]))
        .max()
        .unwrap_or(0);
    assert!(
        max_gap <= GAP_BOUND_US,
        "{what}: max inter-alert gap {max_gap}µs exceeds {GAP_BOUND_US}µs"
    );
}

fn assert_identical(what: &str, one: &StreamRun, eight: &StreamRun) {
    assert!(!one.store.is_empty(), "{what}: empty store snapshot");
    assert_eq!(one.alerts, eight.alerts, "{what}: alert streams diverge");
    assert_eq!(
        one.reports, eight.reports,
        "{what}: retrain reports diverge"
    );
    assert_eq!(one.store, eight.store, "{what}: store contents diverge");
    assert_eq!(one.counters, eight.counters, "{what}: counters diverge");
    assert_eq!(
        one.snapshot, eight.snapshot,
        "{what}: snapshot bytes diverge"
    );
}

#[test]
fn hot_swap_sustains_detection_and_is_byte_identical_across_worker_counts() {
    let one = with_threads(1, || stream_run(false));
    let again = with_threads(1, || stream_run(false));
    let eight = with_threads(8, || stream_run(false));
    assert_gate("stream/ddos", &one);
    assert_identical("stream/ddos rerun", &one, &again);
    assert_gate("stream/ddos @8", &eight);
    assert_identical("stream/ddos 1v8", &one, &eight);
}

#[test]
fn streaming_gate_holds_under_controller_crash_chaos() {
    let one = with_threads(1, || stream_run(true));
    let eight = with_threads(8, || stream_run(true));
    assert_gate("stream/chaos", &one);
    assert_gate("stream/chaos @8", &eight);
    assert_identical("stream/chaos 1v8", &one, &eight);
}
