//! End-to-end NAE scenario: the LB app and the security app compete; the
//! monitor catches the takeover (the paper's scenario 3).

mod common;

use athena::apps::{NaeMonitor, NaeMonitorConfig};
use athena::controller::apps::{LoadBalancer, SecurityApp};
use athena::core::Athena;
use athena::dataplane::{FlowSpec, Topology};
use athena::types::{Dpid, FiveTuple, Ipv4Addr, SimDuration, SimTime};
use common::deploy_on_with;

const ACTIVATE_AT: u64 = 60;

fn run_scenario() -> (NaeMonitor, Athena) {
    let mut d = deploy_on_with(Topology::nae(), |cluster| {
        cluster.add_processor(Box::new(LoadBalancer::new((
            Ipv4Addr::new(10, 0, 4, 0),
            24,
        ))));
        cluster.add_processor(Box::new(
            SecurityApp::new(Dpid::new(6)).activate_at(SimTime::from_secs(ACTIVATE_AT)),
        ));
    });
    let monitor = NaeMonitor::new(NaeMonitorConfig::default());
    monitor.deploy(&d.athena);

    let ftp = Ipv4Addr::new(10, 0, 4, 1);
    let mut flows = Vec::new();
    for (i, t) in (0..110u64).step_by(2).enumerate() {
        let client = d.topo.hosts[i % 4].ip;
        flows.push(
            FlowSpec::new(
                FiveTuple::tcp(client, 30_000 + i as u16, ftp, 21),
                SimTime::from_secs(t),
                SimDuration::from_secs(8),
                4_000_000,
            )
            .bidirectional(0.1),
        );
    }
    d.inject(flows);
    d.run_until_secs(120);
    (monitor, d.athena)
}

#[test]
fn security_app_takeover_violates_the_sla() {
    let (monitor, _athena) = run_scenario();
    assert!(monitor.sample_count() > 10);
    let violations = monitor.check_sla();
    assert!(
        !violations.is_empty(),
        "takeover must violate the even-distribution SLA"
    );
    // Violations cluster after activation.
    let after = violations
        .iter()
        .filter(|v| v.at >= SimTime::from_secs(ACTIVATE_AT))
        .count();
    assert!(
        after * 2 >= violations.len(),
        "most violations after activation: {after}/{}",
        violations.len()
    );
}

#[test]
fn series_shows_the_takeover_shape() {
    let (monitor, athena) = run_scenario();
    let series = monitor.series();
    assert_eq!(series.len(), 2);
    // Post-activation, S6 dominates S3.
    let total_after = |idx: usize| -> f64 {
        series[idx]
            .1
            .iter()
            .filter(|(t, _)| *t > ACTIVATE_AT as f64 + 10.0)
            .map(|(_, v)| v)
            .sum()
    };
    let s3 = total_after(0);
    let s6 = total_after(1);
    assert!(
        s6 > s3 * 2.0,
        "S6 must dominate after takeover: s3={s3} s6={s6}"
    );
    // Rendering works.
    let chart = athena.show_series("nae", &series);
    assert!(chart.contains("of:0000000000000006"));
}
