//! End-to-end LFA mitigation: a Crossfire-style attack congests a core
//! link; the Athena application detects it from volume features and the
//! Block reactions clear the congestion (the paper's scenario 2).

mod common;

use athena::apps::{LfaMitigator, LfaMitigatorConfig};
use athena::dataplane::{workload, Topology};
use athena::types::{Dpid, PortNo, SimDuration, SimTime};
use common::deploy_on;

#[test]
fn crossfire_is_detected_and_mitigated() {
    let mut d = deploy_on(Topology::linear(4, 6));
    let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
    lfa.deploy(&d.athena);

    d.inject(workload::crossfire(
        &d.topo,
        Dpid::new(2),
        Dpid::new(3),
        workload::CrossfireParams {
            start: SimTime::from_secs(5),
            duration: SimDuration::from_secs(60),
            n_flows: 300,
            per_flow_rate_bps: 6_000_000,
        },
        77,
    ));

    let bottleneck = d
        .topo
        .link_from(Dpid::new(2), PortNo::new(1))
        .expect("bottleneck");
    let mut peak_before = 0.0f64;
    let mut blocked = 0usize;
    let mut util_after_mitigation = f64::INFINITY;
    for step in 1..=7u64 {
        d.run_until_secs(step * 10);
        let util = d.net.link(bottleneck).map_or(0.0, |l| l.utilization());
        if blocked == 0 {
            peak_before = peak_before.max(util);
        } else {
            util_after_mitigation = util_after_mitigation.min(util);
        }
        blocked += lfa.mitigate(&d.athena).len();
    }

    assert!(
        peak_before > 1.0,
        "attack must congest the link: {peak_before}"
    );
    assert!(blocked > 0, "bots must be blocked");
    assert!(
        util_after_mitigation < peak_before,
        "mitigation must relieve the link: {util_after_mitigation} vs {peak_before}"
    );
    // The reactor actually installed drop rules.
    assert_eq!(d.athena.mitigated_hosts().len(), lfa.blocked_hosts().len());
}

#[test]
fn benign_traffic_does_not_trigger_mitigation() {
    let mut d = deploy_on(Topology::linear(4, 6));
    let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
    lfa.deploy(&d.athena);

    d.inject_benign(60, 40, 78);
    d.run_until_secs(45);
    let blocked = lfa.mitigate(&d.athena);
    assert!(
        blocked.is_empty(),
        "benign traffic must not be blocked: {blocked:?}"
    );
}
