//! Framework-level end-to-end behaviours: the query language against a
//! live feature store, monitoring fidelity, reactions, and the Athena
//! proxy's consistency property (mitigation rules are attributed and
//! visible to the controller).

use athena::controller::ControllerCluster;
use athena::core::nb::reaction_manager::Reaction;
use athena::core::{Athena, AthenaConfig, Query, QueryBuilder};
use athena::dataplane::{workload, FlowSpec, Network, Topology};
use athena::types::{FiveTuple, SimDuration, SimTime};

fn deployment() -> (Network, ControllerCluster, Athena, Topology) {
    let topo = Topology::enterprise();
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    net.inject_flows(workload::benign_mix_on(
        &topo,
        60,
        SimDuration::from_secs(15),
        55,
    ));
    net.run_until(SimTime::from_secs(20), &mut cluster);
    (net, cluster, athena, topo)
}

#[test]
fn query_language_against_live_features() {
    let (_, _, athena, _) = deployment();
    // String syntax and builder produce the same results.
    let parsed = athena.request_features(
        &Query::parse("feature==FLOW_STATS && FLOW_PACKET_COUNT>0 limit 50").unwrap(),
    );
    let built = athena.request_features(
        &QueryBuilder::new()
            .eq("message_type", "FLOW_STATS")
            .gt("FLOW_PACKET_COUNT", 0)
            .limit(50)
            .build(),
    );
    assert_eq!(parsed.len(), built.len());
    assert!(!parsed.is_empty());
    // Sorting and limiting.
    let top = athena.request_features(
        &Query::parse("feature==FLOW_STATS sort FLOW_BYTE_COUNT desc limit 3").unwrap(),
    );
    assert_eq!(top.len(), 3);
    let bytes: Vec<f64> = top
        .iter()
        .filter_map(|r| r.field("FLOW_BYTE_COUNT"))
        .collect();
    assert!(bytes.windows(2).all(|w| w[0] >= w[1]), "{bytes:?}");
}

#[test]
fn manage_monitor_silences_a_switch() {
    let (mut net, mut cluster, athena, topo) = deployment();
    let victim_switch = topo.switches[0].dpid;
    let before = athena
        .request_features(&Query::parse(&format!("switch=={}", victim_switch.raw())).unwrap())
        .len();
    assert!(before > 0);

    athena.manage_monitor(
        &Query::parse(&format!("switch=={}", victim_switch.raw())).unwrap(),
        false,
    );
    net.inject_flows(workload::benign_mix_on(
        &topo,
        40,
        SimDuration::from_secs(10),
        56,
    ));
    net.run_until(SimTime::from_secs(35), &mut cluster);
    let after = athena
        .request_features(&Query::parse(&format!("switch=={}", victim_switch.raw())).unwrap())
        .len();
    // No new features from the silenced switch.
    assert_eq!(before, after);
    // Other switches kept producing.
    let others = athena.request_features(&Query::all()).len();
    assert!(others > before);
}

#[test]
fn quarantine_redirects_instead_of_dropping() {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    let suspect = topo.hosts[0].ip;
    let honeypot = topo.hosts[5].ip; // last host on switch 3
    athena.reactor(Reaction::Quarantine {
        targets: vec![suspect],
        destination: honeypot,
    });
    net.inject_flows([FlowSpec::new(
        FiveTuple::tcp(suspect, 1000, topo.hosts[3].ip, 80),
        SimTime::from_secs(2),
        SimDuration::from_secs(10),
        2_000_000,
    )]);
    net.run_until(SimTime::from_secs(15), &mut cluster);
    assert_eq!(athena.mitigated_hosts(), vec![suspect]);
    // The mitigation rule is attributed to Athena's app id in the
    // controller's flow-rule store (the proxy involved the controller).
    let athena_rules = cluster
        .flow_rules()
        .rules_of_app(athena::core::sb::reactor::ATHENA_APP);
    assert!(!athena_rules.is_empty(), "proxy must register the rule");

    // The redirected traffic actually reached the honeynet: the
    // honeypot's access port transmitted bytes, and the suspect's flow
    // was delivered somewhere (not dropped).
    let honeypot_spec = topo.host_by_ip(honeypot).unwrap();
    let honeypot_switch = net.switch(honeypot_spec.switch).unwrap();
    let athena::openflow::StatsReply::Port(ports) = honeypot_switch.stats(
        &athena::openflow::StatsRequest::Port {
            port_no: honeypot_spec.port,
        },
        net.now(),
    ) else {
        panic!("port stats expected");
    };
    assert!(
        ports[0].tx_bytes > 1_000_000,
        "honeypot received the quarantined traffic: {} bytes",
        ports[0].tx_bytes
    );
    assert!(net.delivered_bytes() > 1_000_000);
}

#[test]
fn event_handlers_fire_during_live_collection() {
    let topo = Topology::linear(3, 2);
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let seen2 = seen.clone();
    athena.add_event_handler(
        &Query::parse("feature==PORT_STATS").unwrap(),
        Box::new(move |_| {
            seen2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }),
    );
    net.inject_flows(workload::benign_mix_on(
        &topo,
        20,
        SimDuration::from_secs(10),
        57,
    ));
    net.run_until(SimTime::from_secs(15), &mut cluster);
    assert!(seen.load(std::sync::atomic::Ordering::Relaxed) > 0);
}
