//! Wire-mode fidelity: running the whole deployment with every control
//! message round-tripped through the binary OpenFlow codec must change
//! nothing observable — same deliveries, same features, same detections.

use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, Query};
use athena::dataplane::{workload, Network, NetworkConfig, Topology};
use athena::openflow::OfVersion;
use athena::types::{SimDuration, SimTime};

fn run(wire_mode: Option<OfVersion>) -> (u64, usize, u64) {
    let topo = Topology::enterprise();
    let mut net = Network::with_config(
        topo.clone(),
        NetworkConfig {
            wire_mode,
            ..NetworkConfig::default()
        },
    );
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    net.inject_flows(workload::benign_mix_on(
        &topo,
        60,
        SimDuration::from_secs(12),
        2026,
    ));
    net.run_until(SimTime::from_secs(16), &mut cluster);
    (
        net.delivered_bytes(),
        athena.request_features(&Query::all()).len(),
        cluster.counters().flow_mods,
    )
}

#[test]
fn wire_mode_is_transparent_for_both_versions() {
    let plain = run(None);
    assert!(plain.0 > 0 && plain.1 > 0 && plain.2 > 0);
    for v in [OfVersion::V1_0, OfVersion::V1_3] {
        let wired = run(Some(v));
        assert_eq!(wired, plain, "wire mode {v:?} changed observable behavior");
    }
}
