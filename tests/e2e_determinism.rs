//! Worker-count determinism e2e: the same seeded scenario run at
//! `ATHENA_THREADS=1` and `ATHENA_THREADS=8` must produce byte-identical
//! store contents, detection verdicts, and telemetry streams. The
//! parallel pool may only change *how fast* answers arrive, never the
//! answers — ordered reduction in `athena-parallel` plus the
//! no-unordered-iter lint rule are what make this hold.
//!
//! Canonicalization: wall-clock stamps (`wall_start_ns`/`wall_dur_ns`)
//! are excluded from trace comparison — they measure host CPU time, not
//! simulation behaviour. `compute/job` events are additionally stamped at
//! the cluster's cumulative *measured* virtual time (derived from wall
//! task costs), so their sim stamps are zeroed too; their order, labels,
//! and task counts still must match. Metric counters are compared except
//! the `parallel/*` family, whose values legitimately scale with the
//! worker count (chunk and task counts depend on the pool width).
//!
//! Set `ATHENA_CHAOS_SMOKE=1` for the lighter CI workload (same
//! assertions).

use athena::apps::{DdosDetector, DdosDetectorConfig, ScanDetector, ScanDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::faults::{run_with_faults, ChaosChannel, FaultInjector, Scenario};
use athena::observe::Observe;
use athena::telemetry::Telemetry;
use athena::types::{SimDuration, SimTime};
use std::sync::Mutex;

/// Same seed family as the chaos matrix and recovery e2e.
const SEED: u64 = 7;
const INJECT_AT: SimTime = SimTime::from_secs(10);
const RECOVER_AT: SimTime = SimTime::from_secs(20);
const END: SimTime = SimTime::from_secs(35);

fn smoke() -> bool {
    athena::types::env_flag("ATHENA_CHAOS_SMOKE")
}

fn scaled(n: usize) -> usize {
    if smoke() {
        n / 2
    } else {
        n
    }
}

/// Serializes runs: `ATHENA_THREADS` is process-global, and so is the
/// worker pool's telemetry binding.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ATHENA_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("ATHENA_THREADS");
    out
}

/// Everything a run observably produced, rendered to comparable strings.
#[derive(Debug, PartialEq, Eq)]
struct Snapshot {
    store: String,
    verdict: String,
    trace: Vec<String>,
    counters: Vec<String>,
    /// Seed-derived causal trace ids, in root-creation order. Workers
    /// never open causal spans, so this stream is pool-width-invariant.
    trace_ids: Vec<u64>,
    /// Rendered fire/clear transitions of the deterministic alert rules.
    alerts: Vec<String>,
}

/// The deterministic alert stream in its canonical byte-compared form.
fn canonical_alerts(obs: &Observe) -> Vec<String> {
    obs.deterministic_alert_events()
        .iter()
        .map(|e| e.render())
        .collect()
}

/// The trace stream minus wall stamps; `compute` sim stamps zeroed (they
/// carry measured task costs), everything else byte-for-byte.
fn canonical_trace(tel: &Telemetry) -> Vec<String> {
    tel.tracer()
        .entries()
        .into_iter()
        .map(|e| {
            let (start, end) = if e.subsystem == "compute" {
                (SimTime::ZERO, SimTime::ZERO)
            } else {
                (e.sim_start, e.sim_end)
            };
            format!(
                "{} {:?} {}/{} {:?}..{:?} {}",
                e.seq, e.kind, e.subsystem, e.name, start, end, e.detail
            )
        })
        .collect()
}

/// Counter values except the `parallel/*` family (pool-width dependent).
fn canonical_counters(tel: &Telemetry) -> Vec<String> {
    tel.report()
        .counters
        .into_iter()
        .filter(|c| c.key.subsystem != "parallel")
        .map(|c| format!("{}={}", c.key.label(), c.value))
        .collect()
}

/// `expect_trace` is false for the fault-injected run: `run_with_faults`
/// drives `Network::step` directly and never opens the `run_until` span,
/// so its trace stream is legitimately empty.
fn assert_identical(what: &str, one: Snapshot, eight: Snapshot, expect_trace: bool) {
    assert!(!one.store.is_empty(), "{what}: empty store snapshot");
    assert!(
        !expect_trace || !one.trace.is_empty(),
        "{what}: empty trace stream"
    );
    assert!(!one.trace_ids.is_empty(), "{what}: no causal traces");
    assert_eq!(one.store, eight.store, "{what}: store contents diverge");
    assert_eq!(one.verdict, eight.verdict, "{what}: verdicts diverge");
    assert_eq!(one.trace, eight.trace, "{what}: trace streams diverge");
    assert_eq!(one.counters, eight.counters, "{what}: counters diverge");
    assert_eq!(
        one.trace_ids, eight.trace_ids,
        "{what}: causal trace-id streams diverge"
    );
    assert_eq!(
        one.alerts, eight.alerts,
        "{what}: deterministic alert streams diverge"
    );
}

/// One full Athena deployment over the enterprise topology, telemetry
/// bound into the dataplane, the core stack, and the worker pool.
struct Rig {
    topo: Topology,
    tel: Telemetry,
    obs: Observe,
    net: Network,
    athena: Athena,
    cluster: ControllerCluster,
}

fn rig() -> Rig {
    let topo = Topology::enterprise();
    let tel = Telemetry::new();
    let obs = Observe::with_telemetry(SEED, &tel);
    athena::parallel::bind_telemetry(&tel);
    let mut net = Network::new(topo.clone());
    net.bind_telemetry(&tel);
    net.bind_observe(&obs);
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::with_observe(AthenaConfig::default(), tel.clone(), obs.clone());
    athena.attach(&mut cluster);
    Rig {
        topo,
        tel,
        obs,
        net,
        athena,
        cluster,
    }
}

/// The chaos-matrix DDoS load (benign mix + flood at the first host).
fn inject_ddos(r: &mut Rig) -> athena::types::Ipv4Addr {
    let victim = r.topo.hosts[0].ip;
    r.net.inject_flows(workload::benign_mix_on(
        &r.topo,
        scaled(120),
        SimDuration::from_secs(30),
        101,
    ));
    r.net.inject_flows(workload::ddos_flood(
        &r.topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            n_flows: scaled(250),
            ..workload::DdosParams::default()
        },
        102,
    ));
    victim
}

fn ddos_snapshot() -> Snapshot {
    let mut r = rig();
    let victim = inject_ddos(&mut r);
    r.net.run_until(END, &mut r.cluster);
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = det.train(&r.athena).expect("training");
    let confusion = det.test(&r.athena, &model).confusion;
    Snapshot {
        store: r.athena.runtime().store.contents(),
        verdict: format!("{confusion:?}"),
        trace: canonical_trace(&r.tel),
        counters: canonical_counters(&r.tel),
        trace_ids: r.obs.trace_ids(),
        alerts: canonical_alerts(&r.obs),
    }
}

fn port_scan_snapshot() -> Snapshot {
    let mut r = rig();
    let scanner = r.topo.hosts[0].ip;
    let target = r.topo.hosts[30].ip;
    let mut det = ScanDetector::new(ScanDetectorConfig::default());
    det.deploy(&r.athena);
    r.net.inject_flows(workload::benign_mix_on(
        &r.topo,
        scaled(80),
        SimDuration::from_secs(20),
        401,
    ));
    r.net.inject_flows(workload::port_scan(
        scanner,
        target,
        scaled(40) as u16,
        SimTime::from_secs(5),
        402,
    ));
    r.net.run_until(SimTime::from_secs(25), &mut r.cluster);
    let flagged = det.detect(&r.athena);
    let mitigated = r.athena.mitigated_hosts();
    Snapshot {
        store: r.athena.runtime().store.contents(),
        verdict: format!("flagged={flagged:?} mitigated={mitigated:?}"),
        trace: canonical_trace(&r.tel),
        counters: canonical_counters(&r.tel),
        trace_ids: r.obs.trace_ids(),
        alerts: canonical_alerts(&r.obs),
    }
}

/// A chaos-matrix controller-crash run: faults strike mid-attack, heal,
/// and the run completes — all under fault injection.
fn chaos_snapshot() -> Snapshot {
    let mut r = rig();
    let victim = inject_ddos(&mut r);
    let store_nodes = r.athena.runtime().store.node_count();
    let plan = Scenario::ControllerCrash.plan(&r.topo, store_nodes, SEED, INJECT_AT, RECOVER_AT);
    assert!(!plan.is_empty(), "empty fault plan");
    let mut injector = FaultInjector::new(plan).with_store(r.athena.runtime().store.clone());
    let mut chaos = ChaosChannel::new(r.cluster, SEED);
    chaos.bind_observe(&r.obs);
    while r.net.now() < END {
        let next = (r.net.now() + SimDuration::from_secs(1)).min(END);
        run_with_faults(&mut r.net, next, &mut chaos, &mut injector);
    }
    assert!(injector.finished(), "fault events left unapplied");
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = det.train(&r.athena).expect("training");
    let confusion = det.test(&r.athena, &model).confusion;
    Snapshot {
        store: r.athena.runtime().store.contents(),
        verdict: format!("{confusion:?}"),
        trace: canonical_trace(&r.tel),
        counters: canonical_counters(&r.tel),
        trace_ids: r.obs.trace_ids(),
        alerts: canonical_alerts(&r.obs),
    }
}

#[test]
fn ddos_run_is_byte_identical_across_worker_counts() {
    let one = with_threads(1, ddos_snapshot);
    let eight = with_threads(8, ddos_snapshot);
    assert_identical("ddos", one, eight, true);
}

#[test]
fn port_scan_run_is_byte_identical_across_worker_counts() {
    let one = with_threads(1, port_scan_snapshot);
    let eight = with_threads(8, port_scan_snapshot);
    assert_identical("port-scan", one, eight, true);
}

#[test]
fn chaos_controller_crash_is_byte_identical_across_worker_counts() {
    let one = with_threads(1, chaos_snapshot);
    let eight = with_threads(8, chaos_snapshot);
    assert_identical("chaos/controller-crash", one, eight, false);
}

/// One Table-IV matrix cell rendered to canonical bytes: the DDoS family
/// run, all twelve algorithms trained on it, and every evaluated cell
/// serialized. Pool width must never change a cell.
fn matrix_cell_bytes() -> String {
    use athena_bench::matrix::{evaluate_cell, run_family, train_models, MatrixConfig};
    let cfg = MatrixConfig {
        seed: SEED,
        smoke: true,
        ..MatrixConfig::default()
    };
    let run = run_family(athena::workloads::AttackFamily::Ddos, &cfg);
    let models = train_models(&[&run]);
    let cells: Vec<_> = models
        .iter()
        .map(|(algorithm, model)| evaluate_cell(&run, algorithm, model.as_ref()))
        .collect();
    serde_json::to_string(&cells).expect("cells serialize")
}

/// The ddos run with the streaming pipeline live: a `RetrainLoop`
/// retrains on the live window and hot-swaps the online validator
/// mid-run. The swap joins its background fit before the tick returns,
/// so the full observable state — alert stream included via the
/// `stream/*` counters — must stay pool-width-invariant.
fn stream_hot_swap_snapshot() -> Snapshot {
    use athena::apps::DdosDataset;
    use athena::ml::Algorithm;
    use athena::stream::{OnlineSpec, RetrainLoop, RetrainPolicy, StreamConfig};
    use std::sync::Arc;

    let mut r = rig();
    let victim = inject_ddos(&mut r);
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let pretrain = DdosDataset::generate(scaled(2_000), 3);
    let bootstrap = r
        .athena
        .detector_manager()
        .generate_from_points(
            pretrain.points,
            &DdosDetector::features(),
            &det.preprocessor(),
            &Algorithm::kmeans(4),
        )
        .expect("bootstrap model");
    let truth_det = det.clone();
    let mut retrain = RetrainLoop::deploy(
        &r.athena,
        &det.query(),
        StreamConfig {
            name: "stream-ddos".to_owned(),
            features: DdosDetector::features(),
            spec: OnlineSpec::NaiveBayes,
            preprocessor: det.preprocessor(),
            policy: RetrainPolicy::default(),
        },
        Arc::new(move |rec| (truth_det.truth())(rec)),
        bootstrap,
        Box::new(|_| None),
    );
    while r.net.now() < END {
        let next = (r.net.now() + SimDuration::from_secs(1)).min(END);
        r.net.run_until(next, &mut r.cluster);
        retrain.tick(&r.athena, r.net.now());
    }
    let swaps = retrain.reports().iter().filter(|rep| rep.swapped).count();
    assert!(swaps >= 1, "no hot-swap happened mid-run");
    Snapshot {
        store: r.athena.runtime().store.contents(),
        verdict: format!("{:?}", retrain.reports()),
        trace: canonical_trace(&r.tel),
        counters: canonical_counters(&r.tel),
        trace_ids: r.obs.trace_ids(),
        alerts: canonical_alerts(&r.obs),
    }
}

#[test]
fn stream_hot_swap_run_is_byte_identical_across_worker_counts() {
    let one = with_threads(1, stream_hot_swap_snapshot);
    let eight = with_threads(8, stream_hot_swap_snapshot);
    assert_identical("stream-hot-swap", one, eight, true);
}

#[test]
fn matrix_cells_are_byte_identical_across_worker_counts() {
    let one = with_threads(1, matrix_cell_bytes);
    let eight = with_threads(8, matrix_cell_bytes);
    assert!(!one.is_empty());
    assert_eq!(one, eight, "matrix cells diverge across worker counts");
}

// ---- runtime lock-order sentinel ------------------------------------
//
// The static gate (`crates/analyze`) derives the lock-acquisition graph
// from the call graph and verifies it against `[analyze] lock_order` in
// `lint.toml`. The sentinel closes the loop dynamically: every tracked
// acquisition records the locks the thread already held, and the
// observed edges are cross-checked against the *same* declared order.
// `scripts/ci.sh` runs this suite with `ATHENA_LOCK_SENTINEL=1` so the
// plain scenario runs record edges too; the tests below force tracking
// on so they validate even in a default `cargo test`.

use athena::types::sentinel;

/// The declared order from `lint.toml` — one list serves both checkers.
fn declared_lock_order() -> Vec<String> {
    athena_lint::load_config(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint.toml parses")
        .lock_order
}

#[test]
fn sentinel_observes_clean_lock_order_during_chaos_run() {
    // Serialized via ENV_LOCK inside with_threads: sentinel state is
    // process-global, and a concurrent scenario run could interleave
    // its acquisitions with ours.
    let (edges, violations) = with_threads(1, || {
        sentinel::force(Some(true));
        sentinel::reset();
        let _ = chaos_snapshot();
        let edges = sentinel::edges();
        let violations = sentinel::check_against(&declared_lock_order());
        sentinel::force(None);
        sentinel::reset();
        (edges, violations)
    });

    assert!(
        !edges.is_empty(),
        "a full chaos run must nest at least one tracked lock pair"
    );
    assert!(
        violations.is_empty(),
        "runtime acquisitions contradict the statically-verified lock_order:\n{}",
        violations.join("\n")
    );

    // Surface the observation counts the way the production stack
    // reports everything else: through telemetry.
    let tel = Telemetry::new();
    tel.metrics()
        .counter("sentinel", "edges_observed")
        .add(edges.len() as u64);
    tel.metrics()
        .counter("sentinel", "order_violations")
        .add(violations.len() as u64);
    let report = tel.report();
    assert!(
        report
            .counters
            .iter()
            .any(|c| c.key.subsystem == "sentinel" && c.value == edges.len() as u64),
        "sentinel counters must surface in the telemetry report"
    );
}

#[test]
fn sentinel_catches_seeded_lock_order_inversion() {
    // The runtime twin of the static corpus case
    // `crates/analyze/tests/corpus/lock_inversion.rs`: acquire the
    // last-declared lock, then the first-declared one under it. The
    // static gate rejects that nesting when it is visible in the call
    // graph; the sentinel must reject it when only the runtime sees it.
    let order = declared_lock_order();
    let first: &'static str = Box::leak(
        order
            .first()
            .expect("non-empty order")
            .clone()
            .into_boxed_str(),
    );
    let last: &'static str = Box::leak(
        order
            .last()
            .expect("non-empty order")
            .clone()
            .into_boxed_str(),
    );

    let violations = with_threads(1, || {
        sentinel::force(Some(true));
        sentinel::reset();
        let outer = sentinel::TrackedMutex::new(last, 0u32);
        let inner = sentinel::TrackedMutex::new(first, 0u32);
        {
            let _go = outer.lock();
            let _gi = inner.lock();
        }
        let violations = sentinel::check_against(&order);
        sentinel::force(None);
        sentinel::reset();
        violations
    });

    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        violations[0].contains("inverts the declared lock_order"),
        "{}",
        violations[0]
    );
}
