//! The paper's introduction motivates distinguishing *benign* anomalies
//! (flash crowds) from attacks. A flash crowd is a volume surge of
//! legitimate, bidirectional connections — the pair-flow features of
//! Table V are exactly what separates it from a flood. This test trains
//! the DDoS detector live, then checks that a subsequent flash crowd does
//! not alarm while a real flood does.

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{SimDuration, SimTime};

#[test]
fn flash_crowd_is_not_flagged_but_a_flood_is() {
    let topo = Topology::enterprise();
    let victim = topo.hosts[0].ip;
    let popular_server = topo.hosts[47].ip;
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    // Phase 1: labeled training traffic (benign mix + flood).
    net.inject_flows(workload::benign_mix_on(
        &topo,
        120,
        SimDuration::from_secs(25),
        301,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(5),
            duration: SimDuration::from_secs(20),
            n_flows: 200,
            ..workload::DdosParams::default()
        },
        302,
    ));
    net.run_until(SimTime::from_secs(30), &mut cluster);
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = det.train(&athena).expect("training");

    // Phase 2: a flash crowd toward a popular server — benign volume.
    athena
        .runtime()
        .feature_manager
        .lock()
        .purge(&athena::core::Query::all());
    net.inject_flows(workload::flash_crowd(
        &topo,
        popular_server,
        60,
        SimTime::from_secs(32),
        SimDuration::from_secs(15),
        303,
    ));
    net.run_until(SimTime::from_secs(50), &mut cluster);
    let crowd_records =
        athena.request_features(&athena::core::Query::parse("feature==FLOW_STATS").unwrap());
    let crowd_alarms = crowd_records
        .iter()
        .filter(|r| {
            r.index
                .five_tuple
                .is_some_and(|ft| ft.dst == popular_server)
        })
        .filter(|r| model.is_malicious(r) == Some(true))
        .count();
    let crowd_total = crowd_records
        .iter()
        .filter(|r| {
            r.index
                .five_tuple
                .is_some_and(|ft| ft.dst == popular_server)
        })
        .count();
    assert!(crowd_total > 20, "the crowd produced {crowd_total} records");
    let crowd_rate = crowd_alarms as f64 / crowd_total as f64;

    // Phase 3: another flood — must alarm.
    athena
        .runtime()
        .feature_manager
        .lock()
        .purge(&athena::core::Query::all());
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(52),
            duration: SimDuration::from_secs(15),
            n_flows: 150,
            ..workload::DdosParams::default()
        },
        304,
    ));
    net.run_until(SimTime::from_secs(70), &mut cluster);
    let flood_records =
        athena.request_features(&athena::core::Query::parse("feature==FLOW_STATS").unwrap());
    let flood_alarms = flood_records
        .iter()
        .filter(|r| r.index.five_tuple.is_some_and(|ft| ft.dst == victim))
        .filter(|r| model.is_malicious(r) == Some(true))
        .count();
    let flood_total = flood_records
        .iter()
        .filter(|r| r.index.five_tuple.is_some_and(|ft| ft.dst == victim))
        .count();
    assert!(flood_total > 20, "the flood produced {flood_total} records");
    let flood_rate = flood_alarms as f64 / flood_total as f64;

    assert!(
        crowd_rate < 0.3,
        "flash crowd misclassified as attack: {crowd_rate}"
    );
    assert!(flood_rate > 0.8, "flood missed: {flood_rate}");
}
