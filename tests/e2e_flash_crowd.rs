//! The paper's introduction motivates distinguishing *benign* anomalies
//! (flash crowds) from attacks. A flash crowd is a volume surge of
//! legitimate, bidirectional connections — the pair-flow features of
//! Table V are exactly what separates it from a flood. This test trains
//! the DDoS detector live, then checks that a subsequent flash crowd does
//! not alarm while a real flood does.

mod common;

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::dataplane::workload;
use athena::types::{SimDuration, SimTime};
use common::deploy_enterprise;

#[test]
fn flash_crowd_is_not_flagged_but_a_flood_is() {
    let mut d = deploy_enterprise();
    let victim = d.topo.hosts[0].ip;
    let popular_server = d.topo.hosts[47].ip;

    // Phase 1: labeled training traffic (benign mix + flood).
    d.inject_benign(120, 25, 301);
    d.inject(workload::ddos_flood(
        &d.topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(5),
            duration: SimDuration::from_secs(20),
            n_flows: 200,
            ..workload::DdosParams::default()
        },
        302,
    ));
    d.run_until_secs(30);
    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    let model = det.train(&d.athena).expect("training");

    // Phase 2: a flash crowd toward a popular server — benign volume.
    d.athena
        .runtime()
        .feature_manager
        .lock()
        .purge(&athena::core::Query::all());
    d.inject(workload::flash_crowd(
        &d.topo,
        popular_server,
        60,
        SimTime::from_secs(32),
        SimDuration::from_secs(15),
        303,
    ));
    d.run_until_secs(50);
    let crowd_records = d
        .athena
        .request_features(&athena::core::Query::parse("feature==FLOW_STATS").unwrap());
    let crowd_alarms = crowd_records
        .iter()
        .filter(|r| {
            r.index
                .five_tuple
                .is_some_and(|ft| ft.dst == popular_server)
        })
        .filter(|r| model.is_malicious(r) == Some(true))
        .count();
    let crowd_total = crowd_records
        .iter()
        .filter(|r| {
            r.index
                .five_tuple
                .is_some_and(|ft| ft.dst == popular_server)
        })
        .count();
    assert!(crowd_total > 20, "the crowd produced {crowd_total} records");
    let crowd_rate = crowd_alarms as f64 / crowd_total as f64;

    // Phase 3: another flood — must alarm.
    d.athena
        .runtime()
        .feature_manager
        .lock()
        .purge(&athena::core::Query::all());
    d.inject(workload::ddos_flood(
        &d.topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(52),
            duration: SimDuration::from_secs(15),
            n_flows: 150,
            ..workload::DdosParams::default()
        },
        304,
    ));
    d.run_until_secs(70);
    let flood_records = d
        .athena
        .request_features(&athena::core::Query::parse("feature==FLOW_STATS").unwrap());
    let flood_alarms = flood_records
        .iter()
        .filter(|r| r.index.five_tuple.is_some_and(|ft| ft.dst == victim))
        .filter(|r| model.is_malicious(r) == Some(true))
        .count();
    let flood_total = flood_records
        .iter()
        .filter(|r| r.index.five_tuple.is_some_and(|ft| ft.dst == victim))
        .count();
    assert!(flood_total > 20, "the flood produced {flood_total} records");
    let flood_rate = flood_alarms as f64 / flood_total as f64;

    assert!(
        crowd_rate < 0.3,
        "flash crowd misclassified as attack: {crowd_rate}"
    );
    assert!(flood_rate > 0.8, "flood missed: {flood_rate}");
}
