//! The Table-IV evaluation matrix as a test: every (attack family ×
//! algorithm) cell runs, known-attack cells gate against recorded
//! baselines, held-out (unseen) families report generalization
//! separately, the JSON artifact is written, and the whole matrix is
//! byte-identical across reruns. A final arm composes a matrix cell
//! with a chaos scenario to show evaluation and fault injection stack.
//!
//! Workloads run in smoke scale (halved, never skipped) so the suite
//! stays fast in debug builds; the baselines hold at both scales.

use std::collections::BTreeSet;

use athena::faults::Scenario;
use athena::workloads::AttackFamily;
use athena_bench::matrix::{
    evaluate_cell, regressions, run_family, run_matrix, train_models, MatrixConfig, BASELINE_SEED,
};

fn matrix_config() -> MatrixConfig {
    MatrixConfig {
        seed: BASELINE_SEED,
        smoke: true,
        ..MatrixConfig::default()
    }
}

#[test]
fn every_cell_runs_and_known_attacks_hold_their_baselines() {
    let cfg = matrix_config();
    let report = run_matrix(&cfg);

    // Every (family x algorithm) cell is present exactly once.
    let n_families = AttackFamily::all().len();
    assert_eq!(report.cells.len(), n_families * 12, "matrix is complete");
    let keys: BTreeSet<_> = report
        .cells
        .iter()
        .map(|c| (c.family.clone(), c.algorithm.clone()))
        .collect();
    assert_eq!(keys.len(), report.cells.len(), "no duplicate cells");
    for family in AttackFamily::all() {
        let held = report
            .cells
            .iter()
            .filter(|c| c.family == family.tag())
            .all(|c| c.held_out == family.is_held_out());
        assert!(held, "{} cells carry the held-out flag", family.tag());
    }

    // Known-attack cells never regress below the recorded floors.
    let bad = regressions(&report);
    assert!(bad.is_empty(), "baseline regressions: {bad:?}");

    // Unseen families are reported separately, one summary per family,
    // and are never part of the gated set.
    assert_eq!(report.generalization.len(), AttackFamily::unseen().len());
    for g in &report.generalization {
        let family: Vec<_> = AttackFamily::unseen()
            .iter()
            .filter(|f| f.tag() == g.family)
            .collect();
        assert_eq!(family.len(), 1, "summary for unseen family {}", g.family);
        assert!(
            (0.0..=1.0).contains(&g.mean_detection_rate),
            "{}: DR in range",
            g.family
        );
        assert!(
            g.best_detection_rate >= g.mean_detection_rate,
            "{}: best >= mean",
            g.family
        );
    }
    let gated: BTreeSet<_> = athena_bench::matrix::baselines()
        .iter()
        .map(|(f, _, _, _)| *f)
        .collect();
    for f in AttackFamily::unseen() {
        assert!(!gated.contains(f.tag()), "{} is never gated", f.tag());
    }

    // The artifact is written and non-empty.
    let path = std::path::Path::new("target/BENCH_matrix.json");
    report.save_json(path).expect("artifact written");
    let bytes = std::fs::read(path).expect("artifact readable");
    assert!(!bytes.is_empty());
    let json = report.to_json().expect("serialize");
    assert_eq!(bytes, json.clone().into_bytes());

    // A full rerun of the matrix is byte-identical.
    let rerun = run_matrix(&cfg);
    assert_eq!(
        rerun.to_json().expect("serialize"),
        json,
        "rerun is byte-identical"
    );
}

#[test]
fn matrix_cells_compose_with_chaos_scenarios() {
    let cfg = matrix_config();

    // Train on the clean base families, evaluate the DDoS cell while a
    // controller crashes and rejoins mid-attack.
    let base_runs: Vec<_> = AttackFamily::base()
        .iter()
        .map(|f| run_family(*f, &cfg))
        .collect();
    let models = train_models(&base_runs.iter().collect::<Vec<_>>());

    let chaos_cfg = MatrixConfig {
        chaos: Some(Scenario::ControllerCrash),
        ..cfg
    };
    let run = run_family(AttackFamily::Ddos, &chaos_cfg);
    assert!(
        !run.records.is_empty(),
        "features still collected under chaos"
    );

    // Every metric the matrix stack emits — workloads/*, the new
    // dataplane link_* names included — is in the names registry.
    for r in base_runs.iter().chain(std::iter::once(&run)) {
        let undeclared = athena::telemetry::names::undeclared(&r.tel.report());
        assert!(
            undeclared.is_empty(),
            "{}: undeclared metrics: {undeclared:?}",
            r.family.tag()
        );
    }

    let mut evaluated = 0usize;
    for (algorithm, model) in &models {
        let cell = evaluate_cell(&run, algorithm, model.as_ref());
        assert_eq!(cell.family, AttackFamily::Ddos.tag());
        assert!((0.0..=1.0).contains(&cell.detection_rate));
        assert!((0.0..=1.0).contains(&cell.false_alarm_rate));
        evaluated += 1;
        // The strong tree ensembles should still see the flood even
        // with a controller instance down for part of the attack.
        if algorithm.name() == "Random Forest" {
            assert!(
                cell.detection_rate > 0.5,
                "forest under chaos: {}",
                cell.detection_rate
            );
        }
    }
    assert_eq!(evaluated, 12, "all algorithms evaluated under chaos");

    // The chaos run itself is deterministic.
    let again = run_family(AttackFamily::Ddos, &chaos_cfg);
    assert_eq!(run.records.len(), again.records.len());
    assert_eq!(run.malicious, again.malicious);
}
