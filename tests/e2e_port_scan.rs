//! End-to-end port-scan detection over a live simulated network: the
//! extension app flags a vertical scanner from collected features and the
//! reactor blocks it, while normal clients stay untouched.

use athena::apps::{ScanDetector, ScanDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{SimDuration, SimTime};

#[test]
fn live_scan_is_flagged_and_blocked_benign_clients_are_not() {
    let topo = Topology::enterprise();
    let scanner = topo.hosts[0].ip;
    let target = topo.hosts[30].ip;
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    let mut det = ScanDetector::new(ScanDetectorConfig::default());
    det.deploy(&athena);

    // Benign background plus the scan.
    net.inject_flows(workload::benign_mix_on(
        &topo,
        80,
        SimDuration::from_secs(20),
        401,
    ));
    net.inject_flows(workload::port_scan(
        scanner,
        target,
        40,
        SimTime::from_secs(5),
        402,
    ));
    net.run_until(SimTime::from_secs(25), &mut cluster);

    let flagged = det.detect(&athena);
    assert_eq!(flagged, vec![scanner], "exactly the scanner is flagged");
    assert_eq!(athena.mitigated_hosts(), vec![scanner]);
    let (_pairs, max_ports) = det.probe_stats();
    assert!(max_ports >= 15, "probe tracking saw the scan: {max_ports}");

    // After blocking, further scan traffic is dropped at the access
    // switch.
    let dropped_before = net.counters().dropped_bytes;
    net.inject_flows(workload::port_scan(
        scanner,
        target,
        20,
        SimTime::from_secs(27),
        403,
    ));
    net.run_until(SimTime::from_secs(35), &mut cluster);
    assert!(net.counters().dropped_bytes > dropped_before);
}
