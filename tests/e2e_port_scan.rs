//! End-to-end port-scan detection over a live simulated network: the
//! extension app flags a vertical scanner from collected features and the
//! reactor blocks it, while normal clients stay untouched.

mod common;

use athena::apps::{ScanDetector, ScanDetectorConfig};
use athena::dataplane::workload;
use athena::types::SimTime;
use common::deploy_enterprise;

#[test]
fn live_scan_is_flagged_and_blocked_benign_clients_are_not() {
    let mut d = deploy_enterprise();
    let scanner = d.topo.hosts[0].ip;
    let target = d.topo.hosts[30].ip;
    let mut det = ScanDetector::new(ScanDetectorConfig::default());
    det.deploy(&d.athena);

    // Benign background plus the scan.
    d.inject_benign(80, 20, 401);
    d.inject(workload::port_scan(
        scanner,
        target,
        40,
        SimTime::from_secs(5),
        402,
    ));
    d.run_until_secs(25);

    let flagged = det.detect(&d.athena);
    assert_eq!(flagged, vec![scanner], "exactly the scanner is flagged");
    assert_eq!(d.athena.mitigated_hosts(), vec![scanner]);
    let (_pairs, max_ports) = det.probe_stats();
    assert!(max_ports >= 15, "probe tracking saw the scan: {max_ports}");

    // After blocking, further scan traffic is dropped at the access
    // switch.
    let dropped_before = d.net.counters().dropped_bytes;
    d.inject(workload::port_scan(
        scanner,
        target,
        20,
        SimTime::from_secs(27),
        403,
    ));
    d.run_until_secs(35);
    assert!(d.net.counters().dropped_bytes > dropped_before);
}
