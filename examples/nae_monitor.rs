//! Scenario 3 (paper §V-C): the Network Application Effectiveness (NAE)
//! monitor — a load balancer and a higher-priority security app compete
//! over FTP forwarding; the monitor detects the SLA violation and renders
//! the Figure 9 time series.
//!
//! ```bash
//! cargo run --example nae_monitor
//! ```

use athena::apps::{NaeMonitor, NaeMonitorConfig};
use athena::controller::apps::{LoadBalancer, SecurityApp};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{FlowSpec, Network, Topology};
use athena::types::{Dpid, FiveTuple, Ipv4Addr, Result, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<()> {
    // The Figure 8 topology: two paths to the server pod, an inline
    // security device on S6.
    let topo = Topology::nae();
    let mut net = Network::new(topo.clone());

    // The competing applications: LB splits server-bound traffic across
    // both paths with a soft timeout; the security app activates at
    // t=120s and takes FTP over at higher priority.
    let mut cluster = ControllerCluster::new(&topo);
    cluster.add_processor(Box::new(LoadBalancer::new((
        Ipv4Addr::new(10, 0, 4, 0),
        24,
    ))));
    cluster.add_processor(Box::new(
        SecurityApp::new(Dpid::new(6)).activate_at(SimTime::from_secs(120)),
    ));

    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);
    let monitor = NaeMonitor::new(NaeMonitorConfig::default());
    monitor.deploy(&athena);

    // FTP-dominated traffic from the edge clients, arriving continuously
    // so rule expiry (the sawtooth) and the takeover are both visible.
    let ftp_server = Ipv4Addr::new(10, 0, 4, 1);
    let web_server = Ipv4Addr::new(10, 0, 4, 2);
    let mut rng = StdRng::seed_from_u64(41);
    let mut flows = Vec::new();
    for t in (0..230).step_by(2) {
        let client = topo.hosts[rng.random_range(0..4)].ip;
        let (server, port) = if rng.random_range(0.0..1.0) < 0.8 {
            (ftp_server, 21)
        } else {
            (web_server, 80)
        };
        flows.push(
            FlowSpec::new(
                FiveTuple::tcp(client, rng.random_range(30_000..60_000), server, port),
                SimTime::from_secs(t),
                SimDuration::from_secs(8),
                4_000_000,
            )
            .bidirectional(0.1),
        );
    }
    net.inject_flows(flows);

    println!("running 240s; security app activates at t=120s…");
    net.run_until(SimTime::from_secs(240), &mut cluster);

    // The monitor's SLA check and the Figure 9 rendering.
    let violations = monitor.check_sla();
    println!(
        "samples: {}, SLA violations: {}",
        monitor.sample_count(),
        violations.len()
    );
    if let Some(first) = violations.first() {
        println!(
            "first violation at {} (S3={:.0} pkts vs S6={:.0} pkts, imbalance {:.2})",
            first.at, first.first, first.second, first.imbalance
        );
    }
    println!();
    println!(
        "{}",
        athena.show_series("Figure 9 — per-switch packet counts", &monitor.series())
    );
    Ok(())
}
