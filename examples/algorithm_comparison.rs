//! Runs all eleven Athena ML algorithms (Table IV) against the same DDoS
//! dataset through the uniform Detector Manager interface — the paper's
//! "an operator does not have to consider the characteristics of each ML
//! type" claim, demonstrated.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```

use athena::apps::dataset::{DdosDataset, FEATURES};
use athena::compute::ComputeCluster;
use athena::core::{DetectorManager, UiManager};
use athena::ml::algorithms::forest::ForestParams;
use athena::ml::algorithms::gbt::GbtParams;
use athena::ml::algorithms::gmm::GmmParams;
use athena::ml::algorithms::linear::LinearParams;
use athena::ml::algorithms::logistic::LogisticParams;
use athena::ml::algorithms::svm::SvmParams;
use athena::ml::algorithms::tree::TreeParams;
use athena::ml::{Algorithm, Normalization, Preprocessor};
use std::time::Instant;

fn main() {
    let data = DdosDataset::generate(30_000, 20170607);
    let (train, test) = data.points.split_at(15_000);
    let features: Vec<String> = FEATURES.iter().map(|s| (*s).to_owned()).collect();
    let dm = DetectorManager::new(ComputeCluster::new(4));
    let pre = Preprocessor::new().normalize(Normalization::MinMax);

    let algorithms: Vec<Algorithm> = vec![
        Algorithm::GradientBoostedTrees(GbtParams::default()),
        Algorithm::DecisionTree(TreeParams::default()),
        Algorithm::LogisticRegression(LogisticParams::default()),
        Algorithm::NaiveBayes,
        Algorithm::RandomForest(ForestParams::default()),
        Algorithm::Svm(SvmParams::default()),
        Algorithm::GaussianMixture(GmmParams::default()),
        Algorithm::kmeans(8),
        Algorithm::Lasso {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
        Algorithm::Linear(LinearParams::default()),
        Algorithm::Ridge {
            params: LinearParams::default(),
            lambda: 1e-3,
        },
    ];
    assert_eq!(algorithms.len(), 11, "the paper's eleven");

    println!(
        "training on {} entries, validating on {} (10-tuple features)\n",
        train.len(),
        test.len()
    );
    let mut rows = Vec::new();
    for a in &algorithms {
        let start = Instant::now();
        // The same two calls for every algorithm family — the uniform API.
        let model = dm
            .generate_from_points(train.to_vec(), &features, &pre, a)
            .expect("fit");
        let train_ms = start.elapsed().as_millis();
        let start = Instant::now();
        let summary = dm.validate_points(test, &model);
        let validate_ms = start.elapsed().as_millis();
        rows.push(vec![
            a.name().to_owned(),
            format!("{:?}", a.category()),
            format!("{:.4}", summary.confusion.detection_rate()),
            format!("{:.4}", summary.confusion.false_alarm_rate()),
            format!("{train_ms} ms"),
            format!("{validate_ms} ms"),
        ]);
    }
    let ui = UiManager::new();
    println!(
        "{}",
        ui.render_table(
            &[
                "Algorithm",
                "Category",
                "Detection",
                "False alarms",
                "Train",
                "Validate"
            ],
            &rows
        )
    );
    println!("every algorithm family was configured, trained, and validated through");
    println!("the same GenerateDetectionModel / ValidateFeatures calls (Table II).");
}
