//! Opt-in streaming pipeline (DESIGN.md §15): deploy a bootstrap model,
//! accumulate labeled live traffic in a sliding window, retrain an
//! online learner in the background, and hot-swap it mid-run — without
//! ever pausing detection.
//!
//! ```bash
//! cargo run --release --example stream_detector
//! ```

use athena::apps::{DdosDataset, DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, FeatureRecord};
use athena::dataplane::{workload, Network, Topology};
use athena::ml::Algorithm;
use athena::stream::{OnlineSpec, RetrainLoop, RetrainPolicy, StreamConfig};
use athena::types::{Result, SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() -> Result<()> {
    let topo = Topology::enterprise();
    let victim = topo.hosts[0].ip;

    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    // Live traffic: benign background, then a flood against the victim.
    net.inject_flows(workload::benign_mix_on(
        &topo,
        150,
        SimDuration::from_secs(30),
        101,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(8),
            duration: SimDuration::from_secs(22),
            ..workload::DdosParams::default()
        },
        102,
    ));

    let det = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });

    // The bootstrap: a model pretrained offline on synthetic data. It
    // serves from the very first record; the retrain loop then adapts
    // it to the live traffic.
    println!("bootstrap: pretraining K-Means on the synthetic dataset…");
    let pretrain = DdosDataset::generate(4_000, 3);
    let bootstrap = athena.detector_manager().generate_from_points(
        pretrain.points,
        &DdosDetector::features(),
        &det.preprocessor(),
        &Algorithm::kmeans(4),
    )?;

    // Deploy the streaming pipeline: incremental NB candidates fitted
    // on the live window every 10 virtual seconds, snapshotted through
    // the persist format, hot-swapped atomically.
    let snapshot = std::env::temp_dir().join("athena-stream-example.model");
    let truth_det = det.clone();
    let truth: Arc<dyn Fn(&FeatureRecord) -> bool + Send + Sync> =
        Arc::new(move |r| (truth_det.truth())(r));
    let alerts = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&alerts);
    let mut retrain = RetrainLoop::deploy(
        &athena,
        &det.query(),
        StreamConfig {
            name: "stream-ddos".to_owned(),
            features: DdosDetector::features(),
            spec: OnlineSpec::NaiveBayes,
            preprocessor: det.preprocessor(),
            policy: RetrainPolicy {
                snapshot: Some(snapshot.clone()),
                ..RetrainPolicy::default()
            },
        },
        truth,
        bootstrap,
        Box::new(move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            None
        }),
    );

    println!("running: ticking the retrain loop once per virtual second…");
    let end = SimTime::from_secs(35);
    while net.now() < end {
        let next = (net.now() + SimDuration::from_secs(1)).min(end);
        net.run_until(next, &mut cluster);
        if let Some(report) = retrain.tick(&athena, net.now()) {
            println!(
                "  t={:>2}s retrained {} on {} live points{}",
                report.at.as_secs_f64() as u64,
                report.algorithm,
                report.points,
                if report.swapped {
                    " → hot-swapped"
                } else {
                    " (swap failed)"
                },
            );
        }
    }

    println!(
        "done: {} alerts, {} retrains, {} live points in window",
        alerts.load(Ordering::Relaxed),
        retrain.reports().len(),
        retrain.live_points(),
    );
    let _ = std::fs::remove_file(&snapshot);
    Ok(())
}
