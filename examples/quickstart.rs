//! Quickstart: stand up a simulated three-controller SDN, attach Athena,
//! drive benign traffic, and explore the collected features.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig, Query};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{Result, SimDuration, SimTime};

fn main() -> Result<()> {
    // 1. The paper's Figure 7 enterprise topology: 18 switches, 48 links,
    //    3 controller domains.
    let topo = Topology::enterprise();
    println!(
        "topology: {} switches, {} links, {} controllers, {} hosts",
        topo.switches.len(),
        topo.unidirectional_link_count(),
        topo.controller_count(),
        topo.hosts.len()
    );

    // 2. The SDN stack: simulator + controller cluster, with one Athena
    //    southbound element attached per controller instance.
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    // 3. A minute of benign traffic.
    net.inject_flows(workload::benign_mix_on(
        &topo,
        300,
        SimDuration::from_secs(50),
        7,
    ));
    net.run_until(SimTime::from_secs(60), &mut cluster);
    println!(
        "simulated 60s: {} bytes delivered, {} packet-ins, {} flow-mods",
        net.delivered_bytes(),
        cluster.counters().packet_ins,
        cluster.counters().flow_mods,
    );

    // 4. Athena collected features the whole time. Query them.
    println!("stored features: {}", athena.stored_feature_count());

    let busiest = athena.request_features(&Query::parse(
        "feature==FLOW_STATS sort FLOW_BYTE_COUNT desc limit 5",
    )?);
    println!("\ntop flows by byte count:");
    for r in &busiest {
        println!(
            "  {} {:>12} bytes  {}",
            r.index.switch,
            r.field("FLOW_BYTE_COUNT").unwrap_or(0.0),
            r.index
                .five_tuple
                .map_or_else(|| "-".to_owned(), |ft| ft.to_string()),
        );
    }

    let congested = athena.request_features(&Query::parse(
        "feature==PORT_STATS && PORT_TX_UTILIZATION>0.5 limit 5",
    )?);
    println!("\nports above 50% utilization: {}", congested.len());

    let switch_state = athena.request_features(&Query::parse(
        "feature==SWITCH_STATE sort SWITCH_FLOW_COUNT desc limit 3",
    )?);
    println!("\nbusiest switches by live flows:");
    for r in &switch_state {
        println!(
            "  {}: {} flows, pair ratio {:.2}",
            r.index.switch,
            r.field("SWITCH_FLOW_COUNT").unwrap_or(0.0),
            r.field("SWITCH_PAIR_FLOW_RATIO").unwrap_or(0.0),
        );
    }
    Ok(())
}
