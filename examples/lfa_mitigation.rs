//! Scenario 2 (paper §V-B): link-flooding-attack mitigation — a
//! Crossfire-style attack saturates a core link with individually
//! innocuous flows; the Athena application detects the congestion from
//! volume features and blocks the bots.
//!
//! ```bash
//! cargo run --example lfa_mitigation
//! ```

use athena::apps::{LfaMitigator, LfaMitigatorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{Dpid, Result, SimDuration, SimTime};

fn main() -> Result<()> {
    // A linear topology makes the bottleneck link obvious: everything
    // from switches 1-2 toward 3-4 crosses the 2->3 link.
    let topo = Topology::linear(4, 6);
    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
    lfa.deploy(&athena);

    // Benign background plus the Crossfire attack on link 2 -> 3.
    net.inject_flows(workload::benign_mix_on(
        &topo,
        60,
        SimDuration::from_secs(60),
        31,
    ));
    net.inject_flows(workload::crossfire(
        &topo,
        Dpid::new(2),
        Dpid::new(3),
        workload::CrossfireParams {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(60),
            n_flows: 400,
            per_flow_rate_bps: 5_000_000,
        },
        32,
    ));

    // Run in steps, letting the application mitigate between them — the
    // paper's applications likewise run beside Athena and react to
    // delivered events.
    let mut blocked_total = 0;
    for step in 1..=8 {
        net.run_until(SimTime::from_secs(step * 10), &mut cluster);
        let bottleneck = topo
            .link_from(Dpid::new(2), athena::types::PortNo::new(1))
            .expect("bottleneck link");
        let utilization = net.link(bottleneck).map_or(0.0, |l| l.utilization());
        let newly = lfa.mitigate(&athena);
        blocked_total += newly.len();
        println!(
            "t={:>3}s  link 2->3 utilization {:>5.2}  alerts pending {}  newly blocked {}",
            step * 10,
            utilization,
            lfa.pending_alerts(),
            newly.len()
        );
    }
    println!(
        "\nblocked {} bot hosts: {:?}",
        blocked_total,
        lfa.blocked_hosts()
    );

    println!("\nTable VII — LFA capability comparison:");
    for row in LfaMitigator::capability_comparison() {
        println!("  {:<22} {:<14} {}", row[0], row[1], row[2]);
    }
    Ok(())
}
