//! Scenario 1 (paper §V-A): the large-scale DDoS attack detector,
//! end-to-end over the simulated enterprise network — train a K-Means
//! model on collected features, validate, print the Figure 6 report, and
//! deploy live detection with automatic blocking.
//!
//! ```bash
//! cargo run --example ddos_detector
//! ```

use athena::apps::{DdosDetector, DdosDetectorConfig};
use athena::controller::ControllerCluster;
use athena::core::{Athena, AthenaConfig};
use athena::dataplane::{workload, Network, Topology};
use athena::types::{Result, SimDuration, SimTime};

fn main() -> Result<()> {
    let topo = Topology::enterprise();
    let victim = topo.hosts[0].ip;

    let mut net = Network::new(topo.clone());
    let mut cluster = ControllerCluster::new(&topo);
    let athena = Athena::new(AthenaConfig::default());
    athena.attach(&mut cluster);

    // Phase 1: benign background + a DDoS flood against the victim.
    println!("phase 1: collecting labeled traffic (benign mix + flood on {victim})…");
    net.inject_flows(workload::benign_mix_on(
        &topo,
        200,
        SimDuration::from_secs(40),
        21,
    ));
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(30),
            ..workload::DdosParams::default()
        },
        22,
    ));
    net.run_until(SimTime::from_secs(50), &mut cluster);
    println!("  features collected: {}", athena.stored_feature_count());

    // Phase 2: the Application-1 pseudocode — model creation + validation.
    let detector = DdosDetector::new(DdosDetectorConfig {
        victim,
        ..DdosDetectorConfig::default()
    });
    println!("phase 2: GenerateDetectionModel (K-Means, K=8)…");
    let model = detector.train(&athena)?;
    println!("  trained on {} entries", model.trained_on);

    println!("phase 3: ValidateFeatures…");
    let summary = detector.test(&athena, &model);
    println!("{}", athena.show_results(&summary));

    // Phase 4: live detection with mitigation.
    println!("phase 4: AddOnlineValidator + Reactor (Block)…");
    detector.deploy_online(&athena, model);
    net.inject_flows(workload::ddos_flood(
        &topo,
        victim,
        workload::DdosParams {
            start: SimTime::from_secs(55),
            duration: SimDuration::from_secs(20),
            n_flows: 100,
            ..workload::DdosParams::default()
        },
        23,
    ));
    net.run_until(SimTime::from_secs(80), &mut cluster);
    println!(
        "  alerts: {}, hosts blocked: {}",
        athena.total_alerts(),
        athena.mitigated_hosts().len()
    );
    Ok(())
}
