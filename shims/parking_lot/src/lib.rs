//! In-repo parking_lot shim.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly, recovering from
//! poisoning instead of returning a `Result`. Semantics (mutual exclusion,
//! reader/writer behavior) are std's; only the API shape matches
//! parking_lot.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}
