//! In-repo rand shim.
//!
//! Provides `StdRng` (xoshiro256++ seeded via SplitMix64), `SeedableRng`,
//! the `RngExt` extension trait (`random_range`), and the slice helpers
//! `choose`/`shuffle`. Deterministic given a seed, which is all the
//! workspace's workload generators and tests require.

#![forbid(unsafe_code)]

/// Core pseudo-random source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for code written against the `Rng` trait name.
pub use self::RngExt as Rng;

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Element types uniform ranges can be sampled over.
///
/// `SampleRange` is implemented generically over this trait so the range's
/// element type stays a single inference variable — float literals like
/// `rng.random_range(1.0..30.0)` then fall back to `f64` as with real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]` (`inclusive`).
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u64;
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return (rng.next_u64() as i128) as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine in this shim.
    pub type SmallRng = StdRng;
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}
