//! In-repo bytes shim: the `Bytes`/`BytesMut`/`Buf`/`BufMut` subset the
//! OpenFlow codec uses, backed by `Vec<u8>` (big-endian put/get, advancing
//! reads over `&[u8]`).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// The buffer as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.data)
    }
}

/// A growable byte buffer with big-endian put operations.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Advancing big-endian reads over a byte source.
///
/// The `get_*` methods panic on underflow, matching the real crate —
/// callers are expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Reads exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Big-endian append operations.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
