//! In-repo serde shim.
//!
//! The build environment has no registry access, so this crate supplies the
//! slice of serde the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` plus value-tree serialization consumed by the
//! `serde_json` shim. The data model is simplified — a type converts to and
//! from a [`Value`] tree directly rather than driving a
//! Serializer/Deserializer pair — but the JSON it produces matches what
//! real serde emits for the shapes this workspace derives on.

#![forbid(unsafe_code)]

pub mod value;

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, v: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {v:?}")))
}

// ---- scalar impls --------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl Deserialize for $t {
            // try_from is infallible for same-width conversions only.
            #[allow(irrefutable_let_patterns)]
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => {
                        if let Some(i) = n.as_i64() {
                            if let Ok(x) = <$t>::try_from(i) {
                                return Ok(x);
                            }
                        }
                        if let Some(u) = n.as_u64() {
                            if let Ok(x) = <$t>::try_from(u) {
                                return Ok(x);
                            }
                        }
                        type_error(concat!("integer in range of ", stringify!($t)), v)
                    }
                    _ => type_error(stringify!($t), v),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| Error::custom("bad number")),
            // Non-finite floats serialize to null; recover them as NaN so
            // `struct { x: f64 }` round trips instead of erroring.
            Value::Null => Ok(f64::NAN),
            _ => type_error("f64", v),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().map_or_else(|| type_error("bool", v), Ok)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .map_or_else(|| type_error("string", v), Ok)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str().map(|s| (s.chars().next(), s.chars().count())) {
            Some((Some(c), 1)) => Ok(c),
            _ => type_error("single-character string", v),
        }
    }
}

// ---- container impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, Serialize::to_value)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => type_error("array", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of {N} elements, found {len}")))
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_error("object", v),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_error("object", v),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) => Ok((
                        $($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+
                    )),
                    _ => type_error("array (tuple)", v),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---- identity impls for the value tree itself ----------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            _ => type_error("object", v),
        }
    }
}

impl Serialize for Number {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for Number {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            _ => type_error("number", v),
        }
    }
}
