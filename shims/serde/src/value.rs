//! The JSON-like value tree at the heart of the serde shim.
//!
//! `serde_json` (the shim) re-exports these types, so a value produced by
//! serializing with the `serde` traits is *the same type* the JSON layer
//! parses and prints.

use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;

/// An ordered string-keyed object map (BTreeMap-backed, like serde_json's
/// default `Map`).
#[derive(Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Looks up a value mutably by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.inner.get_mut(key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }

    /// Iterates entries mutably in key order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, String, Value> {
        self.inner.iter_mut()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, String, Value> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> btree_map::Values<'_, String, Value> {
        self.inner.values()
    }
}

impl fmt::Debug for Map<String, Value> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for Map<String, Value> {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// A JSON number: an integer stored exactly, or a finite float.
#[derive(Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Builds a number from a float; `None` for NaN or infinities.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number::Float(f))
    }

    /// The value as an `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f) => (f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64)
                .then_some(f as i64),
        }
    }

    /// The value as a `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(f) => {
                (f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64).then_some(f as u64)
            }
        }
    }

    /// The value as an `f64` (always available, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(u) => Some(u as f64),
            Number::NegInt(i) => Some(i as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// Whether this is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        matches!(*self, Number::NegInt(_))
            || matches!(*self, Number::PosInt(u) if i64::try_from(u).is_ok())
    }

    /// Whether this is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(*self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            // Integers compare by value across signs; floats only to floats,
            // matching serde_json (1 != 1.0).
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64(), a.as_u64(), b.as_u64()) {
                (Some(x), Some(y), _, _) => x == y,
                (_, _, Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            // `{:?}` on f64 always prints a decimal point or exponent, so
            // floats survive a print/parse round trip as floats.
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// A JSON value.
#[derive(Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a mutable array, if it is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a mutable object, if it is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "Null"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Number(n) => write!(f, "Number({n})"),
            Value::String(s) => write!(f, "String({s:?})"),
            Value::Array(a) => f.debug_tuple("Array").field(a).finish(),
            Value::Object(m) => f.debug_tuple("Object").field(m).finish(),
        }
    }
}

impl fmt::Display for Value {
    /// Prints compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON-escaped, double-quoted string.
#[doc(hidden)]
pub fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                #[allow(unused_comparisons)]
                if v < 0 {
                    Number::NegInt(v as i64)
                } else {
                    Number::PosInt(v as u64)
                }
            }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_from_copy_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}
impl_from_copy_ref!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Null
    }
}
