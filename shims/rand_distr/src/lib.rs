//! In-repo rand_distr shim: the exponential, Pareto, and Zipf
//! distributions the data-plane workload generators sample from.

#![forbid(unsafe_code)]

use rand::RngCore;
use std::fmt;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that produce samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: avoids ln(0) and division by zero.
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    u.min(1.0)
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(Error("Exp rate must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Pareto distribution with the given scale (minimum) and shape.
#[derive(Debug, Clone, Copy)]
pub struct Pareto<F = f64> {
    scale: F,
    inv_shape: F,
}

impl Pareto<f64> {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless both parameters are finite and positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0 {
            Ok(Pareto {
                scale,
                inv_shape: 1.0 / shape,
            })
        } else {
            Err(Error("Pareto scale and shape must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * unit_open(rng).powf(-self.inv_shape)
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s`.
///
/// Samples by inversion over a precomputed cumulative table, which is exact
/// and fast for the domain sizes this workspace uses (host counts).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `{1, …, n}`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless `n >= 1` and `s` is finite and
    /// non-negative.
    pub fn new(n: f64, s: f64) -> Result<Self, Error> {
        let count = n as usize;
        if count < 1 || !n.is_finite() {
            return Err(Error("Zipf needs n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error("Zipf exponent must be finite and non-negative"));
        }
        let mut cumulative = Vec::with_capacity(count);
        let mut total = 0.0;
        for k in 1..=count {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        Ok(Zipf { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = match self.cumulative.last() {
            Some(&t) => t,
            None => return 1.0,
        };
        let target = unit_open(rng) * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < target)
            .min(self.cumulative.len() - 1);
        (idx + 1) as f64
    }
}
