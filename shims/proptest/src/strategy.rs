//! Value-generation strategies.

use crate::TestRng;
use rand::{RngCore, RngExt};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Transforms generated values, retrying when `f` returns `None`.
    ///
    /// `whence` names the filter in the panic message emitted if the
    /// filter rejects too many candidates in a row.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            source: self,
            whence,
            f,
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy generating arbitrary values of `T` (see [`crate::any`]).
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter applying a function (see [`Strategy::prop_map`]).
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy adapter filtering and mapping (see
/// [`Strategy::prop_filter_map`]).
#[derive(Clone)]
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        for _ in 0..1_000 {
            if let Some(v) = (self.f)(self.source.new_value(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Inclusive bounds on generated collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing vectors (see [`crate::collection::vec`]).
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(elem: S, size: SizeRange) -> Self {
        VecStrategy { elem, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
}

/// Strategy producing options (see [`crate::option::of`]).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_bool(0.75) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// Object-safe strategy view, used to erase heterogeneous strategies so
/// `prop_oneof!` can hold them in one `Vec`.
pub trait DynStrategy<T> {
    /// Generates one value.
    fn dyn_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Erases a strategy's concrete type (macro plumbing for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).dyn_value(rng)
    }
}

/// Strategy choosing uniformly among alternatives (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].dyn_value(rng)
    }
}
