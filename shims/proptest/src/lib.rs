//! In-repo proptest shim.
//!
//! Generation-only property testing: strategies produce random values from
//! a deterministic per-test seed and the `proptest!` macro runs each
//! property over a configurable number of cases. No shrinking — a failing
//! case panics with the generated inputs' debug representation instead.
//!
//! Covers the API surface the workspace's property tests use: `any`,
//! ranges, tuples, `Just`, `prop_oneof!`, `prop_map`, `prop_filter_map`,
//! `proptest::collection::vec`, `proptest::option::of`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: the shim runs on constrained
        // CI hardware and does no shrinking, so failures print directly.
        ProptestConfig { cases: 48 }
    }
}

/// FNV-1a hash of a test path, used as the deterministic seed base.
#[doc(hidden)]
pub fn seed_for(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the RNG for one case.
#[doc(hidden)]
pub fn new_rng(base: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generates a value from a strategy (macro plumbing).
#[doc(hidden)]
pub fn generate<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.new_value(rng)
}

/// Strategy for any value of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing vectors of `elem` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(elem, size.into())
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::new_rng(__base, __case);
                    $( let $pat = $crate::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, panicking with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!(
                        "prop_assert_eq failed: `{:?}` != `{:?}`",
                        __l, __r
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!(
                        "prop_assert_eq failed: `{:?}` != `{:?}`: {}",
                        __l, __r, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    panic!("prop_assert_ne failed: both `{:?}`", __l);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    panic!(
                        "prop_assert_ne failed: both `{:?}`: {}",
                        __l, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Skips the current case when the precondition does not hold.
///
/// Expands to a `continue` targeting the per-case loop `proptest!`
/// generates, so it must appear at the top level of a property body (not
/// inside a nested loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}
