//! In-repo criterion shim.
//!
//! A minimal benchmark harness exposing the criterion API surface the
//! workspace's benches use: `Criterion::default()` with the
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `bench_function` with `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. It times a warm-up pass, then runs samples
//! until the measurement budget is spent and prints mean and minimum
//! per-iteration times — no statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver holding timing configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm up and estimate per-iteration cost so samples can batch
        // enough iterations to out-resolve the timer.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_up_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            if bencher.elapsed > Duration::ZERO {
                per_iter = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
            }
            // Grow batches until one batch takes ~1ms.
            if bencher.elapsed < Duration::from_millis(1) {
                bencher.iters = bencher.iters.saturating_mul(2);
            }
        }

        let per_sample =
            self.measurement_time / u32::try_from(self.sample_size).unwrap_or(u32::MAX);
        let iters_per_sample = if per_iter.is_zero() {
            bencher.iters
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u64::MAX))
                as u64
        };

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let mut best = Duration::MAX;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            f(&mut bencher);
            total += bencher.elapsed;
            total_iters += bencher.iters;
            let sample_per_iter =
                bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
            if sample_per_iter < best {
                best = sample_per_iter;
            }
            if measure_start.elapsed() > self.measurement_time.saturating_mul(2) {
                break; // Keep slow benches bounded.
            }
        }

        let mean = if total_iters == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(total_iters).unwrap_or(u32::MAX)
        };
        println!("{name:<40} mean {mean:>12.2?}   min {best:>12.2?}   ({total_iters} iters)");
        self
    }

    /// Finalizes the run (no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier, re-exported for call sites that import it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Defines the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
