//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-repo serde shim.
//!
//! No `syn`/`quote` (the build environment has no registry access): the item
//! is parsed directly from the raw token stream and the impl is emitted as a
//! string. Supports exactly the shapes this workspace derives on —
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. Anything else produces a compile error
//! naming the unsupported construct.
//!
//! The generated impls target the shim's simplified data model: a type
//! serializes to a `serde::Value` tree and deserializes from one, using
//! serde's externally-tagged representation for enums and transparent
//! newtypes, so JSON produced via `serde_json` matches what real serde
//! would emit for these types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let (name, body) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .unwrap_or_default()
        }
    };
    let code = match dir {
        Direction::Serialize => gen_serialize(&name, &body),
        Direction::Deserialize => gen_deserialize(&name, &body),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => format!("compile_error!(\"serde_derive shim generated invalid code: {e}\");")
            .parse()
            .unwrap_or_default(),
    }
}

// ---- token-level parsing -------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Body), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!(
            "serde shim derive does not support where-clauses on `{name}`"
        ));
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => return Err(format!("cannot derive on `{other}` items")),
    };
    Ok((name, body))
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth <= 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        // Now at a `,` or the end.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---- code generation -----------------------------------------------------

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\
                         let mut __m = ::serde::Map::new();\
                         __m.insert(::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_value(__f0));\
                         ::serde::Value::Object(__m) }}\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\
                             let mut __m = ::serde::Map::new();\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(vec![{}]));\
                             ::serde::Value::Object(__m) }}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut __i = ::serde::Map::new();");
                        for f in fields {
                            inner.push_str(&format!(
                                "__i.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner}\
                             let mut __m = ::serde::Map::new();\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__i));\
                             ::serde::Value::Object(__m) }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body_code}\n}}\n}}\n"
    )
}

fn named_fields_ctor(path: &str, fields: &[String], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\
             {source}.get({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
        ));
    }
    format!("{path} {{\n{inits}}}")
}

fn tuple_ctor(path: &str, n: usize, arr: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|k| {
            format!(
                "::serde::Deserialize::from_value(\
                 {arr}.get({k}).unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!("{path}({})", items.join(", "))
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::NamedStruct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| \
             ::serde::Error::custom(concat!(\"expected object for struct \", {name:?})))?;\n\
             ::std::result::Result::Ok({})",
            named_fields_ctor(name, fields, "__obj")
        ),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => format!(
            "let __arr = __v.as_array().ok_or_else(|| \
             ::serde::Error::custom(concat!(\"expected array for struct \", {name:?})))?;\n\
             ::std::result::Result::Ok({})",
            tuple_ctor(name, *n, "__arr")
        ),
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantFields::Tuple(n) => tagged_arms.push_str(&format!(
                        "{vn:?} => {{\
                         let __arr = __inner.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for tuple variant\"))?;\
                         return ::std::result::Result::Ok({}); }}\n",
                        tuple_ctor(&format!("{name}::{vn}"), *n, "__arr")
                    )),
                    VariantFields::Named(fields) => tagged_arms.push_str(&format!(
                        "{vn:?} => {{\
                         let __obj = __inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for struct variant\"))?;\
                         return ::std::result::Result::Ok({}); }}\n",
                        named_fields_ctor(&format!("{name}::{vn}"), fields, "__obj")
                    )),
                }
            }
            format!(
                "if let ::serde::Value::String(__s) = __v {{\n\
                     match __s.as_str() {{\n{unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::serde::Value::Object(__m) = __v {{\n\
                     if let ::std::option::Option::Some((__k, __inner)) = __m.iter().next() {{\n\
                         match __k.as_str() {{\n{tagged_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"unknown variant for enum \", {name:?})))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body_code}\n}}\n}}\n"
    )
}
