//! In-repo serde_json shim: JSON text over the serde shim's [`Value`] tree.
//!
//! Provides the functions and macros this workspace uses: [`to_string`],
//! [`to_vec`], [`from_str`], [`from_slice`], [`to_value`], [`from_value`],
//! and [`json!`]. Floats print with Rust's shortest-round-trip formatting,
//! so the `float_roundtrip` feature of real serde_json is implied.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value::write_json_string;
pub use serde::{Map, Number, Value};

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the real
/// API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Never fails for the shim's data model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the shim's data model.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Parses JSON bytes into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on non-UTF-8 input, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// ---- parser --------------------------------------------------------------

fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {}", *pos)))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_at(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                            } else {
                                return Err(Error("lone high surrogate".into()));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error(format!("bad unicode escape {code:#x}")))?,
                        );
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is valid UTF-8).
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xc0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end]).map_err(|e| Error(e.to_string()))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| Error("truncated \\u escape".into()))?;
    let s = std::str::from_utf8(chunk).map_err(|e| Error(e.to_string()))?;
    u32::from_str_radix(s, 16).map_err(|e| Error(e.to_string()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| Error(e.to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::NegInt(i)));
        }
    }
    let f: f64 = text
        .parse()
        .map_err(|e: std::num::ParseFloatError| Error(e.to_string()))?;
    Number::from_f64(f)
        .map(Value::Number)
        .ok_or_else(|| Error(format!("non-finite number {text}")))
}

// ---- json! macro ---------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax, embedding Rust expressions.
///
/// Supports the forms this workspace uses: literals, `null`, arrays,
/// objects with string-literal keys, and arbitrary `Into<Value>`
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}
