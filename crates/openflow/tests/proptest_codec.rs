//! Property-based tests: wire-codec round-trips for arbitrary messages and
//! flow-table invariants under arbitrary operation sequences.

use athena_openflow::{
    decode_message, encode_message, Action, AggregateStats, FeaturesReply, FlowMod, FlowRemoved,
    FlowRemovedReason, FlowStatsEntry, FlowTable, MatchFields, OfMessage, OfVersion, PacketHeader,
    PacketOut, PortStatsEntry, PortStatus, PortStatusReason, StatsReply, StatsRequest,
    TableStatsEntry,
};
use athena_types::{
    Dpid, EtherType, IpProto, Ipv4Addr, MacAddr, PortNo, SimDuration, SimTime, Xid,
};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from_raw)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_proto() -> impl Strategy<Value = IpProto> {
    any::<u8>().prop_map(IpProto::from_number)
}

fn arb_match() -> impl Strategy<Value = MatchFields> {
    (
        proptest::option::of(any::<u16>().prop_map(|p| PortNo::new(u32::from(p) + 1))),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>().prop_map(EtherType::from_number)),
        proptest::option::of(0u16..4096),
        proptest::option::of((arb_ip(), 1u8..=32)),
        proptest::option::of((arb_ip(), 1u8..=32)),
        proptest::option::of(arb_proto()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(
            |(
                in_port,
                eth_src,
                eth_dst,
                eth_type,
                vlan_id,
                ip_src,
                ip_dst,
                ip_proto,
                tp_src,
                tp_dst,
            )| {
                MatchFields {
                    in_port,
                    eth_src,
                    eth_dst,
                    eth_type,
                    vlan_id,
                    ip_src,
                    ip_dst,
                    ip_proto,
                    tp_src,
                    tp_dst,
                }
            },
        )
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<u16>().prop_map(|p| Action::Output(PortNo::new(u32::from(p)))),
        arb_mac().prop_map(Action::SetEthSrc),
        arb_mac().prop_map(Action::SetEthDst),
        arb_ip().prop_map(Action::SetIpSrc),
        arb_ip().prop_map(Action::SetIpDst),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
        (any::<u16>(), any::<u32>()).prop_map(|(p, q)| Action::Enqueue {
            port: PortNo::new(u32::from(p)),
            queue_id: q
        }),
    ]
}

fn arb_header() -> impl Strategy<Value = PacketHeader> {
    (
        1u32..1000,
        arb_ip(),
        any::<u16>(),
        arb_ip(),
        any::<u16>(),
        64u32..1500,
    )
        .prop_map(|(port, src, sp, dst, dp, len)| {
            PacketHeader::from_five_tuple(
                PortNo::new(port),
                athena_types::FiveTuple::tcp(src, sp, dst, dp),
                len,
            )
        })
}

fn arb_flow_mod() -> impl Strategy<Value = FlowMod> {
    (
        arb_match(),
        any::<u16>(),
        proptest::collection::vec(arb_action(), 0..4),
        0u64..100,
        0u64..100,
        any::<u64>(),
    )
        .prop_map(|(m, prio, actions, idle, hard, cookie)| {
            let mut fm = FlowMod::add(m, prio, actions)
                .with_idle_timeout(SimDuration::from_secs(idle))
                .with_hard_timeout(SimDuration::from_secs(hard));
            fm.cookie = cookie;
            fm
        })
}

// `None` encodes as the OFP_NO_BUFFER sentinel, so a present buffer id
// must stay below it to survive the round trip.
fn arb_buffer_id() -> impl Strategy<Value = Option<u32>> {
    proptest::option::of(0u32..0xffff_fffe)
}

fn arb_echo_data() -> impl Strategy<Value = athena_openflow::EchoData> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(athena_openflow::EchoData)
}

fn arb_features_reply() -> impl Strategy<Value = FeaturesReply> {
    (
        any::<u64>(),
        any::<u8>(),
        proptest::collection::vec(any::<u32>().prop_map(PortNo::new), 0..8),
    )
        .prop_map(|(dpid, n_tables, ports)| FeaturesReply {
            dpid: Dpid::new(dpid),
            n_tables,
            ports,
        })
}

fn arb_flow_removed() -> impl Strategy<Value = FlowRemoved> {
    (
        arb_match(),
        any::<u64>(),
        any::<u16>(),
        prop_oneof![
            Just(FlowRemovedReason::IdleTimeout),
            Just(FlowRemovedReason::HardTimeout),
            Just(FlowRemovedReason::Delete),
        ],
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(match_fields, cookie, priority, reason, micros, pkts, bytes)| FlowRemoved {
                match_fields,
                cookie,
                priority,
                reason,
                duration: SimDuration::from_micros(micros),
                packet_count: pkts,
                byte_count: bytes,
            },
        )
}

fn arb_port_status() -> impl Strategy<Value = PortStatus> {
    (
        prop_oneof![
            Just(PortStatusReason::Add),
            Just(PortStatusReason::Delete),
            Just(PortStatusReason::Modify),
        ],
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(reason, port, link_up)| PortStatus {
            reason,
            port_no: PortNo::new(port),
            link_up,
        })
}

fn arb_stats_request() -> impl Strategy<Value = StatsRequest> {
    prop_oneof![
        arb_match().prop_map(|filter| StatsRequest::Flow { filter }),
        arb_match().prop_map(|filter| StatsRequest::Aggregate { filter }),
        any::<u32>().prop_map(|p| StatsRequest::Port {
            port_no: PortNo::new(p)
        }),
        Just(StatsRequest::Table),
    ]
}

fn arb_flow_stats_entry() -> impl Strategy<Value = FlowStatsEntry> {
    (
        (
            any::<u8>(),
            arb_match(),
            any::<u16>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_action(), 0..3),
        ),
    )
        .prop_map(
            |(
                (table_id, match_fields, priority, duration, idle, hard),
                (cookie, packet_count, byte_count, actions),
            )| FlowStatsEntry {
                table_id,
                match_fields,
                priority,
                duration: SimDuration::from_micros(duration),
                idle_timeout: SimDuration::from_micros(idle),
                hard_timeout: SimDuration::from_micros(hard),
                cookie,
                packet_count,
                byte_count,
                actions,
            },
        )
}

fn arb_port_stats_entry() -> impl Strategy<Value = PortStatsEntry> {
    (
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(port, (rxp, txp, rxb, txb), (rxd, txd, rxe, txe))| PortStatsEntry {
                port_no: PortNo::new(port),
                rx_packets: rxp,
                tx_packets: txp,
                rx_bytes: rxb,
                tx_bytes: txb,
                rx_dropped: rxd,
                tx_dropped: txd,
                rx_errors: rxe,
                tx_errors: txe,
            },
        )
}

fn arb_table_stats_entry() -> impl Strategy<Value = TableStatsEntry> {
    (any::<u8>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
        |(table_id, active, lookups, matched)| TableStatsEntry {
            table_id,
            active_count: active,
            lookup_count: lookups,
            matched_count: matched,
        },
    )
}

fn arb_stats_reply() -> impl Strategy<Value = StatsReply> {
    prop_oneof![
        proptest::collection::vec(arb_flow_stats_entry(), 0..4).prop_map(StatsReply::Flow),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(p, b, f)| {
            StatsReply::Aggregate(AggregateStats {
                packet_count: p,
                byte_count: b,
                flow_count: f,
            })
        }),
        proptest::collection::vec(arb_port_stats_entry(), 0..6).prop_map(StatsReply::Port),
        proptest::collection::vec(arb_table_stats_entry(), 0..6).prop_map(StatsReply::Table),
    ]
}

/// Every [`OfMessage`] variant — the round-trip property quantifies over
/// the complete message surface, not a convenient subset.
fn arb_message() -> impl Strategy<Value = OfMessage> {
    let xid = any::<u32>().prop_map(Xid::new);
    prop_oneof![
        (xid.clone(), any::<u8>()).prop_map(|(xid, v)| OfMessage::Hello { xid, version: v }),
        (xid.clone(), arb_echo_data()).prop_map(|(xid, data)| OfMessage::EchoRequest { xid, data }),
        (xid.clone(), arb_echo_data()).prop_map(|(xid, data)| OfMessage::EchoReply { xid, data }),
        xid.clone()
            .prop_map(|xid| OfMessage::FeaturesRequest { xid }),
        (xid.clone(), arb_features_reply())
            .prop_map(|(xid, body)| OfMessage::FeaturesReply { xid, body }),
        (xid.clone(), arb_buffer_id(), arb_header()).prop_map(|(xid, buffer_id, h)| {
            let OfMessage::PacketIn { mut body, .. } = OfMessage::packet_in(xid, h) else {
                unreachable!()
            };
            body.buffer_id = buffer_id;
            OfMessage::PacketIn { xid, body }
        }),
        (
            xid.clone(),
            arb_buffer_id(),
            arb_header(),
            proptest::collection::vec(arb_action(), 0..4)
        )
            .prop_map(|(xid, buffer_id, header, actions)| OfMessage::PacketOut {
                xid,
                body: PacketOut {
                    buffer_id,
                    header,
                    actions,
                },
            }),
        (xid.clone(), arb_flow_mod()).prop_map(|(xid, body)| OfMessage::FlowMod { xid, body }),
        (xid.clone(), arb_flow_removed())
            .prop_map(|(xid, body)| OfMessage::FlowRemoved { xid, body }),
        (xid.clone(), arb_port_status())
            .prop_map(|(xid, body)| OfMessage::PortStatus { xid, body }),
        (xid.clone(), arb_stats_request())
            .prop_map(|(xid, body)| OfMessage::StatsRequest { xid, body }),
        (xid.clone(), arb_stats_reply())
            .prop_map(|(xid, body)| OfMessage::StatsReply { xid, body }),
        xid.clone()
            .prop_map(|xid| OfMessage::BarrierRequest { xid }),
        xid.prop_map(|xid| OfMessage::BarrierReply { xid }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip_v10(msg in arb_message()) {
        let wire = encode_message(&msg, OfVersion::V1_0);
        let (back, v) = decode_message(&wire).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(v, OfVersion::V1_0);
    }

    #[test]
    fn codec_roundtrip_v13(msg in arb_message()) {
        let wire = encode_message(&msg, OfVersion::V1_3);
        let (back, v) = decode_message(&wire).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(v, OfVersion::V1_3);
    }

    /// Decoding must never panic, whatever the bytes — arbitrary garbage
    /// returns `Ok` or `Err`, nothing else.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }

    /// Truncating a valid encoding at any point must yield a clean decode
    /// result (usually an error), never a panic or an out-of-bounds read.
    #[test]
    fn decode_never_panics_on_truncation(msg in arb_message(), cut in any::<usize>()) {
        for version in [OfVersion::V1_0, OfVersion::V1_3] {
            let wire = encode_message(&msg, version);
            let cut = cut % (wire.len() + 1);
            let _ = decode_message(&wire[..cut]);
        }
    }

    /// Corrupting any single byte of a valid encoding must yield a clean
    /// decode result; if it still decodes, the result is a valid message
    /// (we only require no panic).
    #[test]
    fn decode_never_panics_on_mutation(
        msg in arb_message(),
        pos in any::<usize>(),
        val in any::<u8>(),
    ) {
        for version in [OfVersion::V1_0, OfVersion::V1_3] {
            let mut wire = encode_message(&msg, version).to_vec();
            let pos = pos % wire.len();
            wire[pos] = val;
            let _ = decode_message(&wire);
        }
    }

    #[test]
    fn match_never_matches_less_specific_than_subset(m in arb_match(), h in arb_header()) {
        // If a match hits a packet, every match it is a subset of also hits.
        let wide = MatchFields::new().with_eth_type(EtherType::Ipv4);
        if m.is_subset_of(&wide) && m.matches(&h) {
            prop_assert!(wide.matches(&h));
        }
        // The all-wildcard match hits everything.
        prop_assert!(MatchFields::new().matches(&h));
    }

    #[test]
    fn highest_priority_entry_wins(
        mods in proptest::collection::vec(arb_flow_mod(), 1..20),
        h in arb_header(),
    ) {
        let mut table = FlowTable::new(0);
        for fm in &mods {
            table.apply(fm, SimTime::ZERO).unwrap();
        }
        let best: Option<u16> = table
            .iter()
            .filter(|e| e.match_fields.matches(&h))
            .map(|e| e.priority)
            .max();
        // Ignore timeouts by looking up at install time.
        if let Some(hit_priority) = table
            .lookup(&h, SimTime::ZERO, 1, 64)
            .map(|e| e.priority)
        {
            prop_assert_eq!(Some(hit_priority), best);
        } else {
            prop_assert_eq!(best, None);
        }
    }

    #[test]
    fn expiry_is_monotone(
        fm in arb_flow_mod(),
        t1 in 0u64..200,
        t2 in 0u64..200,
    ) {
        // If an entry is expired at t1, it is expired at every t2 >= t1.
        let (t1, t2) = (t1.min(t2), t1.max(t2));
        let mut a = FlowTable::new(0);
        a.apply(&fm, SimTime::ZERO).unwrap();
        let mut b = a.clone();
        let removed_early = !a.expire(SimTime::from_secs(t1)).is_empty();
        let removed_late = !b.expire(SimTime::from_secs(t2)).is_empty();
        if removed_early {
            prop_assert!(removed_late);
        }
    }

    #[test]
    fn delete_all_empties_table(mods in proptest::collection::vec(arb_flow_mod(), 0..20)) {
        let mut table = FlowTable::new(0);
        for fm in &mods {
            table.apply(fm, SimTime::ZERO).unwrap();
        }
        table.apply(&FlowMod::delete(MatchFields::new()), SimTime::ZERO).unwrap();
        prop_assert!(table.is_empty());
    }
}

// Oracle test: the flow table's winner must agree with a naive reference
// implementation of OpenFlow matching semantics (highest priority, then
// specificity, then recency).
proptest! {
    #[test]
    fn table_agrees_with_naive_oracle(
        mods in proptest::collection::vec(arb_flow_mod(), 1..25),
        h in arb_header(),
    ) {
        let mut table = FlowTable::new(0);
        // The naive oracle: (priority, specificity, insertion seq, actions).
        let mut oracle: Vec<(u16, u32, usize, MatchFields)> = Vec::new();
        for (seq, fm) in mods.iter().enumerate() {
            table.apply(fm, SimTime::ZERO).unwrap();
            // Adds replace identical (match, priority) entries.
            oracle.retain(|(p, _, _, m)| !(*p == fm.priority && *m == fm.match_fields));
            oracle.push((
                fm.priority,
                fm.match_fields.specificity(),
                seq,
                fm.match_fields,
            ));
        }
        let expected = oracle
            .iter()
            .filter(|(_, _, _, m)| m.matches(&h))
            .max_by_key(|(p, s, seq, _)| (*p, *s, *seq))
            .map(|(p, s, _, _)| (*p, *s));
        let got = table
            .lookup(&h, SimTime::ZERO, 1, 64)
            .map(|e| (e.priority, e.match_fields.specificity()));
        prop_assert_eq!(got, expected);
    }

    /// Flow statistics are conserved: the aggregate equals the sum of the
    /// per-flow entries, however traffic is credited.
    #[test]
    fn aggregate_equals_sum_of_flows(
        mods in proptest::collection::vec(arb_flow_mod(), 1..12),
        hits in proptest::collection::vec((arb_header(), 1u64..50, 1u64..5_000), 0..40),
    ) {
        let mut table = FlowTable::new(0);
        for fm in &mods {
            table.apply(fm, SimTime::ZERO).unwrap();
        }
        for (h, pkts, bytes) in &hits {
            let _ = table.lookup(h, SimTime::ZERO, *pkts, *bytes);
        }
        let agg = table.aggregate_stats(&MatchFields::new());
        let flows = table.flow_stats(&MatchFields::new(), SimTime::ZERO);
        prop_assert_eq!(agg.flow_count as usize, flows.len());
        prop_assert_eq!(
            agg.packet_count,
            flows.iter().map(|f| f.packet_count).sum::<u64>()
        );
        prop_assert_eq!(
            agg.byte_count,
            flows.iter().map(|f| f.byte_count).sum::<u64>()
        );
    }
}
