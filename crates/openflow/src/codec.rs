//! Binary wire codec for OpenFlow messages.
//!
//! Every message is framed with the standard 8-byte OpenFlow header
//! (`version`, `type`, `length`, `xid`, all big-endian). Two wire versions
//! are supported, mirroring the paper's deployment (ONOS with OpenFlow 1.0
//! and 1.3):
//!
//! - [`OfVersion::V1_0`] (`0x01`) encodes matches as the OF 1.0 fixed
//!   structure with a wildcard bitmap (IP prefixes as wildcarded-bit
//!   counts),
//! - [`OfVersion::V1_3`] (`0x04`) encodes matches as OXM-style TLVs with
//!   optional masks.
//!
//! The payload encodings for the remaining bodies are shared between
//! versions; both ends of the simulated control channel speak this codec.

use crate::action::Action;
use crate::match_fields::MatchFields;
use crate::message::{
    EchoData, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, OfMessage,
    PacketIn, PacketInReason, PacketOut, PortStatus, PortStatusReason, StatsRequest,
};
use crate::packet::PacketHeader;
use crate::stats::{AggregateStats, FlowStatsEntry, PortStatsEntry, StatsReply, TableStatsEntry};
use athena_types::{
    AthenaError, Dpid, EtherType, IpProto, Ipv4Addr, MacAddr, PortNo, Result, SimDuration, Xid,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The OpenFlow wire versions the codec speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OfVersion {
    /// OpenFlow 1.0 (wire version `0x01`).
    V1_0,
    /// OpenFlow 1.3 (wire version `0x04`).
    #[default]
    V1_3,
}

impl OfVersion {
    /// The wire version byte.
    pub const fn wire_byte(self) -> u8 {
        match self {
            OfVersion::V1_0 => 0x01,
            OfVersion::V1_3 => 0x04,
        }
    }

    /// Decodes a wire version byte.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Codec`] for unsupported versions.
    pub fn from_wire_byte(b: u8) -> Result<Self> {
        match b {
            0x01 => Ok(OfVersion::V1_0),
            0x04 => Ok(OfVersion::V1_3),
            other => Err(AthenaError::Codec(format!(
                "unsupported openflow version {other:#04x}"
            ))),
        }
    }
}

// Message type codes (OF 1.0 numbering; 1.3 shares them in this codec since
// both ends are ours — the version byte only switches the match encoding).
const T_HELLO: u8 = 0;
const T_ECHO_REQUEST: u8 = 2;
const T_ECHO_REPLY: u8 = 3;
const T_FEATURES_REQUEST: u8 = 5;
const T_FEATURES_REPLY: u8 = 6;
const T_PACKET_IN: u8 = 10;
const T_FLOW_REMOVED: u8 = 11;
const T_PORT_STATUS: u8 = 12;
const T_PACKET_OUT: u8 = 13;
const T_FLOW_MOD: u8 = 14;
const T_STATS_REQUEST: u8 = 16;
const T_STATS_REPLY: u8 = 17;
const T_BARRIER_REQUEST: u8 = 18;
const T_BARRIER_REPLY: u8 = 19;

const NO_BUFFER: u32 = 0xffff_ffff;

/// Encodes a message for the given wire version.
///
/// # Examples
///
/// ```
/// use athena_openflow::{decode_message, encode_message, OfMessage, OfVersion};
/// use athena_types::Xid;
///
/// let msg = OfMessage::BarrierRequest { xid: Xid::new(7) };
/// let wire = encode_message(&msg, OfVersion::V1_3);
/// let (back, version) = decode_message(&wire)?;
/// assert_eq!(back, msg);
/// assert_eq!(version, OfVersion::V1_3);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
pub fn encode_message(msg: &OfMessage, version: OfVersion) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    let type_code = encode_body(msg, version, &mut body);
    let mut out = BytesMut::with_capacity(8 + body.len());
    out.put_u8(version.wire_byte());
    out.put_u8(type_code);
    out.put_u16((8 + body.len()) as u16);
    out.put_u32(msg.xid().raw());
    out.extend_from_slice(&body);
    out.freeze()
}

/// Decodes a message, returning it with the wire version it used.
///
/// # Errors
///
/// Returns [`AthenaError::Codec`] for truncated buffers, unknown versions,
/// unknown type codes, or malformed bodies.
pub fn decode_message(buf: &[u8]) -> Result<(OfMessage, OfVersion)> {
    if buf.len() < 8 {
        return Err(AthenaError::Codec(format!(
            "buffer too short for openflow header: {} bytes",
            buf.len()
        )));
    }
    let mut cur = buf;
    let version = OfVersion::from_wire_byte(cur.get_u8())?;
    let type_code = cur.get_u8();
    let length = cur.get_u16() as usize;
    if buf.len() < length {
        return Err(AthenaError::Codec(format!(
            "truncated message: header says {length} bytes, got {}",
            buf.len()
        )));
    }
    let xid = Xid::new(cur.get_u32());
    let mut body = buf.get(8..length).ok_or_else(|| {
        AthenaError::Codec(format!(
            "invalid message length {length} (header is 8 bytes)"
        ))
    })?;
    let msg = decode_body(type_code, xid, version, &mut body)?;
    Ok((msg, version))
}

fn encode_body(msg: &OfMessage, version: OfVersion, b: &mut BytesMut) -> u8 {
    match msg {
        OfMessage::Hello { version: v, .. } => {
            b.put_u8(*v);
            T_HELLO
        }
        OfMessage::EchoRequest { data, .. } => {
            put_bytes(b, &data.0);
            T_ECHO_REQUEST
        }
        OfMessage::EchoReply { data, .. } => {
            put_bytes(b, &data.0);
            T_ECHO_REPLY
        }
        OfMessage::FeaturesRequest { .. } => T_FEATURES_REQUEST,
        OfMessage::FeaturesReply { body, .. } => {
            b.put_u64(body.dpid.raw());
            b.put_u8(body.n_tables);
            b.put_u16(body.ports.len() as u16);
            for p in &body.ports {
                b.put_u32(p.raw());
            }
            T_FEATURES_REPLY
        }
        OfMessage::PacketIn { body, .. } => {
            b.put_u32(body.buffer_id.unwrap_or(NO_BUFFER));
            b.put_u8(match body.reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            put_packet_header(b, &body.header);
            T_PACKET_IN
        }
        OfMessage::PacketOut { body, .. } => {
            b.put_u32(body.buffer_id.unwrap_or(NO_BUFFER));
            put_packet_header(b, &body.header);
            put_actions(b, &body.actions);
            T_PACKET_OUT
        }
        OfMessage::FlowMod { body, .. } => {
            b.put_u8(match body.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            put_match(b, &body.match_fields, version);
            b.put_u16(body.priority);
            b.put_u64(body.idle_timeout.as_micros());
            b.put_u64(body.hard_timeout.as_micros());
            b.put_u64(body.cookie);
            b.put_u8(u8::from(body.send_flow_removed));
            put_actions(b, &body.actions);
            T_FLOW_MOD
        }
        OfMessage::FlowRemoved { body, .. } => {
            put_match(b, &body.match_fields, version);
            b.put_u64(body.cookie);
            b.put_u16(body.priority);
            b.put_u8(match body.reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            b.put_u64(body.duration.as_micros());
            b.put_u64(body.packet_count);
            b.put_u64(body.byte_count);
            T_FLOW_REMOVED
        }
        OfMessage::PortStatus { body, .. } => {
            b.put_u8(match body.reason {
                PortStatusReason::Add => 0,
                PortStatusReason::Delete => 1,
                PortStatusReason::Modify => 2,
            });
            b.put_u32(body.port_no.raw());
            b.put_u8(u8::from(body.link_up));
            T_PORT_STATUS
        }
        OfMessage::StatsRequest { body, .. } => {
            match body {
                StatsRequest::Flow { filter } => {
                    b.put_u8(0);
                    put_match(b, filter, version);
                }
                StatsRequest::Aggregate { filter } => {
                    b.put_u8(1);
                    put_match(b, filter, version);
                }
                StatsRequest::Port { port_no } => {
                    b.put_u8(2);
                    b.put_u32(port_no.raw());
                }
                StatsRequest::Table => b.put_u8(3),
            }
            T_STATS_REQUEST
        }
        OfMessage::StatsReply { body, .. } => {
            match body {
                StatsReply::Flow(entries) => {
                    b.put_u8(0);
                    b.put_u32(entries.len() as u32);
                    for e in entries {
                        put_flow_stats(b, e, version);
                    }
                }
                StatsReply::Aggregate(a) => {
                    b.put_u8(1);
                    b.put_u64(a.packet_count);
                    b.put_u64(a.byte_count);
                    b.put_u32(a.flow_count);
                }
                StatsReply::Port(entries) => {
                    b.put_u8(2);
                    b.put_u32(entries.len() as u32);
                    for e in entries {
                        b.put_u32(e.port_no.raw());
                        b.put_u64(e.rx_packets);
                        b.put_u64(e.tx_packets);
                        b.put_u64(e.rx_bytes);
                        b.put_u64(e.tx_bytes);
                        b.put_u64(e.rx_dropped);
                        b.put_u64(e.tx_dropped);
                        b.put_u64(e.rx_errors);
                        b.put_u64(e.tx_errors);
                    }
                }
                StatsReply::Table(entries) => {
                    b.put_u8(3);
                    b.put_u32(entries.len() as u32);
                    for e in entries {
                        b.put_u8(e.table_id);
                        b.put_u32(e.active_count);
                        b.put_u64(e.lookup_count);
                        b.put_u64(e.matched_count);
                    }
                }
            }
            T_STATS_REPLY
        }
        OfMessage::BarrierRequest { .. } => T_BARRIER_REQUEST,
        OfMessage::BarrierReply { .. } => T_BARRIER_REPLY,
    }
}

fn decode_body(type_code: u8, xid: Xid, version: OfVersion, b: &mut &[u8]) -> Result<OfMessage> {
    Ok(match type_code {
        T_HELLO => OfMessage::Hello {
            xid,
            version: get_u8(b)?,
        },
        T_ECHO_REQUEST => OfMessage::EchoRequest {
            xid,
            data: EchoData(get_bytes(b)?),
        },
        T_ECHO_REPLY => OfMessage::EchoReply {
            xid,
            data: EchoData(get_bytes(b)?),
        },
        T_FEATURES_REQUEST => OfMessage::FeaturesRequest { xid },
        T_FEATURES_REPLY => {
            let dpid = Dpid::new(get_u64(b)?);
            let n_tables = get_u8(b)?;
            let n_ports = get_u16(b)? as usize;
            let mut ports = Vec::with_capacity(n_ports);
            for _ in 0..n_ports {
                ports.push(PortNo::new(get_u32(b)?));
            }
            OfMessage::FeaturesReply {
                xid,
                body: FeaturesReply {
                    dpid,
                    n_tables,
                    ports,
                },
            }
        }
        T_PACKET_IN => {
            let buffer = get_u32(b)?;
            let reason = match get_u8(b)? {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                r => return Err(AthenaError::Codec(format!("bad packet-in reason {r}"))),
            };
            let header = get_packet_header(b)?;
            OfMessage::PacketIn {
                xid,
                body: PacketIn {
                    buffer_id: (buffer != NO_BUFFER).then_some(buffer),
                    reason,
                    header,
                },
            }
        }
        T_PACKET_OUT => {
            let buffer = get_u32(b)?;
            let header = get_packet_header(b)?;
            let actions = get_actions(b)?;
            OfMessage::PacketOut {
                xid,
                body: PacketOut {
                    buffer_id: (buffer != NO_BUFFER).then_some(buffer),
                    header,
                    actions,
                },
            }
        }
        T_FLOW_MOD => {
            let command = match get_u8(b)? {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                c => return Err(AthenaError::Codec(format!("bad flow-mod command {c}"))),
            };
            let match_fields = get_match(b, version)?;
            let priority = get_u16(b)?;
            let idle_timeout = SimDuration::from_micros(get_u64(b)?);
            let hard_timeout = SimDuration::from_micros(get_u64(b)?);
            let cookie = get_u64(b)?;
            let send_flow_removed = get_u8(b)? != 0;
            let actions = get_actions(b)?;
            OfMessage::FlowMod {
                xid,
                body: FlowMod {
                    command,
                    match_fields,
                    priority,
                    idle_timeout,
                    hard_timeout,
                    cookie,
                    actions,
                    send_flow_removed,
                },
            }
        }
        T_FLOW_REMOVED => {
            let match_fields = get_match(b, version)?;
            let cookie = get_u64(b)?;
            let priority = get_u16(b)?;
            let reason = match get_u8(b)? {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                2 => FlowRemovedReason::Delete,
                r => return Err(AthenaError::Codec(format!("bad flow-removed reason {r}"))),
            };
            OfMessage::FlowRemoved {
                xid,
                body: FlowRemoved {
                    match_fields,
                    cookie,
                    priority,
                    reason,
                    duration: SimDuration::from_micros(get_u64(b)?),
                    packet_count: get_u64(b)?,
                    byte_count: get_u64(b)?,
                },
            }
        }
        T_PORT_STATUS => {
            let reason = match get_u8(b)? {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                2 => PortStatusReason::Modify,
                r => return Err(AthenaError::Codec(format!("bad port-status reason {r}"))),
            };
            OfMessage::PortStatus {
                xid,
                body: PortStatus {
                    reason,
                    port_no: PortNo::new(get_u32(b)?),
                    link_up: get_u8(b)? != 0,
                },
            }
        }
        T_STATS_REQUEST => {
            let body = match get_u8(b)? {
                0 => StatsRequest::Flow {
                    filter: get_match(b, version)?,
                },
                1 => StatsRequest::Aggregate {
                    filter: get_match(b, version)?,
                },
                2 => StatsRequest::Port {
                    port_no: PortNo::new(get_u32(b)?),
                },
                3 => StatsRequest::Table,
                k => return Err(AthenaError::Codec(format!("bad stats request kind {k}"))),
            };
            OfMessage::StatsRequest { xid, body }
        }
        T_STATS_REPLY => {
            let body = match get_u8(b)? {
                0 => {
                    let n = get_u32(b)? as usize;
                    let mut entries = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        entries.push(get_flow_stats(b, version)?);
                    }
                    StatsReply::Flow(entries)
                }
                1 => StatsReply::Aggregate(AggregateStats {
                    packet_count: get_u64(b)?,
                    byte_count: get_u64(b)?,
                    flow_count: get_u32(b)?,
                }),
                2 => {
                    let n = get_u32(b)? as usize;
                    let mut entries = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        entries.push(PortStatsEntry {
                            port_no: PortNo::new(get_u32(b)?),
                            rx_packets: get_u64(b)?,
                            tx_packets: get_u64(b)?,
                            rx_bytes: get_u64(b)?,
                            tx_bytes: get_u64(b)?,
                            rx_dropped: get_u64(b)?,
                            tx_dropped: get_u64(b)?,
                            rx_errors: get_u64(b)?,
                            tx_errors: get_u64(b)?,
                        });
                    }
                    StatsReply::Port(entries)
                }
                3 => {
                    let n = get_u32(b)? as usize;
                    let mut entries = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        entries.push(TableStatsEntry {
                            table_id: get_u8(b)?,
                            active_count: get_u32(b)?,
                            lookup_count: get_u64(b)?,
                            matched_count: get_u64(b)?,
                        });
                    }
                    StatsReply::Table(entries)
                }
                k => return Err(AthenaError::Codec(format!("bad stats reply kind {k}"))),
            };
            OfMessage::StatsReply { xid, body }
        }
        T_BARRIER_REQUEST => OfMessage::BarrierRequest { xid },
        T_BARRIER_REPLY => OfMessage::BarrierReply { xid },
        other => {
            return Err(AthenaError::Codec(format!(
                "unknown message type code {other}"
            )))
        }
    })
}

// ---- field helpers -------------------------------------------------------

fn get_u8(b: &mut &[u8]) -> Result<u8> {
    if b.remaining() < 1 {
        return Err(short());
    }
    Ok(b.get_u8())
}

fn get_u16(b: &mut &[u8]) -> Result<u16> {
    if b.remaining() < 2 {
        return Err(short());
    }
    Ok(b.get_u16())
}

fn get_u32(b: &mut &[u8]) -> Result<u32> {
    if b.remaining() < 4 {
        return Err(short());
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut &[u8]) -> Result<u64> {
    if b.remaining() < 8 {
        return Err(short());
    }
    Ok(b.get_u64())
}

fn short() -> AthenaError {
    AthenaError::Codec("unexpected end of buffer".into())
}

fn put_bytes(b: &mut BytesMut, data: &[u8]) {
    b.put_u16(data.len() as u16);
    b.extend_from_slice(data);
}

fn get_bytes(b: &mut &[u8]) -> Result<Vec<u8>> {
    let len = get_u16(b)? as usize;
    if b.remaining() < len {
        return Err(short());
    }
    let mut out = vec![0u8; len];
    b.copy_to_slice(&mut out);
    Ok(out)
}

fn put_mac(b: &mut BytesMut, m: MacAddr) {
    b.extend_from_slice(&m.octets());
}

fn get_mac(b: &mut &[u8]) -> Result<MacAddr> {
    if b.remaining() < 6 {
        return Err(short());
    }
    let mut o = [0u8; 6];
    b.copy_to_slice(&mut o);
    Ok(MacAddr::new(o))
}

fn put_packet_header(b: &mut BytesMut, h: &PacketHeader) {
    b.put_u32(h.in_port.raw());
    put_mac(b, h.eth_src);
    put_mac(b, h.eth_dst);
    b.put_u16(h.eth_type.number());
    // Presence bitmap: vlan, ip_src, ip_dst, ip_proto, tp_src, tp_dst.
    let mut flags = 0u8;
    flags |= u8::from(h.vlan_id.is_some());
    flags |= u8::from(h.ip_src.is_some()) << 1;
    flags |= u8::from(h.ip_dst.is_some()) << 2;
    flags |= u8::from(h.ip_proto.is_some()) << 3;
    flags |= u8::from(h.tp_src.is_some()) << 4;
    flags |= u8::from(h.tp_dst.is_some()) << 5;
    b.put_u8(flags);
    if let Some(v) = h.vlan_id {
        b.put_u16(v);
    }
    if let Some(ip) = h.ip_src {
        b.put_u32(ip.raw());
    }
    if let Some(ip) = h.ip_dst {
        b.put_u32(ip.raw());
    }
    if let Some(p) = h.ip_proto {
        b.put_u8(p.number());
    }
    if let Some(p) = h.tp_src {
        b.put_u16(p);
    }
    if let Some(p) = h.tp_dst {
        b.put_u16(p);
    }
    b.put_u32(h.byte_len);
}

fn get_packet_header(b: &mut &[u8]) -> Result<PacketHeader> {
    let in_port = PortNo::new(get_u32(b)?);
    let eth_src = get_mac(b)?;
    let eth_dst = get_mac(b)?;
    let eth_type = EtherType::from_number(get_u16(b)?);
    let flags = get_u8(b)?;
    let vlan_id = (flags & 1 != 0).then(|| get_u16(b)).transpose()?;
    let ip_src = (flags & 2 != 0)
        .then(|| get_u32(b).map(Ipv4Addr::from_raw))
        .transpose()?;
    let ip_dst = (flags & 4 != 0)
        .then(|| get_u32(b).map(Ipv4Addr::from_raw))
        .transpose()?;
    let ip_proto = (flags & 8 != 0)
        .then(|| get_u8(b).map(IpProto::from_number))
        .transpose()?;
    let tp_src = (flags & 16 != 0).then(|| get_u16(b)).transpose()?;
    let tp_dst = (flags & 32 != 0).then(|| get_u16(b)).transpose()?;
    let byte_len = get_u32(b)?;
    Ok(PacketHeader {
        in_port,
        eth_src,
        eth_dst,
        eth_type,
        vlan_id,
        ip_src,
        ip_dst,
        ip_proto,
        tp_src,
        tp_dst,
        byte_len,
    })
}

fn put_actions(b: &mut BytesMut, actions: &[Action]) {
    b.put_u16(actions.len() as u16);
    for a in actions {
        match a {
            Action::Output(p) => {
                b.put_u8(0);
                b.put_u32(p.raw());
            }
            Action::SetEthSrc(m) => {
                b.put_u8(1);
                put_mac(b, *m);
            }
            Action::SetEthDst(m) => {
                b.put_u8(2);
                put_mac(b, *m);
            }
            Action::SetIpSrc(ip) => {
                b.put_u8(3);
                b.put_u32(ip.raw());
            }
            Action::SetIpDst(ip) => {
                b.put_u8(4);
                b.put_u32(ip.raw());
            }
            Action::SetTpSrc(p) => {
                b.put_u8(5);
                b.put_u16(*p);
            }
            Action::SetTpDst(p) => {
                b.put_u8(6);
                b.put_u16(*p);
            }
            Action::Enqueue { port, queue_id } => {
                b.put_u8(7);
                b.put_u32(port.raw());
                b.put_u32(*queue_id);
            }
        }
    }
}

fn get_actions(b: &mut &[u8]) -> Result<Vec<Action>> {
    let n = get_u16(b)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match get_u8(b)? {
            0 => Action::Output(PortNo::new(get_u32(b)?)),
            1 => Action::SetEthSrc(get_mac(b)?),
            2 => Action::SetEthDst(get_mac(b)?),
            3 => Action::SetIpSrc(Ipv4Addr::from_raw(get_u32(b)?)),
            4 => Action::SetIpDst(Ipv4Addr::from_raw(get_u32(b)?)),
            5 => Action::SetTpSrc(get_u16(b)?),
            6 => Action::SetTpDst(get_u16(b)?),
            7 => Action::Enqueue {
                port: PortNo::new(get_u32(b)?),
                queue_id: get_u32(b)?,
            },
            t => return Err(AthenaError::Codec(format!("unknown action type {t}"))),
        });
    }
    Ok(out)
}

// OF 1.0 wildcard bits.
const W_IN_PORT: u32 = 1 << 0;
const W_VLAN: u32 = 1 << 1;
const W_ETH_SRC: u32 = 1 << 2;
const W_ETH_DST: u32 = 1 << 3;
const W_ETH_TYPE: u32 = 1 << 4;
const W_IP_PROTO: u32 = 1 << 5;
const W_TP_SRC: u32 = 1 << 6;
const W_TP_DST: u32 = 1 << 7;
const W_IP_SRC_SHIFT: u32 = 8; // 6 bits: count of wildcarded low bits
const W_IP_DST_SHIFT: u32 = 14;

fn put_match(b: &mut BytesMut, m: &MatchFields, version: OfVersion) {
    match version {
        OfVersion::V1_0 => put_match_v10(b, m),
        OfVersion::V1_3 => put_match_v13(b, m),
    }
}

fn get_match(b: &mut &[u8], version: OfVersion) -> Result<MatchFields> {
    match version {
        OfVersion::V1_0 => get_match_v10(b),
        OfVersion::V1_3 => get_match_v13(b),
    }
}

/// OF 1.0 fixed match structure: a wildcard bitmap then every field.
fn put_match_v10(b: &mut BytesMut, m: &MatchFields) {
    let mut wildcards = 0u32;
    if m.in_port.is_none() {
        wildcards |= W_IN_PORT;
    }
    if m.vlan_id.is_none() {
        wildcards |= W_VLAN;
    }
    if m.eth_src.is_none() {
        wildcards |= W_ETH_SRC;
    }
    if m.eth_dst.is_none() {
        wildcards |= W_ETH_DST;
    }
    if m.eth_type.is_none() {
        wildcards |= W_ETH_TYPE;
    }
    if m.ip_proto.is_none() {
        wildcards |= W_IP_PROTO;
    }
    if m.tp_src.is_none() {
        wildcards |= W_TP_SRC;
    }
    if m.tp_dst.is_none() {
        wildcards |= W_TP_DST;
    }
    let src_wild = m.ip_src.map_or(32, |(_, len)| 32 - u32::from(len));
    let dst_wild = m.ip_dst.map_or(32, |(_, len)| 32 - u32::from(len));
    wildcards |= src_wild << W_IP_SRC_SHIFT;
    wildcards |= dst_wild << W_IP_DST_SHIFT;
    b.put_u32(wildcards);
    b.put_u32(m.in_port.map_or(0, PortNo::raw));
    put_mac(b, m.eth_src.unwrap_or_default());
    put_mac(b, m.eth_dst.unwrap_or_default());
    b.put_u16(m.vlan_id.unwrap_or(0xffff));
    b.put_u16(m.eth_type.map_or(0, EtherType::number));
    b.put_u8(m.ip_proto.map_or(0, IpProto::number));
    b.put_u32(m.ip_src.map_or(0, |(ip, _)| ip.raw()));
    b.put_u32(m.ip_dst.map_or(0, |(ip, _)| ip.raw()));
    b.put_u16(m.tp_src.unwrap_or(0));
    b.put_u16(m.tp_dst.unwrap_or(0));
}

fn get_match_v10(b: &mut &[u8]) -> Result<MatchFields> {
    let wildcards = get_u32(b)?;
    let in_port = get_u32(b)?;
    let eth_src = get_mac(b)?;
    let eth_dst = get_mac(b)?;
    let vlan = get_u16(b)?;
    let eth_type = get_u16(b)?;
    let ip_proto = get_u8(b)?;
    let ip_src = get_u32(b)?;
    let ip_dst = get_u32(b)?;
    let tp_src = get_u16(b)?;
    let tp_dst = get_u16(b)?;

    let src_wild = (wildcards >> W_IP_SRC_SHIFT) & 0x3f;
    let dst_wild = (wildcards >> W_IP_DST_SHIFT) & 0x3f;
    let mut m = MatchFields::new();
    if wildcards & W_IN_PORT == 0 {
        m.in_port = Some(PortNo::new(in_port));
    }
    if wildcards & W_VLAN == 0 {
        m.vlan_id = Some(vlan);
    }
    if wildcards & W_ETH_SRC == 0 {
        m.eth_src = Some(eth_src);
    }
    if wildcards & W_ETH_DST == 0 {
        m.eth_dst = Some(eth_dst);
    }
    if wildcards & W_ETH_TYPE == 0 {
        m.eth_type = Some(EtherType::from_number(eth_type));
    }
    if wildcards & W_IP_PROTO == 0 {
        m.ip_proto = Some(IpProto::from_number(ip_proto));
    }
    if wildcards & W_TP_SRC == 0 {
        m.tp_src = Some(tp_src);
    }
    if wildcards & W_TP_DST == 0 {
        m.tp_dst = Some(tp_dst);
    }
    if src_wild < 32 {
        m.ip_src = Some((Ipv4Addr::from_raw(ip_src), (32 - src_wild) as u8));
    }
    if dst_wild < 32 {
        m.ip_dst = Some((Ipv4Addr::from_raw(ip_dst), (32 - dst_wild) as u8));
    }
    Ok(m)
}

// OXM-style field codes for the OF 1.3 TLV match.
const OXM_IN_PORT: u8 = 0;
const OXM_ETH_SRC: u8 = 1;
const OXM_ETH_DST: u8 = 2;
const OXM_ETH_TYPE: u8 = 3;
const OXM_VLAN: u8 = 4;
const OXM_IP_SRC: u8 = 5;
const OXM_IP_DST: u8 = 6;
const OXM_IP_PROTO: u8 = 7;
const OXM_TP_SRC: u8 = 8;
const OXM_TP_DST: u8 = 9;

/// OF 1.3 OXM-style TLV match: only present fields are encoded.
fn put_match_v13(b: &mut BytesMut, m: &MatchFields) {
    let mut count: u8 = 0;
    count += u8::from(m.in_port.is_some());
    count += u8::from(m.eth_src.is_some());
    count += u8::from(m.eth_dst.is_some());
    count += u8::from(m.eth_type.is_some());
    count += u8::from(m.vlan_id.is_some());
    count += u8::from(m.ip_src.is_some());
    count += u8::from(m.ip_dst.is_some());
    count += u8::from(m.ip_proto.is_some());
    count += u8::from(m.tp_src.is_some());
    count += u8::from(m.tp_dst.is_some());
    b.put_u8(count);
    if let Some(p) = m.in_port {
        b.put_u8(OXM_IN_PORT);
        b.put_u32(p.raw());
    }
    if let Some(mac) = m.eth_src {
        b.put_u8(OXM_ETH_SRC);
        put_mac(b, mac);
    }
    if let Some(mac) = m.eth_dst {
        b.put_u8(OXM_ETH_DST);
        put_mac(b, mac);
    }
    if let Some(t) = m.eth_type {
        b.put_u8(OXM_ETH_TYPE);
        b.put_u16(t.number());
    }
    if let Some(v) = m.vlan_id {
        b.put_u8(OXM_VLAN);
        b.put_u16(v);
    }
    if let Some((ip, len)) = m.ip_src {
        b.put_u8(OXM_IP_SRC);
        b.put_u32(ip.raw());
        b.put_u8(len);
    }
    if let Some((ip, len)) = m.ip_dst {
        b.put_u8(OXM_IP_DST);
        b.put_u32(ip.raw());
        b.put_u8(len);
    }
    if let Some(p) = m.ip_proto {
        b.put_u8(OXM_IP_PROTO);
        b.put_u8(p.number());
    }
    if let Some(p) = m.tp_src {
        b.put_u8(OXM_TP_SRC);
        b.put_u16(p);
    }
    if let Some(p) = m.tp_dst {
        b.put_u8(OXM_TP_DST);
        b.put_u16(p);
    }
}

fn get_match_v13(b: &mut &[u8]) -> Result<MatchFields> {
    let count = get_u8(b)?;
    let mut m = MatchFields::new();
    for _ in 0..count {
        match get_u8(b)? {
            OXM_IN_PORT => m.in_port = Some(PortNo::new(get_u32(b)?)),
            OXM_ETH_SRC => m.eth_src = Some(get_mac(b)?),
            OXM_ETH_DST => m.eth_dst = Some(get_mac(b)?),
            OXM_ETH_TYPE => m.eth_type = Some(EtherType::from_number(get_u16(b)?)),
            OXM_VLAN => m.vlan_id = Some(get_u16(b)?),
            OXM_IP_SRC => {
                let ip = Ipv4Addr::from_raw(get_u32(b)?);
                let len = get_u8(b)?;
                if len > 32 {
                    return Err(AthenaError::Codec(format!("bad prefix length {len}")));
                }
                m.ip_src = Some((ip, len));
            }
            OXM_IP_DST => {
                let ip = Ipv4Addr::from_raw(get_u32(b)?);
                let len = get_u8(b)?;
                if len > 32 {
                    return Err(AthenaError::Codec(format!("bad prefix length {len}")));
                }
                m.ip_dst = Some((ip, len));
            }
            OXM_IP_PROTO => m.ip_proto = Some(IpProto::from_number(get_u8(b)?)),
            OXM_TP_SRC => m.tp_src = Some(get_u16(b)?),
            OXM_TP_DST => m.tp_dst = Some(get_u16(b)?),
            f => return Err(AthenaError::Codec(format!("unknown oxm field {f}"))),
        }
    }
    Ok(m)
}

fn put_flow_stats(b: &mut BytesMut, e: &FlowStatsEntry, version: OfVersion) {
    b.put_u8(e.table_id);
    put_match(b, &e.match_fields, version);
    b.put_u16(e.priority);
    b.put_u64(e.duration.as_micros());
    b.put_u64(e.idle_timeout.as_micros());
    b.put_u64(e.hard_timeout.as_micros());
    b.put_u64(e.cookie);
    b.put_u64(e.packet_count);
    b.put_u64(e.byte_count);
    put_actions(b, &e.actions);
}

fn get_flow_stats(b: &mut &[u8], version: OfVersion) -> Result<FlowStatsEntry> {
    Ok(FlowStatsEntry {
        table_id: get_u8(b)?,
        match_fields: get_match(b, version)?,
        priority: get_u16(b)?,
        duration: SimDuration::from_micros(get_u64(b)?),
        idle_timeout: SimDuration::from_micros(get_u64(b)?),
        hard_timeout: SimDuration::from_micros(get_u64(b)?),
        cookie: get_u64(b)?,
        packet_count: get_u64(b)?,
        byte_count: get_u64(b)?,
        actions: get_actions(b)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &OfMessage, version: OfVersion) {
        let wire = encode_message(msg, version);
        let (back, v) = decode_message(&wire).expect("decode");
        assert_eq!(&back, msg, "version {version:?}");
        assert_eq!(v, version);
        // The header length field is accurate.
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]) as usize, wire.len());
    }

    fn sample_header() -> PacketHeader {
        PacketHeader::tcp_syn(
            PortNo::new(4),
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn roundtrip_simple_messages() {
        for v in [OfVersion::V1_0, OfVersion::V1_3] {
            roundtrip(
                &OfMessage::Hello {
                    xid: Xid::new(1),
                    version: v.wire_byte(),
                },
                v,
            );
            roundtrip(&OfMessage::FeaturesRequest { xid: Xid::new(2) }, v);
            roundtrip(&OfMessage::BarrierRequest { xid: Xid::new(3) }, v);
            roundtrip(&OfMessage::BarrierReply { xid: Xid::new(4) }, v);
            roundtrip(
                &OfMessage::EchoRequest {
                    xid: Xid::new(5),
                    data: EchoData(vec![1, 2, 3]),
                },
                v,
            );
        }
    }

    #[test]
    fn roundtrip_packet_in_out() {
        let header = sample_header();
        for v in [OfVersion::V1_0, OfVersion::V1_3] {
            roundtrip(&OfMessage::packet_in(Xid::new(9), header), v);
            roundtrip(
                &OfMessage::PacketOut {
                    xid: Xid::new(10),
                    body: PacketOut {
                        buffer_id: Some(1234),
                        header,
                        actions: vec![Action::Output(PortNo::FLOOD)],
                    },
                },
                v,
            );
        }
    }

    #[test]
    fn roundtrip_flow_mod_with_prefix_match() {
        let m = MatchFields::new()
            .with_in_port(PortNo::new(1))
            .with_eth_type(EtherType::Ipv4)
            .with_ip_src(Ipv4Addr::new(10, 0, 0, 0), 24)
            .with_ip_dst(Ipv4Addr::new(192, 168, 1, 0), 28)
            .with_ip_proto(IpProto::Tcp)
            .with_tp_dst(21);
        let fm = FlowMod::add(
            m,
            1000,
            vec![
                Action::SetEthDst(MacAddr::new([1, 2, 3, 4, 5, 6])),
                Action::Output(PortNo::new(3)),
            ],
        )
        .with_idle_timeout(SimDuration::from_secs(10))
        .with_hard_timeout(SimDuration::from_secs(300))
        .with_app(athena_types::AppId::new(5));
        for v in [OfVersion::V1_0, OfVersion::V1_3] {
            roundtrip(
                &OfMessage::FlowMod {
                    xid: Xid::new(77),
                    body: fm.clone(),
                },
                v,
            );
        }
    }

    #[test]
    fn roundtrip_stats_messages() {
        let flow_entry = FlowStatsEntry {
            table_id: 0,
            match_fields: MatchFields::new().with_tp_dst(80),
            priority: 5,
            duration: SimDuration::from_millis(1234),
            idle_timeout: SimDuration::from_secs(10),
            hard_timeout: SimDuration::ZERO,
            cookie: 0xdead_beef,
            packet_count: 42,
            byte_count: 4200,
            actions: vec![Action::Output(PortNo::new(2))],
        };
        for v in [OfVersion::V1_0, OfVersion::V1_3] {
            roundtrip(
                &OfMessage::StatsRequest {
                    xid: Xid::athena_marked(1),
                    body: StatsRequest::Flow {
                        filter: MatchFields::new(),
                    },
                },
                v,
            );
            roundtrip(
                &OfMessage::StatsRequest {
                    xid: Xid::new(2),
                    body: StatsRequest::Port {
                        port_no: PortNo::ANY,
                    },
                },
                v,
            );
            roundtrip(
                &OfMessage::StatsReply {
                    xid: Xid::new(3),
                    body: StatsReply::Flow(vec![flow_entry.clone(); 3]),
                },
                v,
            );
            roundtrip(
                &OfMessage::StatsReply {
                    xid: Xid::new(4),
                    body: StatsReply::Aggregate(AggregateStats {
                        packet_count: 1,
                        byte_count: 2,
                        flow_count: 3,
                    }),
                },
                v,
            );
            roundtrip(
                &OfMessage::StatsReply {
                    xid: Xid::new(5),
                    body: StatsReply::Port(vec![PortStatsEntry {
                        port_no: PortNo::new(1),
                        rx_packets: 10,
                        tx_packets: 20,
                        rx_bytes: 1000,
                        tx_bytes: 2000,
                        rx_dropped: 1,
                        tx_dropped: 0,
                        rx_errors: 0,
                        tx_errors: 0,
                    }]),
                },
                v,
            );
            roundtrip(
                &OfMessage::StatsReply {
                    xid: Xid::new(6),
                    body: StatsReply::Table(vec![TableStatsEntry {
                        table_id: 0,
                        active_count: 3,
                        lookup_count: 100,
                        matched_count: 90,
                    }]),
                },
                v,
            );
        }
    }

    #[test]
    fn roundtrip_flow_removed_and_port_status() {
        for v in [OfVersion::V1_0, OfVersion::V1_3] {
            roundtrip(
                &OfMessage::FlowRemoved {
                    xid: Xid::new(8),
                    body: FlowRemoved {
                        match_fields: MatchFields::new().with_tp_dst(80),
                        cookie: 7,
                        priority: 9,
                        reason: FlowRemovedReason::IdleTimeout,
                        duration: SimDuration::from_secs(12),
                        packet_count: 100,
                        byte_count: 10_000,
                    },
                },
                v,
            );
            roundtrip(
                &OfMessage::PortStatus {
                    xid: Xid::new(9),
                    body: PortStatus {
                        reason: PortStatusReason::Modify,
                        port_no: PortNo::new(2),
                        link_up: false,
                    },
                },
                v,
            );
            roundtrip(
                &OfMessage::FeaturesReply {
                    xid: Xid::new(10),
                    body: FeaturesReply {
                        dpid: Dpid::new(42),
                        n_tables: 1,
                        ports: vec![PortNo::new(1), PortNo::new(2)],
                    },
                },
                v,
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_message(&[]).is_err());
        assert!(decode_message(&[1, 2, 3]).is_err());
        // Unknown version byte.
        let mut wire = encode_message(
            &OfMessage::BarrierRequest { xid: Xid::new(1) },
            OfVersion::V1_3,
        )
        .to_vec();
        wire[0] = 0x09;
        assert!(decode_message(&wire).is_err());
        // Unknown type code.
        let mut wire = encode_message(
            &OfMessage::BarrierRequest { xid: Xid::new(1) },
            OfVersion::V1_3,
        )
        .to_vec();
        wire[1] = 200;
        assert!(decode_message(&wire).is_err());
        // Truncated body.
        let wire = encode_message(
            &OfMessage::packet_in(Xid::new(1), sample_header()),
            OfVersion::V1_3,
        );
        assert!(decode_message(&wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn version_byte_selects_match_encoding() {
        let m = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 0, 0, 0), 8);
        let fm = FlowMod::add(m, 1, vec![]);
        let v10 = encode_message(
            &OfMessage::FlowMod {
                xid: Xid::new(1),
                body: fm.clone(),
            },
            OfVersion::V1_0,
        );
        let v13 = encode_message(
            &OfMessage::FlowMod {
                xid: Xid::new(1),
                body: fm,
            },
            OfVersion::V1_3,
        );
        // OF1.0 fixed match is larger than a one-field TLV match.
        assert!(v10.len() > v13.len());
        assert_eq!(v10[0], 0x01);
        assert_eq!(v13[0], 0x04);
    }
}
