//! The switch flow table: priority-ordered matching, timeout expiry, and
//! per-entry counters.

use crate::action::Action;
use crate::match_fields::MatchFields;
use crate::message::{FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason};
use crate::packet::PacketHeader;
use crate::stats::{AggregateStats, FlowStatsEntry, TableStatsEntry};
use athena_types::{AthenaError, Result, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A single flow-table entry with live counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// The match.
    pub match_fields: MatchFields,
    /// The priority (higher wins).
    pub priority: u16,
    /// The action list (empty = drop).
    pub actions: Vec<Action>,
    /// The cookie from the installing flow-mod.
    pub cookie: u64,
    /// Idle timeout (zero = disabled).
    pub idle_timeout: SimDuration,
    /// Hard timeout (zero = disabled).
    pub hard_timeout: SimDuration,
    /// When the entry was installed.
    pub installed_at: SimTime,
    /// When the entry last matched a packet.
    pub last_matched_at: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Whether removal should emit a [`FlowRemoved`].
    pub send_flow_removed: bool,
    /// Monotone insertion sequence, used to break priority ties (later
    /// installations shadow earlier equal-priority, equal-specificity ones).
    seq: u64,
}

impl FlowEntry {
    /// Returns the instant this entry expires, or [`SimTime::MAX`] if it
    /// has no timeouts.
    pub fn expires_at(&self) -> SimTime {
        let hard = if self.hard_timeout.is_zero() {
            SimTime::MAX
        } else {
            self.installed_at + self.hard_timeout
        };
        let idle = if self.idle_timeout.is_zero() {
            SimTime::MAX
        } else {
            self.last_matched_at + self.idle_timeout
        };
        hard.min(idle)
    }

    /// Returns the expiry reason if the entry is expired at `now`.
    pub fn expiry_reason(&self, now: SimTime) -> Option<FlowRemovedReason> {
        if !self.hard_timeout.is_zero() && now >= self.installed_at + self.hard_timeout {
            return Some(FlowRemovedReason::HardTimeout);
        }
        if !self.idle_timeout.is_zero() && now >= self.last_matched_at + self.idle_timeout {
            return Some(FlowRemovedReason::IdleTimeout);
        }
        None
    }

    fn to_flow_removed(&self, now: SimTime, reason: FlowRemovedReason) -> FlowRemoved {
        FlowRemoved {
            match_fields: self.match_fields,
            cookie: self.cookie,
            priority: self.priority,
            reason,
            duration: now.saturating_since(self.installed_at),
            packet_count: self.packet_count,
            byte_count: self.byte_count,
        }
    }

    fn to_stats(&self, now: SimTime) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id: 0,
            match_fields: self.match_fields,
            priority: self.priority,
            duration: now.saturating_since(self.installed_at),
            idle_timeout: self.idle_timeout,
            hard_timeout: self.hard_timeout,
            cookie: self.cookie,
            packet_count: self.packet_count,
            byte_count: self.byte_count,
            actions: self.actions.clone(),
        }
    }
}

/// A priority-ordered OpenFlow flow table.
///
/// Lookup semantics follow the specification: the highest-priority matching
/// entry wins; among equal priorities the more specific match wins, and
/// among equal specificity the most recently installed wins. Matched
/// entries update their packet/byte counters and idle-timeout clock.
///
/// # Examples
///
/// ```
/// use athena_openflow::{Action, FlowMod, FlowTable, MatchFields};
/// use athena_types::{IpProto, Ipv4Addr, PortNo, SimTime};
///
/// let mut table = FlowTable::new(0);
/// table.apply(
///     &FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(1))]),
///     SimTime::ZERO,
/// )?;
/// assert_eq!(table.len(), 1);
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
/// A previously-returned entry's table position plus enough of its
/// identity (own match and priority) for [`FlowTable::lookup_at`] to
/// detect a stale position and refuse the shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPos {
    pub idx: usize,
    pub priority: u16,
    pub match_fields: MatchFields,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    table_id: u8,
    entries: Vec<FlowEntry>,
    next_seq: u64,
    lookup_count: u64,
    matched_count: u64,
}

impl FlowTable {
    /// Creates an empty table with the given id.
    pub fn new(table_id: u8) -> Self {
        FlowTable {
            table_id,
            ..FlowTable::default()
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in match order (highest priority first).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Applies a flow-mod. Returns any [`FlowRemoved`] notifications the
    /// operation produced (for deletes).
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::InvalidState`] for a `Modify`/`DeleteStrict`
    /// that names a non-existent entry — callers that want OpenFlow's
    /// silent-ignore behaviour can discard the error.
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<Vec<FlowRemoved>> {
        match fm.command {
            FlowModCommand::Add => {
                // Adding replaces an entry with identical match + priority.
                self.entries
                    .retain(|e| !(e.priority == fm.priority && e.match_fields == fm.match_fields));
                let entry = FlowEntry {
                    match_fields: fm.match_fields,
                    priority: fm.priority,
                    actions: fm.actions.clone(),
                    cookie: fm.cookie,
                    idle_timeout: fm.idle_timeout,
                    hard_timeout: fm.hard_timeout,
                    installed_at: now,
                    last_matched_at: now,
                    packet_count: 0,
                    byte_count: 0,
                    send_flow_removed: fm.send_flow_removed,
                    seq: self.next_seq,
                };
                self.next_seq += 1;
                // Insert keeping (priority desc, specificity desc, seq desc).
                let key = |e: &FlowEntry| {
                    (
                        std::cmp::Reverse(e.priority),
                        std::cmp::Reverse(e.match_fields.specificity()),
                        std::cmp::Reverse(e.seq),
                    )
                };
                let pos = self
                    .entries
                    .binary_search_by_key(&key(&entry), key)
                    .unwrap_or_else(|p| p);
                self.entries.insert(pos, entry);
                Ok(Vec::new())
            }
            FlowModCommand::Modify => {
                let mut touched = 0;
                for e in &mut self.entries {
                    if e.match_fields.is_subset_of(&fm.match_fields) {
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        touched += 1;
                    }
                }
                if touched == 0 {
                    Err(AthenaError::InvalidState(format!(
                        "modify matched no entries in table {}",
                        self.table_id
                    )))
                } else {
                    Ok(Vec::new())
                }
            }
            FlowModCommand::Delete => {
                let mut removed = Vec::new();
                self.entries.retain(|e| {
                    if e.match_fields.is_subset_of(&fm.match_fields) {
                        if e.send_flow_removed {
                            removed.push(e.to_flow_removed(now, FlowRemovedReason::Delete));
                        }
                        false
                    } else {
                        true
                    }
                });
                Ok(removed)
            }
            FlowModCommand::DeleteStrict => {
                let before = self.entries.len();
                let mut removed = Vec::new();
                self.entries.retain(|e| {
                    if e.priority == fm.priority && e.match_fields == fm.match_fields {
                        if e.send_flow_removed {
                            removed.push(e.to_flow_removed(now, FlowRemovedReason::Delete));
                        }
                        false
                    } else {
                        true
                    }
                });
                if self.entries.len() == before {
                    Err(AthenaError::InvalidState(format!(
                        "strict delete matched no entry in table {}",
                        self.table_id
                    )))
                } else {
                    Ok(removed)
                }
            }
        }
    }

    /// Looks up the packet, updating the winning entry's counters.
    ///
    /// Returns the matched entry (post-update), or `None` for a table miss.
    /// `packets`/`bytes` are the amounts to credit (a flow-level simulator
    /// may credit a burst at once).
    pub fn lookup(
        &mut self,
        pkt: &PacketHeader,
        now: SimTime,
        packets: u64,
        bytes: u64,
    ) -> Option<&FlowEntry> {
        self.lookup_indexed(pkt, now, packets, bytes)
            .map(|(_, e)| e)
    }

    /// [`FlowTable::lookup`], but also returns the winning entry's table
    /// position so exact-match lookup caches can revalidate it later with
    /// [`FlowTable::lookup_at`].
    pub fn lookup_indexed(
        &mut self,
        pkt: &PacketHeader,
        now: SimTime,
        packets: u64,
        bytes: u64,
    ) -> Option<(usize, &FlowEntry)> {
        self.lookup_count += 1;
        let idx = self
            .entries
            .iter()
            .position(|e| e.expiry_reason(now).is_none() && e.match_fields.matches(pkt))?;
        self.matched_count += 1;
        let e = &mut self.entries[idx];
        e.packet_count += packets;
        e.byte_count += bytes;
        e.last_matched_at = now;
        Some((idx, &self.entries[idx]))
    }

    /// Credits a lookup against the entry at `pos.idx` if it is still
    /// the entry a cache recorded — same match and priority — and it
    /// still matches `pkt` unexpired at `now`. Counters (table-level and
    /// per-entry) move exactly as in [`FlowTable::lookup`].
    ///
    /// Returns `None` **without moving any counter** when the validation
    /// fails; the caller must then fall back to a full
    /// [`FlowTable::lookup`]. The position stays authoritative between
    /// structural changes ([`FlowTable::apply`] / [`FlowTable::expire`])
    /// because entries never move otherwise: expired entries keep their
    /// slot (and can never match again — expiry is monotonic), and
    /// earlier entries' match fields are immutable, so the first live
    /// match for an exact packet cannot shift to a different position.
    pub fn lookup_at(
        &mut self,
        pos: &EntryPos,
        pkt: &PacketHeader,
        now: SimTime,
        packets: u64,
        bytes: u64,
    ) -> Option<&FlowEntry> {
        let idx = pos.idx;
        let valid = self.entries.get(idx).is_some_and(|e| {
            e.priority == pos.priority
                && e.match_fields == pos.match_fields
                && e.expiry_reason(now).is_none()
                && e.match_fields.matches(pkt)
        });
        if !valid {
            return None;
        }
        self.lookup_count += 1;
        self.matched_count += 1;
        if let Some(e) = self.entries.get_mut(idx) {
            e.packet_count += packets;
            e.byte_count += bytes;
            e.last_matched_at = now;
        }
        self.entries.get(idx)
    }

    /// Looks up the packet without mutating any counters (used by the
    /// simulator's routing phase; a subsequent [`FlowTable::lookup`]
    /// credits the traffic).
    pub fn peek(&self, pkt: &PacketHeader, now: SimTime) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .find(|e| e.expiry_reason(now).is_none() && e.match_fields.matches(pkt))
    }

    /// Removes expired entries, returning their [`FlowRemoved`]
    /// notifications (only for entries that requested them).
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        let mut removed = Vec::new();
        self.entries.retain(|e| match e.expiry_reason(now) {
            Some(reason) => {
                if e.send_flow_removed {
                    removed.push(e.to_flow_removed(now, reason));
                }
                false
            }
            None => true,
        });
        removed
    }

    /// Returns the earliest instant at which some entry expires, if any.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .map(FlowEntry::expires_at)
            .filter(|t| *t != SimTime::MAX)
            .min()
    }

    /// Per-flow statistics for entries whose match is a subset of `filter`.
    pub fn flow_stats(&self, filter: &MatchFields, now: SimTime) -> Vec<FlowStatsEntry> {
        self.entries
            .iter()
            .filter(|e| e.match_fields.is_subset_of(filter))
            .map(|e| {
                let mut s = e.to_stats(now);
                s.table_id = self.table_id;
                s
            })
            .collect()
    }

    /// Aggregate statistics over entries whose match is a subset of
    /// `filter`.
    pub fn aggregate_stats(&self, filter: &MatchFields) -> AggregateStats {
        let mut agg = AggregateStats::default();
        for e in &self.entries {
            if e.match_fields.is_subset_of(filter) {
                agg.packet_count += e.packet_count;
                agg.byte_count += e.byte_count;
                agg.flow_count += 1;
            }
        }
        agg
    }

    /// Total lookups performed against this table.
    pub fn lookup_count(&self) -> u64 {
        self.lookup_count
    }

    /// Lookups that matched an entry.
    pub fn matched_count(&self) -> u64 {
        self.matched_count
    }

    /// Table-level statistics.
    pub fn table_stats(&self) -> TableStatsEntry {
        TableStatsEntry {
            table_id: self.table_id,
            active_count: self.entries.len() as u32,
            lookup_count: self.lookup_count,
            matched_count: self.matched_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::{IpProto, Ipv4Addr, PortNo};

    fn pkt(dst_port: u16) -> PacketHeader {
        PacketHeader::tcp_syn(
            PortNo::new(1),
            Ipv4Addr::new(10, 0, 0, 1),
            50000,
            Ipv4Addr::new(10, 0, 0, 2),
            dst_port,
        )
    }

    fn add(table: &mut FlowTable, m: MatchFields, prio: u16, out: u32) {
        table
            .apply(
                &FlowMod::add(m, prio, vec![Action::Output(PortNo::new(out))]),
                SimTime::ZERO,
            )
            .unwrap();
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new(), 1, 1);
        add(
            &mut t,
            MatchFields::new().with_ip_proto(IpProto::Tcp),
            100,
            2,
        );
        let hit = t.lookup(&pkt(80), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&hit.actions), Some(PortNo::new(2)));
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new().with_ip_proto(IpProto::Tcp), 5, 1);
        add(
            &mut t,
            MatchFields::new()
                .with_ip_proto(IpProto::Tcp)
                .with_tp_dst(80),
            5,
            2,
        );
        let hit = t.lookup(&pkt(80), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&hit.actions), Some(PortNo::new(2)));
        let hit = t.lookup(&pkt(443), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&hit.actions), Some(PortNo::new(1)));
    }

    #[test]
    fn add_replaces_identical_match_and_priority() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new(), 1, 1);
        add(&mut t, MatchFields::new(), 1, 2);
        assert_eq!(t.len(), 1);
        let hit = t.lookup(&pkt(80), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&hit.actions), Some(PortNo::new(2)));
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new(), 1, 1);
        t.lookup(&pkt(80), SimTime::ZERO, 3, 300);
        t.lookup(&pkt(80), SimTime::from_secs(1), 2, 200);
        let e = t.iter().next().unwrap();
        assert_eq!(e.packet_count, 5);
        assert_eq!(e.byte_count, 500);
        assert_eq!(e.last_matched_at, SimTime::from_secs(1));
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(0);
        let fm = FlowMod::add(MatchFields::new(), 1, vec![])
            .with_hard_timeout(SimDuration::from_secs(10));
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert!(t.expire(SimTime::from_secs(9)).is_empty());
        let removed = t.expire(SimTime::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut t = FlowTable::new(0);
        let fm = FlowMod::add(MatchFields::new(), 1, vec![])
            .with_idle_timeout(SimDuration::from_secs(5));
        t.apply(&fm, SimTime::ZERO).unwrap();
        // Traffic at t=4 pushes expiry to t=9.
        t.lookup(&pkt(80), SimTime::from_secs(4), 1, 64);
        assert!(t.expire(SimTime::from_secs(8)).is_empty());
        let removed = t.expire(SimTime::from_secs(9));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn expired_entries_do_not_match_before_gc() {
        let mut t = FlowTable::new(0);
        let fm = FlowMod::add(MatchFields::new(), 1, vec![Action::Output(PortNo::new(1))])
            .with_hard_timeout(SimDuration::from_secs(1));
        t.apply(&fm, SimTime::ZERO).unwrap();
        assert!(t.lookup(&pkt(80), SimTime::from_secs(2), 1, 64).is_none());
    }

    #[test]
    fn non_strict_delete_removes_subsets() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new().with_tp_dst(80), 1, 1);
        add(&mut t, MatchFields::new().with_tp_dst(443), 1, 1);
        add(&mut t, MatchFields::new().with_ip_proto(IpProto::Udp), 1, 1);
        // Delete everything under "tcp dst 80": only the first entry.
        let removed = t
            .apply(
                &FlowMod::delete(MatchFields::new().with_tp_dst(80)),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 2);
        // Delete-all removes the rest.
        let removed = t
            .apply(&FlowMod::delete(MatchFields::new()), SimTime::ZERO)
            .unwrap();
        assert_eq!(removed.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn strict_delete_requires_exact_entry() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new().with_tp_dst(80), 7, 1);
        let mut fm = FlowMod::delete(MatchFields::new().with_tp_dst(80));
        fm.command = FlowModCommand::DeleteStrict;
        fm.priority = 8; // wrong priority
        assert!(t.apply(&fm, SimTime::ZERO).is_err());
        fm.priority = 7;
        assert_eq!(t.apply(&fm, SimTime::ZERO).unwrap().len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn modify_rewrites_actions() {
        let mut t = FlowTable::new(0);
        add(&mut t, MatchFields::new().with_tp_dst(80), 1, 1);
        let mut fm = FlowMod::add(MatchFields::new(), 0, vec![Action::Output(PortNo::new(9))]);
        fm.command = FlowModCommand::Modify;
        t.apply(&fm, SimTime::ZERO).unwrap();
        let hit = t.lookup(&pkt(80), SimTime::ZERO, 1, 64).unwrap();
        assert_eq!(Action::first_output(&hit.actions), Some(PortNo::new(9)));
    }

    #[test]
    fn stats_queries() {
        let mut t = FlowTable::new(3);
        add(&mut t, MatchFields::new().with_tp_dst(80), 1, 1);
        add(&mut t, MatchFields::new().with_tp_dst(443), 1, 1);
        t.lookup(&pkt(80), SimTime::from_secs(1), 4, 400);
        t.lookup(&pkt(443), SimTime::from_secs(1), 6, 600);
        t.lookup(&pkt(999), SimTime::from_secs(1), 1, 64); // miss

        let all = t.flow_stats(&MatchFields::new(), SimTime::from_secs(2));
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.table_id == 3));

        let agg = t.aggregate_stats(&MatchFields::new());
        assert_eq!(agg.packet_count, 10);
        assert_eq!(agg.byte_count, 1000);
        assert_eq!(agg.flow_count, 2);

        let ts = t.table_stats();
        assert_eq!(ts.active_count, 2);
        assert_eq!(ts.lookup_count, 3);
        assert_eq!(ts.matched_count, 2);
    }

    #[test]
    fn next_expiry_reports_earliest() {
        let mut t = FlowTable::new(0);
        t.apply(
            &FlowMod::add(MatchFields::new().with_tp_dst(1), 1, vec![])
                .with_hard_timeout(SimDuration::from_secs(30)),
            SimTime::ZERO,
        )
        .unwrap();
        t.apply(
            &FlowMod::add(MatchFields::new().with_tp_dst(2), 1, vec![])
                .with_idle_timeout(SimDuration::from_secs(10)),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(10)));
    }
}
