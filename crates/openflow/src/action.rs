//! OpenFlow actions.

use athena_types::{Ipv4Addr, MacAddr, PortNo};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A forwarding action applied to matched packets.
///
/// An empty action list means *drop*, per the OpenFlow specification;
/// [`Action::is_drop`] exists for readability at call sites.
///
/// # Examples
///
/// ```
/// use athena_openflow::Action;
/// use athena_types::PortNo;
///
/// let actions = vec![Action::Output(PortNo::new(2))];
/// assert!(actions.iter().any(|a| a.output_port() == Some(PortNo::new(2))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Action {
    /// Forward out of the given port (possibly a reserved port such as
    /// [`PortNo::CONTROLLER`] or [`PortNo::FLOOD`]).
    Output(PortNo),
    /// Rewrite the source MAC address.
    SetEthSrc(MacAddr),
    /// Rewrite the destination MAC address.
    SetEthDst(MacAddr),
    /// Rewrite the source IPv4 address.
    SetIpSrc(Ipv4Addr),
    /// Rewrite the destination IPv4 address.
    SetIpDst(Ipv4Addr),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
    /// Enqueue on the given port queue (rate limiting).
    Enqueue {
        /// Egress port.
        port: PortNo,
        /// Queue id on that port.
        queue_id: u32,
    },
}

impl Action {
    /// Returns the egress port if this is an output-like action.
    pub fn output_port(self) -> Option<PortNo> {
        match self {
            Action::Output(p) | Action::Enqueue { port: p, .. } => Some(p),
            _ => None,
        }
    }

    /// Returns `true` if an action *list* represents a drop (no outputs).
    pub fn is_drop(actions: &[Action]) -> bool {
        actions.iter().all(|a| a.output_port().is_none())
    }

    /// Returns the first egress port of an action list, if any.
    pub fn first_output(actions: &[Action]) -> Option<PortNo> {
        actions.iter().find_map(|a| a.output_port())
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{p}"),
            Action::SetEthSrc(m) => write!(f, "set_eth_src:{m}"),
            Action::SetEthDst(m) => write!(f, "set_eth_dst:{m}"),
            Action::SetIpSrc(ip) => write!(f, "set_ip_src:{ip}"),
            Action::SetIpDst(ip) => write!(f, "set_ip_dst:{ip}"),
            Action::SetTpSrc(p) => write!(f, "set_tp_src:{p}"),
            Action::SetTpDst(p) => write!(f, "set_tp_dst:{p}"),
            Action::Enqueue { port, queue_id } => write!(f, "enqueue:{port}:{queue_id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_action_list_is_drop() {
        assert!(Action::is_drop(&[]));
        assert!(Action::is_drop(&[Action::SetTpDst(80)]));
        assert!(!Action::is_drop(&[Action::Output(PortNo::new(1))]));
    }

    #[test]
    fn first_output_finds_port() {
        let actions = [
            Action::SetEthDst(MacAddr::BROADCAST),
            Action::Output(PortNo::new(7)),
            Action::Output(PortNo::new(8)),
        ];
        assert_eq!(Action::first_output(&actions), Some(PortNo::new(7)));
    }

    #[test]
    fn enqueue_counts_as_output() {
        let a = Action::Enqueue {
            port: PortNo::new(4),
            queue_id: 1,
        };
        assert_eq!(a.output_port(), Some(PortNo::new(4)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Action::Output(PortNo::FLOOD).to_string(), "output:FLOOD");
        assert_eq!(Action::SetTpDst(8080).to_string(), "set_tp_dst:8080");
    }
}
