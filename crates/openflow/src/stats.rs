//! OpenFlow statistics bodies.
//!
//! Athena's protocol-centric features are derived directly from these
//! structures: packet/byte counts and durations from [`FlowStatsEntry`],
//! port counters from [`PortStatsEntry`], and table occupancy from
//! [`TableStatsEntry`].

use crate::action::Action;
use crate::match_fields::MatchFields;
use athena_types::{PortNo, SimDuration};
use serde::{Deserialize, Serialize};

/// Per-flow statistics, one entry per reported flow-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStatsEntry {
    /// The table holding the entry.
    pub table_id: u8,
    /// The entry's match.
    pub match_fields: MatchFields,
    /// The entry's priority.
    pub priority: u16,
    /// How long the entry has been installed.
    pub duration: SimDuration,
    /// The entry's idle timeout.
    pub idle_timeout: SimDuration,
    /// The entry's hard timeout.
    pub hard_timeout: SimDuration,
    /// The entry's cookie (upper 16 bits = installing app).
    pub cookie: u64,
    /// Packets matched so far.
    pub packet_count: u64,
    /// Bytes matched so far.
    pub byte_count: u64,
    /// The entry's actions.
    pub actions: Vec<Action>,
}

impl FlowStatsEntry {
    /// Duration in whole seconds (the OpenFlow `duration_sec` field).
    pub fn duration_sec(&self) -> u64 {
        self.duration.as_secs()
    }

    /// Sub-second remainder in nanoseconds (the `duration_nsec` field).
    pub fn duration_nsec(&self) -> u64 {
        (self.duration.as_micros() % 1_000_000) * 1_000
    }
}

/// Per-port counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PortStatsEntry {
    /// The port.
    pub port_no: PortNo,
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Inbound packets dropped (e.g. by a saturated link).
    pub rx_dropped: u64,
    /// Outbound packets dropped.
    pub tx_dropped: u64,
    /// Receive errors.
    pub rx_errors: u64,
    /// Transmit errors.
    pub tx_errors: u64,
}

/// Per-table statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TableStatsEntry {
    /// The table id.
    pub table_id: u8,
    /// Number of live entries.
    pub active_count: u32,
    /// Packets looked up in the table.
    pub lookup_count: u64,
    /// Packets that hit an entry.
    pub matched_count: u64,
}

impl TableStatsEntry {
    /// The table-miss ratio in `[0, 1]` (zero when no lookups occurred).
    pub fn miss_ratio(&self) -> f64 {
        if self.lookup_count == 0 {
            0.0
        } else {
            1.0 - self.matched_count as f64 / self.lookup_count as f64
        }
    }
}

/// Aggregate statistics over a set of flow entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AggregateStats {
    /// Total matched packets.
    pub packet_count: u64,
    /// Total matched bytes.
    pub byte_count: u64,
    /// Number of entries aggregated.
    pub flow_count: u32,
}

/// A statistics reply body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StatsReply {
    /// Per-flow statistics.
    Flow(Vec<FlowStatsEntry>),
    /// Aggregate statistics.
    Aggregate(AggregateStats),
    /// Per-port statistics.
    Port(Vec<PortStatsEntry>),
    /// Per-table statistics.
    Table(Vec<TableStatsEntry>),
}

impl StatsReply {
    /// Returns a short name for the reply kind.
    pub fn kind(&self) -> &'static str {
        match self {
            StatsReply::Flow(_) => "FLOW",
            StatsReply::Aggregate(_) => "AGGREGATE",
            StatsReply::Port(_) => "PORT",
            StatsReply::Table(_) => "TABLE",
        }
    }

    /// Number of entries in the reply body.
    pub fn len(&self) -> usize {
        match self {
            StatsReply::Flow(v) => v.len(),
            StatsReply::Aggregate(_) => 1,
            StatsReply::Port(v) => v.len(),
            StatsReply::Table(v) => v.len(),
        }
    }

    /// Returns `true` if the reply carries no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimDuration;

    #[test]
    fn duration_split_matches_openflow_fields() {
        let e = FlowStatsEntry {
            table_id: 0,
            match_fields: MatchFields::new(),
            priority: 1,
            duration: SimDuration::from_micros(2_500_000),
            idle_timeout: SimDuration::ZERO,
            hard_timeout: SimDuration::ZERO,
            cookie: 0,
            packet_count: 10,
            byte_count: 1000,
            actions: vec![],
        };
        assert_eq!(e.duration_sec(), 2);
        assert_eq!(e.duration_nsec(), 500_000_000);
    }

    #[test]
    fn miss_ratio() {
        let t = TableStatsEntry {
            table_id: 0,
            active_count: 5,
            lookup_count: 100,
            matched_count: 75,
        };
        assert!((t.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(TableStatsEntry::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reply_kind_and_len() {
        let r = StatsReply::Port(vec![PortStatsEntry::default(); 3]);
        assert_eq!(r.kind(), "PORT");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(StatsReply::Aggregate(AggregateStats::default()).len(), 1);
        assert!(StatsReply::Flow(vec![]).is_empty());
    }
}
