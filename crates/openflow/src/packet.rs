//! Parsed packet header summaries.
//!
//! The simulator is flow-level: instead of carrying raw frames, switches and
//! controllers exchange a [`PacketHeader`] — the parsed L2–L4 header fields
//! a real switch would extract for table lookup, plus the frame length.
//! This is exactly the information an OpenFlow 1.0 match operates on.

use athena_types::{EtherType, FiveTuple, IpProto, Ipv4Addr, MacAddr, PortNo};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The parsed header of a simulated packet.
///
/// # Examples
///
/// ```
/// use athena_openflow::PacketHeader;
/// use athena_types::{Ipv4Addr, PortNo};
///
/// let h = PacketHeader::tcp_syn(
///     PortNo::new(1),
///     Ipv4Addr::new(10, 0, 0, 1), 12345,
///     Ipv4Addr::new(10, 0, 0, 9), 80,
/// );
/// assert_eq!(h.five_tuple().unwrap().dst_port, 80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// The switch port the packet arrived on.
    pub in_port: PortNo,
    /// Source MAC address.
    pub eth_src: MacAddr,
    /// Destination MAC address.
    pub eth_dst: MacAddr,
    /// Ethernet frame type.
    pub eth_type: EtherType,
    /// VLAN id, if tagged.
    pub vlan_id: Option<u16>,
    /// Source IPv4 address (IPv4 frames only).
    pub ip_src: Option<Ipv4Addr>,
    /// Destination IPv4 address (IPv4 frames only).
    pub ip_dst: Option<Ipv4Addr>,
    /// IP protocol (IPv4 frames only).
    pub ip_proto: Option<IpProto>,
    /// Transport source port (TCP/UDP only).
    pub tp_src: Option<u16>,
    /// Transport destination port (TCP/UDP only).
    pub tp_dst: Option<u16>,
    /// Total frame length in bytes.
    pub byte_len: u32,
}

impl PacketHeader {
    /// Creates a TCP packet header (e.g. the first SYN of a flow).
    pub fn tcp_syn(
        in_port: PortNo,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
    ) -> Self {
        Self::from_five_tuple(in_port, FiveTuple::tcp(src, src_port, dst, dst_port), 64)
    }

    /// Creates a header for a flow's 5-tuple with the given frame length.
    ///
    /// MAC addresses are derived deterministically from the IP endpoints so
    /// that L2 learning in the controller behaves consistently.
    pub fn from_five_tuple(in_port: PortNo, ft: FiveTuple, byte_len: u32) -> Self {
        PacketHeader {
            in_port,
            eth_src: mac_for_ip(ft.src),
            eth_dst: mac_for_ip(ft.dst),
            eth_type: EtherType::Ipv4,
            vlan_id: None,
            ip_src: Some(ft.src),
            ip_dst: Some(ft.dst),
            ip_proto: Some(ft.proto),
            tp_src: Some(ft.src_port),
            tp_dst: Some(ft.dst_port),
            byte_len,
        }
    }

    /// Creates an ARP-like L2 broadcast header.
    pub fn arp_request(in_port: PortNo, src: Ipv4Addr) -> Self {
        PacketHeader {
            in_port,
            eth_src: mac_for_ip(src),
            eth_dst: MacAddr::BROADCAST,
            eth_type: EtherType::Arp,
            vlan_id: None,
            ip_src: Some(src),
            ip_dst: None,
            ip_proto: None,
            tp_src: None,
            tp_dst: None,
            byte_len: 42,
        }
    }

    /// Creates an LLDP discovery frame (used by the controller's link
    /// discovery service).
    pub fn lldp(in_port: PortNo) -> Self {
        PacketHeader {
            in_port,
            eth_src: MacAddr::new([0x02, 0xdd, 0, 0, 0, 1]),
            eth_dst: MacAddr::new([0x01, 0x80, 0xc2, 0, 0, 0x0e]),
            eth_type: EtherType::Lldp,
            vlan_id: None,
            ip_src: None,
            ip_dst: None,
            ip_proto: None,
            tp_src: None,
            tp_dst: None,
            byte_len: 60,
        }
    }

    /// Returns the transport 5-tuple if this is a TCP/UDP packet.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        Some(FiveTuple {
            src: self.ip_src?,
            dst: self.ip_dst?,
            src_port: self.tp_src?,
            dst_port: self.tp_dst?,
            proto: self.ip_proto?,
        })
    }

    /// Returns a copy arriving on a different port (used when a packet is
    /// forwarded across a link).
    pub fn with_in_port(mut self, in_port: PortNo) -> Self {
        self.in_port = in_port;
        self
    }
}

/// Derives a stable MAC address from an IPv4 address.
pub fn mac_for_ip(ip: Ipv4Addr) -> MacAddr {
    let o = ip.octets();
    MacAddr::new([0x02, 0x1a, o[0], o[1], o[2], o[3]])
}

impl fmt::Display for PacketHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.five_tuple() {
            Some(ft) => write!(f, "[port {}] {} ({}B)", self.in_port, ft, self.byte_len),
            None => write!(
                f,
                "[port {}] {} {} -> {} ({}B)",
                self.in_port, self.eth_type, self.eth_src, self.eth_dst, self.byte_len
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_roundtrip() {
        let ft = FiveTuple::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            53,
            Ipv4Addr::new(5, 6, 7, 8),
            999,
        );
        let h = PacketHeader::from_five_tuple(PortNo::new(3), ft, 128);
        assert_eq!(h.five_tuple(), Some(ft));
        assert_eq!(h.byte_len, 128);
    }

    #[test]
    fn arp_has_no_transport_fields() {
        let h = PacketHeader::arp_request(PortNo::new(1), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.five_tuple(), None);
        assert!(h.eth_dst.is_broadcast());
        assert_eq!(h.eth_type, EtherType::Arp);
    }

    #[test]
    fn lldp_frame_shape() {
        let h = PacketHeader::lldp(PortNo::new(2));
        assert_eq!(h.eth_type, EtherType::Lldp);
        assert_eq!(h.five_tuple(), None);
    }

    #[test]
    fn mac_derivation_is_stable_and_injective_on_octets() {
        let a = mac_for_ip(Ipv4Addr::new(10, 0, 0, 1));
        let b = mac_for_ip(Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(a, mac_for_ip(Ipv4Addr::new(10, 0, 0, 1)));
        assert_ne!(a, b);
    }

    #[test]
    fn with_in_port_only_changes_port() {
        let h = PacketHeader::tcp_syn(
            PortNo::new(1),
            Ipv4Addr::new(1, 1, 1, 1),
            1,
            Ipv4Addr::new(2, 2, 2, 2),
            2,
        );
        let h2 = h.with_in_port(PortNo::new(9));
        assert_eq!(h2.in_port, PortNo::new(9));
        assert_eq!(h2.five_tuple(), h.five_tuple());
    }
}
