//! The OpenFlow control-message model.
//!
//! [`OfMessage`] is the envelope every control-channel exchange uses: the
//! data plane sends `PacketIn`, `FlowRemoved`, `PortStatus`, and statistics
//! replies upward; the controller sends `FlowMod`, `PacketOut`, and
//! statistics requests downward. Athena's southbound interface taps exactly
//! this stream.

use crate::action::Action;
use crate::match_fields::MatchFields;
use crate::packet::PacketHeader;
use crate::stats::StatsReply;
use athena_types::{AppId, PortNo, SimDuration, Xid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a packet was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketInReason {
    /// No flow entry matched the packet.
    NoMatch,
    /// An explicit `Output:CONTROLLER` action fired.
    Action,
}

/// A packet-in event: the switch forwards a packet to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketIn {
    /// Switch-assigned buffer for the queued packet, if buffered.
    pub buffer_id: Option<u32>,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// Parsed header of the punted packet.
    pub header: PacketHeader,
}

/// A packet-out: the controller injects a packet into the data plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketOut {
    /// Buffer to release, if the packet was buffered at the switch.
    pub buffer_id: Option<u32>,
    /// Header of the injected packet.
    pub header: PacketHeader,
    /// Actions to apply (typically a single `Output`).
    pub actions: Vec<Action>,
}

/// The flow-mod command verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowModCommand {
    /// Insert a new entry (replacing an identical match+priority entry).
    Add,
    /// Modify the actions of all matching entries.
    Modify,
    /// Delete all entries whose match is a subset of this one.
    Delete,
    /// Delete the entry with exactly this match and priority.
    DeleteStrict,
}

/// A flow-table modification message.
///
/// The `cookie` encodes the installing application in its upper 16 bits
/// (ONOS-style), which is how Athena attributes flows to applications for
/// the NAE use case. Use [`FlowMod::cookie_for_app`] / [`FlowMod::app_id`].
///
/// # Examples
///
/// ```
/// use athena_openflow::{Action, FlowMod, MatchFields};
/// use athena_types::{AppId, PortNo};
///
/// let fm = FlowMod::add(MatchFields::new(), 10, vec![Action::Output(PortNo::new(1))])
///     .with_app(AppId::new(3))
///     .with_idle_timeout(athena_types::SimDuration::from_secs(10));
/// assert_eq!(fm.app_id(), AppId::new(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMod {
    /// What to do.
    pub command: FlowModCommand,
    /// The match.
    pub match_fields: MatchFields,
    /// Priority (higher wins).
    pub priority: u16,
    /// Remove the entry after this long without traffic (zero = never).
    pub idle_timeout: SimDuration,
    /// Remove the entry this long after installation (zero = never).
    pub hard_timeout: SimDuration,
    /// Opaque cookie; upper 16 bits carry the installing [`AppId`].
    pub cookie: u64,
    /// Action list (empty = drop).
    pub actions: Vec<Action>,
    /// Request a [`FlowRemoved`] notification on expiry.
    pub send_flow_removed: bool,
}

impl FlowMod {
    /// Creates an `Add` flow-mod with no timeouts.
    pub fn add(match_fields: MatchFields, priority: u16, actions: Vec<Action>) -> Self {
        FlowMod {
            command: FlowModCommand::Add,
            match_fields,
            priority,
            idle_timeout: SimDuration::ZERO,
            hard_timeout: SimDuration::ZERO,
            cookie: 0,
            actions,
            send_flow_removed: true,
        }
    }

    /// Creates a non-strict `Delete` for all entries under `match_fields`.
    pub fn delete(match_fields: MatchFields) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            match_fields,
            priority: 0,
            idle_timeout: SimDuration::ZERO,
            hard_timeout: SimDuration::ZERO,
            cookie: 0,
            actions: Vec::new(),
            send_flow_removed: true,
        }
    }

    /// Encodes an application id into a cookie value.
    pub fn cookie_for_app(app: AppId, seq: u64) -> u64 {
        (u64::from(app.raw()) << 48) | (seq & 0x0000_ffff_ffff_ffff)
    }

    /// Tags this flow-mod with the installing application.
    pub fn with_app(mut self, app: AppId) -> Self {
        self.cookie = Self::cookie_for_app(app, self.cookie & 0x0000_ffff_ffff_ffff);
        self
    }

    /// Returns the installing application encoded in the cookie.
    pub fn app_id(&self) -> AppId {
        AppId::new((self.cookie >> 48) as u32)
    }

    /// Sets the idle timeout.
    pub fn with_idle_timeout(mut self, t: SimDuration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Sets the hard timeout.
    pub fn with_hard_timeout(mut self, t: SimDuration) -> Self {
        self.hard_timeout = t;
        self
    }
}

/// Why a flow entry was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowRemovedReason {
    /// The idle timeout elapsed with no matching traffic.
    IdleTimeout,
    /// The hard timeout elapsed.
    HardTimeout,
    /// A delete flow-mod removed the entry.
    Delete,
}

/// Notification that a flow entry was removed, with its final counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRemoved {
    /// The removed entry's match.
    pub match_fields: MatchFields,
    /// The removed entry's cookie.
    pub cookie: u64,
    /// The removed entry's priority.
    pub priority: u16,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// How long the entry lived.
    pub duration: SimDuration,
    /// Packets matched over the entry's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the entry's lifetime.
    pub byte_count: u64,
}

/// Why a port-status notification was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortStatusReason {
    /// The port was added.
    Add,
    /// The port was removed.
    Delete,
    /// The port's state changed (e.g. link down).
    Modify,
}

/// A port-status notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStatus {
    /// What happened.
    pub reason: PortStatusReason,
    /// The affected port.
    pub port_no: PortNo,
    /// Whether the link on the port is up.
    pub link_up: bool,
}

/// A statistics request body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsRequest {
    /// Per-flow statistics for entries matching the filter.
    Flow {
        /// Only entries whose match is a subset of this filter are reported.
        filter: MatchFields,
    },
    /// Aggregate statistics over entries matching the filter.
    Aggregate {
        /// Only entries whose match is a subset of this filter are counted.
        filter: MatchFields,
    },
    /// Per-port counters ([`PortNo::ANY`] = all ports).
    Port {
        /// The port to report, or [`PortNo::ANY`].
        port_no: PortNo,
    },
    /// Per-table statistics.
    Table,
}

/// The switch-features handshake reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeaturesReply {
    /// The switch's datapath id.
    pub dpid: athena_types::Dpid,
    /// Number of flow tables.
    pub n_tables: u8,
    /// The switch's physical ports.
    pub ports: Vec<PortNo>,
}

/// Payload carried by echo request/reply messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EchoData(pub Vec<u8>);

/// An OpenFlow control message: the envelope (transaction id) plus payload.
///
/// # Examples
///
/// ```
/// use athena_openflow::{OfMessage, PacketIn, PacketInReason, PacketHeader};
/// use athena_types::{Ipv4Addr, PortNo, Xid};
///
/// let msg = OfMessage::packet_in(
///     Xid::new(1),
///     PacketHeader::tcp_syn(PortNo::new(1), Ipv4Addr::new(1,1,1,1), 1, Ipv4Addr::new(2,2,2,2), 2),
/// );
/// assert!(matches!(msg, OfMessage::PacketIn { .. }));
/// assert_eq!(msg.xid(), Xid::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OfMessage {
    /// Version negotiation.
    Hello {
        /// Transaction id.
        xid: Xid,
        /// The sender's highest supported wire version.
        version: u8,
    },
    /// Liveness probe.
    EchoRequest {
        /// Transaction id.
        xid: Xid,
        /// Opaque payload echoed back.
        data: EchoData,
    },
    /// Liveness probe response.
    EchoReply {
        /// Transaction id.
        xid: Xid,
        /// The request's payload.
        data: EchoData,
    },
    /// Ask the switch for its features.
    FeaturesRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// The switch's feature description.
    FeaturesReply {
        /// Transaction id.
        xid: Xid,
        /// Feature body.
        body: FeaturesReply,
    },
    /// A punted packet.
    PacketIn {
        /// Transaction id.
        xid: Xid,
        /// Packet-in body.
        body: PacketIn,
    },
    /// An injected packet.
    PacketOut {
        /// Transaction id.
        xid: Xid,
        /// Packet-out body.
        body: PacketOut,
    },
    /// A flow-table modification.
    FlowMod {
        /// Transaction id.
        xid: Xid,
        /// Flow-mod body.
        body: FlowMod,
    },
    /// A flow-entry removal notification.
    FlowRemoved {
        /// Transaction id.
        xid: Xid,
        /// Flow-removed body.
        body: FlowRemoved,
    },
    /// A port state change.
    PortStatus {
        /// Transaction id.
        xid: Xid,
        /// Port-status body.
        body: PortStatus,
    },
    /// A statistics request.
    StatsRequest {
        /// Transaction id (Athena marks its own requests; see
        /// [`Xid::is_athena_marked`]).
        xid: Xid,
        /// Request body.
        body: StatsRequest,
    },
    /// A statistics reply.
    StatsReply {
        /// Transaction id, echoing the request.
        xid: Xid,
        /// Reply body.
        body: StatsReply,
    },
    /// Barrier request (ordering fence).
    BarrierRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// Barrier reply.
    BarrierReply {
        /// Transaction id.
        xid: Xid,
    },
}

impl OfMessage {
    /// Convenience constructor for a no-match packet-in.
    pub fn packet_in(xid: Xid, header: PacketHeader) -> Self {
        OfMessage::PacketIn {
            xid,
            body: PacketIn {
                buffer_id: None,
                reason: PacketInReason::NoMatch,
                header,
            },
        }
    }

    /// Returns the message's transaction id.
    pub fn xid(&self) -> Xid {
        match self {
            OfMessage::Hello { xid, .. }
            | OfMessage::EchoRequest { xid, .. }
            | OfMessage::EchoReply { xid, .. }
            | OfMessage::FeaturesRequest { xid }
            | OfMessage::FeaturesReply { xid, .. }
            | OfMessage::PacketIn { xid, .. }
            | OfMessage::PacketOut { xid, .. }
            | OfMessage::FlowMod { xid, .. }
            | OfMessage::FlowRemoved { xid, .. }
            | OfMessage::PortStatus { xid, .. }
            | OfMessage::StatsRequest { xid, .. }
            | OfMessage::StatsReply { xid, .. }
            | OfMessage::BarrierRequest { xid }
            | OfMessage::BarrierReply { xid } => *xid,
        }
    }

    /// Returns a short name for the message type (used in logs and feature
    /// metadata).
    pub fn type_name(&self) -> &'static str {
        match self {
            OfMessage::Hello { .. } => "HELLO",
            OfMessage::EchoRequest { .. } => "ECHO_REQUEST",
            OfMessage::EchoReply { .. } => "ECHO_REPLY",
            OfMessage::FeaturesRequest { .. } => "FEATURES_REQUEST",
            OfMessage::FeaturesReply { .. } => "FEATURES_REPLY",
            OfMessage::PacketIn { .. } => "PACKET_IN",
            OfMessage::PacketOut { .. } => "PACKET_OUT",
            OfMessage::FlowMod { .. } => "FLOW_MOD",
            OfMessage::FlowRemoved { .. } => "FLOW_REMOVED",
            OfMessage::PortStatus { .. } => "PORT_STATUS",
            OfMessage::StatsRequest { .. } => "STATS_REQUEST",
            OfMessage::StatsReply { .. } => "STATS_REPLY",
            OfMessage::BarrierRequest { .. } => "BARRIER_REQUEST",
            OfMessage::BarrierReply { .. } => "BARRIER_REPLY",
        }
    }
}

impl fmt::Display for OfMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.type_name(), self.xid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::Ipv4Addr;

    #[test]
    fn cookie_encodes_app_id() {
        let fm = FlowMod::add(MatchFields::new(), 1, vec![]).with_app(AppId::new(7));
        assert_eq!(fm.app_id(), AppId::new(7));
        // Sequence bits are preserved.
        let cookie = FlowMod::cookie_for_app(AppId::new(7), 12345);
        assert_eq!(cookie & 0x0000_ffff_ffff_ffff, 12345);
        assert_eq!(cookie >> 48, 7);
    }

    #[test]
    fn flow_mod_builders() {
        let fm = FlowMod::add(MatchFields::new(), 5, vec![Action::Output(PortNo::new(1))])
            .with_idle_timeout(SimDuration::from_secs(10))
            .with_hard_timeout(SimDuration::from_secs(60));
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.idle_timeout, SimDuration::from_secs(10));
        assert_eq!(fm.hard_timeout, SimDuration::from_secs(60));
        let del = FlowMod::delete(MatchFields::new());
        assert_eq!(del.command, FlowModCommand::Delete);
    }

    #[test]
    fn xid_is_uniform_across_variants() {
        let xid = Xid::new(99);
        let msgs = [
            OfMessage::Hello { xid, version: 4 },
            OfMessage::FeaturesRequest { xid },
            OfMessage::BarrierRequest { xid },
            OfMessage::packet_in(
                xid,
                PacketHeader::tcp_syn(
                    PortNo::new(1),
                    Ipv4Addr::new(1, 1, 1, 1),
                    1,
                    Ipv4Addr::new(2, 2, 2, 2),
                    2,
                ),
            ),
        ];
        for m in &msgs {
            assert_eq!(m.xid(), xid, "{m}");
        }
    }

    #[test]
    fn type_names_are_distinct() {
        use std::collections::HashSet;
        let xid = Xid::new(0);
        let names: HashSet<&str> = [
            OfMessage::Hello { xid, version: 1 }.type_name(),
            OfMessage::FeaturesRequest { xid }.type_name(),
            OfMessage::BarrierRequest { xid }.type_name(),
            OfMessage::BarrierReply { xid }.type_name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }
}
