//! A self-contained OpenFlow 1.0 / 1.3 implementation for the Athena stack.
//!
//! The Athena paper's prototype speaks OpenFlow 1.0 and 1.3 between ONOS and
//! the data plane. This crate provides the subset of the protocol the paper
//! exercises, built from scratch:
//!
//! - [`PacketHeader`] — the parsed header summary a switch reports
//!   ([`packet`] module),
//! - [`MatchFields`] — the 12-tuple match with wildcards and IP prefixes
//!   ([`match_fields`] module),
//! - [`Action`] — forwarding actions ([`action`] module),
//! - [`OfMessage`] and its payloads — `PacketIn`, `FlowMod`, `FlowRemoved`,
//!   statistics request/reply, and the session handshake ([`message`]),
//! - statistics bodies ([`stats`] module),
//! - a binary wire codec with version negotiation ([`codec`] module),
//! - [`FlowTable`] — priority-ordered matching with idle/hard timeout
//!   expiry and per-entry counters ([`table`] module).
//!
//! # Examples
//!
//! ```
//! use athena_openflow::{Action, FlowMod, FlowTable, MatchFields, PacketHeader};
//! use athena_types::{Ipv4Addr, PortNo, SimTime};
//!
//! let mut table = FlowTable::new(0);
//! let fm = FlowMod::add(
//!     MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 0, 0, 2), 32),
//!     100,
//!     vec![Action::Output(PortNo::new(2))],
//! );
//! table.apply(&fm, SimTime::ZERO)?;
//!
//! let pkt = PacketHeader::tcp_syn(
//!     PortNo::new(1),
//!     Ipv4Addr::new(10, 0, 0, 1), 40000,
//!     Ipv4Addr::new(10, 0, 0, 2), 80,
//! );
//! let hit = table.lookup(&pkt, SimTime::ZERO, 1, 64);
//! assert!(hit.is_some());
//! # Ok::<(), athena_types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod action;
pub mod codec;
pub mod match_fields;
pub mod message;
pub mod packet;
pub mod stats;
pub mod table;

pub use action::Action;
pub use codec::{decode_message, encode_message, OfVersion};
pub use match_fields::MatchFields;
pub use message::{
    EchoData, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, OfMessage,
    PacketIn, PacketInReason, PacketOut, PortStatus, PortStatusReason, StatsRequest,
};
pub use packet::PacketHeader;
pub use stats::{AggregateStats, FlowStatsEntry, PortStatsEntry, StatsReply, TableStatsEntry};
pub use table::{EntryPos, FlowEntry, FlowTable};
