//! OpenFlow match fields with wildcard semantics.
//!
//! [`MatchFields`] models the OpenFlow 1.0 12-tuple (minus the fields the
//! simulator never generates) where `None` means *wildcard*. IP addresses
//! match with a prefix length, as in OF 1.0 `nw_src`/`nw_dst` wildcard bits
//! or OF 1.3 masked OXM fields.

use crate::packet::PacketHeader;
use athena_types::{EtherType, FiveTuple, IpProto, Ipv4Addr, MacAddr, PortNo};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A flow match. `None` fields are wildcards.
///
/// # Examples
///
/// ```
/// use athena_openflow::{MatchFields, PacketHeader};
/// use athena_types::{Ipv4Addr, PortNo};
///
/// let m = MatchFields::new()
///     .with_ip_dst(Ipv4Addr::new(10, 0, 0, 0), 24)
///     .with_tp_dst(80);
/// let pkt = PacketHeader::tcp_syn(
///     PortNo::new(1),
///     Ipv4Addr::new(192, 168, 0, 1), 55555,
///     Ipv4Addr::new(10, 0, 0, 42), 80,
/// );
/// assert!(m.matches(&pkt));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct MatchFields {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Source MAC address.
    pub eth_src: Option<MacAddr>,
    /// Destination MAC address.
    pub eth_dst: Option<MacAddr>,
    /// EtherType.
    pub eth_type: Option<EtherType>,
    /// VLAN id.
    pub vlan_id: Option<u16>,
    /// Source IPv4 prefix `(network, prefix_len)`.
    pub ip_src: Option<(Ipv4Addr, u8)>,
    /// Destination IPv4 prefix `(network, prefix_len)`.
    pub ip_dst: Option<(Ipv4Addr, u8)>,
    /// IP protocol.
    pub ip_proto: Option<IpProto>,
    /// Transport source port.
    pub tp_src: Option<u16>,
    /// Transport destination port.
    pub tp_dst: Option<u16>,
}

impl MatchFields {
    /// Creates the all-wildcard match (matches every packet).
    pub fn new() -> Self {
        MatchFields::default()
    }

    /// Creates an exact match on a transport flow's 5-tuple.
    pub fn exact_five_tuple(ft: FiveTuple) -> Self {
        MatchFields::new()
            .with_eth_type(EtherType::Ipv4)
            .with_ip_src(ft.src, 32)
            .with_ip_dst(ft.dst, 32)
            .with_ip_proto(ft.proto)
            .with_tp_src(ft.src_port)
            .with_tp_dst(ft.dst_port)
    }

    /// Creates an exact match on everything a packet header exposes (the
    /// match a reactive forwarding app installs for a table-miss packet).
    pub fn exact_from_packet(pkt: &PacketHeader) -> Self {
        let mut m = MatchFields::new()
            .with_in_port(pkt.in_port)
            .with_eth_src(pkt.eth_src)
            .with_eth_dst(pkt.eth_dst)
            .with_eth_type(pkt.eth_type);
        m.vlan_id = pkt.vlan_id;
        if let Some(ip) = pkt.ip_src {
            m = m.with_ip_src(ip, 32);
        }
        if let Some(ip) = pkt.ip_dst {
            m = m.with_ip_dst(ip, 32);
        }
        if let Some(p) = pkt.ip_proto {
            m = m.with_ip_proto(p);
        }
        m.tp_src = pkt.tp_src;
        m.tp_dst = pkt.tp_dst;
        m
    }

    /// Sets the ingress port.
    pub fn with_in_port(mut self, p: PortNo) -> Self {
        self.in_port = Some(p);
        self
    }

    /// Sets the source MAC.
    pub fn with_eth_src(mut self, m: MacAddr) -> Self {
        self.eth_src = Some(m);
        self
    }

    /// Sets the destination MAC.
    pub fn with_eth_dst(mut self, m: MacAddr) -> Self {
        self.eth_dst = Some(m);
        self
    }

    /// Sets the EtherType.
    pub fn with_eth_type(mut self, t: EtherType) -> Self {
        self.eth_type = Some(t);
        self
    }

    /// Sets the VLAN id.
    pub fn with_vlan(mut self, v: u16) -> Self {
        self.vlan_id = Some(v);
        self
    }

    /// Sets the source IPv4 prefix.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn with_ip_src(mut self, net: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length must be <= 32");
        self.ip_src = Some((net, prefix_len));
        self
    }

    /// Sets the destination IPv4 prefix.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn with_ip_dst(mut self, net: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length must be <= 32");
        self.ip_dst = Some((net, prefix_len));
        self
    }

    /// Sets the IP protocol.
    pub fn with_ip_proto(mut self, p: IpProto) -> Self {
        self.ip_proto = Some(p);
        self
    }

    /// Sets the transport source port.
    pub fn with_tp_src(mut self, p: u16) -> Self {
        self.tp_src = Some(p);
        self
    }

    /// Sets the transport destination port.
    pub fn with_tp_dst(mut self, p: u16) -> Self {
        self.tp_dst = Some(p);
        self
    }

    /// Returns `true` if the packet satisfies every non-wildcard field.
    pub fn matches(&self, pkt: &PacketHeader) -> bool {
        if let Some(p) = self.in_port {
            if pkt.in_port != p {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if pkt.eth_src != m {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if pkt.eth_dst != m {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if pkt.eth_type != t {
                return false;
            }
        }
        if let Some(v) = self.vlan_id {
            if pkt.vlan_id != Some(v) {
                return false;
            }
        }
        if let Some((net, len)) = self.ip_src {
            match pkt.ip_src {
                Some(ip) if ip.in_subnet(net, len) => {}
                _ => return false,
            }
        }
        if let Some((net, len)) = self.ip_dst {
            match pkt.ip_dst {
                Some(ip) if ip.in_subnet(net, len) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.ip_proto {
            if pkt.ip_proto != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.tp_src {
            if pkt.tp_src != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if pkt.tp_dst != Some(p) {
                return false;
            }
        }
        true
    }

    /// Counts the constrained (non-wildcard) fields, weighting IP prefixes
    /// by their length. Used to order equal-priority entries, most specific
    /// first.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        s += u32::from(self.in_port.is_some());
        s += u32::from(self.eth_src.is_some());
        s += u32::from(self.eth_dst.is_some());
        s += u32::from(self.eth_type.is_some());
        s += u32::from(self.vlan_id.is_some());
        s += self.ip_src.map_or(0, |(_, l)| 1 + u32::from(l));
        s += self.ip_dst.map_or(0, |(_, l)| 1 + u32::from(l));
        s += u32::from(self.ip_proto.is_some());
        s += u32::from(self.tp_src.is_some());
        s += u32::from(self.tp_dst.is_some());
        s
    }

    /// Returns `true` if this match is the all-wildcard match.
    pub fn is_wildcard_all(&self) -> bool {
        *self == MatchFields::default()
    }

    /// Returns `true` if every packet matched by `self` is also matched by
    /// `other` (i.e. `other` is equal or wider on every field).
    ///
    /// Used for OpenFlow non-strict delete semantics, where a delete with
    /// match *M* removes every entry whose match is a subset of *M*.
    pub fn is_subset_of(&self, other: &MatchFields) -> bool {
        fn field_ok<T: PartialEq + Copy>(narrow: Option<T>, wide: Option<T>) -> bool {
            match (narrow, wide) {
                (_, None) => true,
                (Some(a), Some(b)) => a == b,
                (None, Some(_)) => false,
            }
        }
        fn prefix_ok(narrow: Option<(Ipv4Addr, u8)>, wide: Option<(Ipv4Addr, u8)>) -> bool {
            match (narrow, wide) {
                (_, None) => true,
                (Some((na, nl)), Some((wa, wl))) => nl >= wl && na.in_subnet(wa, wl),
                (None, Some(_)) => false,
            }
        }
        field_ok(self.in_port, other.in_port)
            && field_ok(self.eth_src, other.eth_src)
            && field_ok(self.eth_dst, other.eth_dst)
            && field_ok(self.eth_type, other.eth_type)
            && field_ok(self.vlan_id, other.vlan_id)
            && prefix_ok(self.ip_src, other.ip_src)
            && prefix_ok(self.ip_dst, other.ip_dst)
            && field_ok(self.ip_proto, other.ip_proto)
            && field_ok(self.tp_src, other.tp_src)
            && field_ok(self.tp_dst, other.tp_dst)
    }

    /// Returns the exact 5-tuple this match pins down, if it constrains all
    /// five transport fields exactly.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let (src, 32) = self.ip_src? else { return None };
        let (dst, 32) = self.ip_dst? else { return None };
        Some(FiveTuple {
            src,
            dst,
            src_port: self.tp_src?,
            dst_port: self.tp_dst?,
            proto: self.ip_proto?,
        })
    }
}

impl fmt::Display for MatchFields {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in_port={p}"));
        }
        if let Some(m) = self.eth_src {
            parts.push(format!("eth_src={m}"));
        }
        if let Some(m) = self.eth_dst {
            parts.push(format!("eth_dst={m}"));
        }
        if let Some(t) = self.eth_type {
            parts.push(format!("eth_type={t}"));
        }
        if let Some(v) = self.vlan_id {
            parts.push(format!("vlan={v}"));
        }
        if let Some((ip, l)) = self.ip_src {
            parts.push(format!("ip_src={ip}/{l}"));
        }
        if let Some((ip, l)) = self.ip_dst {
            parts.push(format!("ip_dst={ip}/{l}"));
        }
        if let Some(p) = self.ip_proto {
            parts.push(format!("proto={p}"));
        }
        if let Some(p) = self.tp_src {
            parts.push(format!("tp_src={p}"));
        }
        if let Some(p) = self.tp_dst {
            parts.push(format!("tp_dst={p}"));
        }
        if parts.is_empty() {
            write!(f, "match(*)")
        } else {
            write!(f, "match({})", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> PacketHeader {
        PacketHeader::tcp_syn(
            PortNo::new(3),
            Ipv4Addr::new(10, 1, 2, 3),
            40000,
            Ipv4Addr::new(10, 9, 8, 7),
            443,
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(MatchFields::new().matches(&pkt()));
        assert!(MatchFields::new().is_wildcard_all());
    }

    #[test]
    fn exact_five_tuple_matches_only_that_flow() {
        let ft = pkt().five_tuple().unwrap();
        let m = MatchFields::exact_five_tuple(ft);
        assert!(m.matches(&pkt()));
        let other = PacketHeader::tcp_syn(
            PortNo::new(3),
            Ipv4Addr::new(10, 1, 2, 3),
            40001, // different source port
            Ipv4Addr::new(10, 9, 8, 7),
            443,
        );
        assert!(!m.matches(&other));
    }

    #[test]
    fn prefix_matching() {
        let m = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 9, 0, 0), 16);
        assert!(m.matches(&pkt()));
        let m = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 8, 0, 0), 16);
        assert!(!m.matches(&pkt()));
    }

    #[test]
    fn transport_fields_require_ip_packet() {
        let m = MatchFields::new().with_tp_dst(443);
        let arp = PacketHeader::arp_request(PortNo::new(1), Ipv4Addr::new(10, 0, 0, 1));
        assert!(!m.matches(&arp));
        assert!(m.matches(&pkt()));
    }

    #[test]
    fn specificity_orders_narrower_matches_higher() {
        let wide = MatchFields::new().with_eth_type(EtherType::Ipv4);
        let narrow = MatchFields::exact_five_tuple(pkt().five_tuple().unwrap());
        assert!(narrow.specificity() > wide.specificity());
        let p16 = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 9, 0, 0), 16);
        let p24 = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 9, 8, 0), 24);
        assert!(p24.specificity() > p16.specificity());
    }

    #[test]
    fn subset_relation() {
        let all = MatchFields::new();
        let tcp = MatchFields::new().with_ip_proto(IpProto::Tcp);
        let tcp443 = tcp.with_tp_dst(443);
        assert!(tcp443.is_subset_of(&tcp));
        assert!(tcp.is_subset_of(&all));
        assert!(tcp443.is_subset_of(&all));
        assert!(!tcp.is_subset_of(&tcp443));
        // Prefix subset: /24 inside /16, not vice versa.
        let p16 = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 9, 0, 0), 16);
        let p24 = MatchFields::new().with_ip_dst(Ipv4Addr::new(10, 9, 8, 0), 24);
        assert!(p24.is_subset_of(&p16));
        assert!(!p16.is_subset_of(&p24));
        // Every match is a subset of itself.
        assert!(tcp443.is_subset_of(&tcp443));
    }

    #[test]
    fn exact_from_packet_matches_its_packet() {
        let p = pkt();
        let m = MatchFields::exact_from_packet(&p);
        assert!(m.matches(&p));
        assert_eq!(m.five_tuple(), p.five_tuple());
    }

    #[test]
    fn five_tuple_extraction_requires_exact_prefixes() {
        let ft = pkt().five_tuple().unwrap();
        let exact = MatchFields::exact_five_tuple(ft);
        assert_eq!(exact.five_tuple(), Some(ft));
        let coarse = MatchFields::new()
            .with_ip_src(ft.src, 24)
            .with_ip_dst(ft.dst, 32)
            .with_ip_proto(ft.proto)
            .with_tp_src(ft.src_port)
            .with_tp_dst(ft.dst_port);
        assert_eq!(coarse.five_tuple(), None);
    }

    #[test]
    fn display_lists_constrained_fields() {
        let m = MatchFields::new().with_tp_dst(80);
        assert_eq!(m.to_string(), "match(tp_dst=80)");
        assert_eq!(MatchFields::new().to_string(), "match(*)");
    }
}
