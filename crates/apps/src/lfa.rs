//! Scenario 2: link-flooding-attack (LFA) mitigation (paper §V-B).
//!
//! The paper implements Spiffy's LFA mitigation as an Athena application:
//! volume-based features (`PORT_RX_BYTES_VAR`-style) detect congested
//! links through a registered event handler, per-flow/per-host change
//! tracking identifies the contributing bots, and the mitigation logic
//! blocks them through the Reactor — all without the SNMP measurement or
//! OpenSketch switches Spiffy requires (Table VII).
//!
//! Like the paper's applications (which run as separate processes talking
//! to Athena over IPC), the handler only records observations; the
//! application's [`LfaMitigator::mitigate`] step queries features and
//! issues reactions outside the delivery path.

use athena_core::nb::reaction_manager::Reaction;
use athena_core::{Athena, Query, QueryBuilder};
use athena_types::{Dpid, Ipv4Addr, PortNo};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration for the LFA mitigator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfaMitigatorConfig {
    /// Egress-port utilization above which a link is congested
    /// (offered/capacity over the poll window).
    pub utilization_threshold: f64,
    /// Any positive per-window drop variation also signals congestion.
    pub drop_var_threshold: f64,
    /// Hosts sending to at least this many distinct destinations through
    /// the congested switch are bot candidates.
    pub fanout_threshold: f64,
    /// At most this many hosts are blocked per mitigation step.
    pub max_blocks_per_step: usize,
}

impl Default for LfaMitigatorConfig {
    fn default() -> Self {
        LfaMitigatorConfig {
            utilization_threshold: 0.9,
            drop_var_threshold: 0.0,
            fanout_threshold: 3.0,
            max_blocks_per_step: 16,
        }
    }
}

/// A congestion observation recorded by the event handler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionAlert {
    /// The switch whose egress port congested.
    pub switch: Dpid,
    /// The congested port.
    pub port: PortNo,
    /// The observed utilization.
    pub utilization: f64,
}

/// The LFA detection-and-mitigation application.
#[derive(Debug)]
pub struct LfaMitigator {
    /// The configuration.
    pub config: LfaMitigatorConfig,
    alerts: Arc<Mutex<Vec<CongestionAlert>>>,
    blocked: HashSet<Ipv4Addr>,
}

impl LfaMitigator {
    /// Creates the mitigator.
    pub fn new(config: LfaMitigatorConfig) -> Self {
        LfaMitigator {
            config,
            alerts: Arc::new(Mutex::new(Vec::new())),
            blocked: HashSet::new(),
        }
    }

    /// The event-handler registration (the paper's
    /// `AddEventHandler` with volume-based candidate features): port
    /// features whose utilization or drop variation exceed the
    /// thresholds.
    pub fn deploy(&self, athena: &Athena) -> usize {
        let q: Query = QueryBuilder::new().eq("message_type", "PORT_STATS").build();
        let alerts = Arc::clone(&self.alerts);
        let util_threshold = self.config.utilization_threshold;
        let drop_threshold = self.config.drop_var_threshold;
        athena.add_event_handler(
            &q,
            Box::new(move |record| {
                let util = record.field("PORT_TX_UTILIZATION").unwrap_or(0.0);
                let drops = record.field("PORT_TX_DROPPED_VAR").unwrap_or(0.0);
                if util >= util_threshold || drops > drop_threshold {
                    if let Some(port) = record.index.port {
                        alerts.lock().push(CongestionAlert {
                            switch: record.index.switch,
                            port,
                            utilization: util,
                        });
                    }
                }
            }),
        )
    }

    /// Congestion alerts observed so far (drained by `mitigate`).
    pub fn pending_alerts(&self) -> usize {
        self.alerts.lock().len()
    }

    /// Hosts blocked so far.
    pub fn blocked_hosts(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self.blocked.iter().copied().collect();
        v.sort();
        v
    }

    /// The mitigation step (the custom detection logic of the paper's
    /// `Event_Handler`): for each congested switch, query the per-host
    /// features, pick high-fanout heavy senders, and block them.
    ///
    /// Returns the hosts newly blocked in this step.
    pub fn mitigate(&mut self, athena: &Athena) -> Vec<Ipv4Addr> {
        let alerts: Vec<CongestionAlert> = self.alerts.lock().drain(..).collect();
        if alerts.is_empty() {
            return Vec::new();
        }
        let switches: HashSet<Dpid> = alerts.iter().map(|a| a.switch).collect();
        let mut newly_blocked = Vec::new();
        for switch in switches {
            // Per-host aggregates at the congested switch, heaviest first.
            let q = QueryBuilder::new()
                .eq("message_type", "HOST_STATE")
                .eq("switch", switch.raw())
                .sort_desc("HOST_TX_BYTES")
                .limit(64)
                .build();
            for record in athena.request_features(&q) {
                if newly_blocked.len() >= self.config.max_blocks_per_step {
                    break;
                }
                let fanout = record.field("HOST_FANOUT").unwrap_or(0.0);
                let tx = record.field("HOST_TX_BYTES").unwrap_or(0.0);
                let rx = record.field("HOST_RX_BYTES").unwrap_or(0.0);
                // Bot profile: wide fan-out, send-heavy.
                if fanout >= self.config.fanout_threshold && tx > rx * 2.0 {
                    if let Some(host) = record.index.host {
                        if self.blocked.insert(host) {
                            newly_blocked.push(host);
                        }
                    }
                }
            }
        }
        if !newly_blocked.is_empty() {
            athena.reactor(Reaction::Block {
                targets: newly_blocked.clone(),
            });
        }
        newly_blocked
    }

    /// The Table VII capability comparison (Spiffy vs. Athena).
    pub fn capability_comparison() -> Vec<[&'static str; 3]> {
        vec![
            ["Category", "Spiffy", "Athena"],
            ["Link congestion", "SNMP", "Built-in"],
            ["Rate change", "OpenSketch", "OF switch"],
            ["Traffic engineering", "Edge router", "All switches"],
            ["Insider threat", "Out of scope", "Covered"],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_core::{AthenaConfig, FeatureIndex, FeatureRecord};

    fn port_record(switch: u64, port: u32, util: f64, drops: f64) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::port(Dpid::new(switch), PortNo::new(port)));
        r.meta.message_type = "PORT_STATS".into();
        r.push_field("PORT_TX_UTILIZATION", util);
        r.push_field("PORT_TX_DROPPED_VAR", drops);
        r
    }

    fn host_record(switch: u64, host: Ipv4Addr, tx: f64, rx: f64, fanout: f64) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(switch)));
        r.index.host = Some(host);
        r.meta.message_type = "HOST_STATE".into();
        r.push_field("HOST_TX_BYTES", tx);
        r.push_field("HOST_RX_BYTES", rx);
        r.push_field("HOST_FANOUT", fanout);
        r
    }

    #[test]
    fn congestion_alerts_are_recorded_by_the_handler() {
        let athena = Athena::new(AthenaConfig::default());
        let lfa = LfaMitigator::new(LfaMitigatorConfig::default());
        lfa.deploy(&athena);
        let mut fm = athena.runtime().feature_manager.lock();
        fm.ingest(&port_record(2, 1, 0.95, 0.0)).unwrap(); // congested
        fm.ingest(&port_record(2, 2, 0.10, 0.0)).unwrap(); // fine
        fm.ingest(&port_record(3, 1, 0.10, 50.0)).unwrap(); // drops
        drop(fm);
        assert_eq!(lfa.pending_alerts(), 2);
    }

    #[test]
    fn mitigation_blocks_high_fanout_heavy_senders() {
        let athena = Athena::new(AthenaConfig::default());
        let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
        lfa.deploy(&athena);
        let bot = Ipv4Addr::new(10, 0, 0, 66);
        let benign = Ipv4Addr::new(10, 0, 0, 7);
        {
            let mut fm = athena.runtime().feature_manager.lock();
            // Host profiles at switch 2.
            fm.ingest(&host_record(2, bot, 1e9, 1e6, 12.0)).unwrap();
            fm.ingest(&host_record(2, benign, 1e8, 9e7, 1.0)).unwrap();
            // Congestion at switch 2.
            fm.ingest(&port_record(2, 1, 0.99, 100.0)).unwrap();
        }
        let blocked = lfa.mitigate(&athena);
        assert_eq!(blocked, vec![bot]);
        assert_eq!(lfa.blocked_hosts(), vec![bot]);
        assert_eq!(athena.mitigated_hosts(), vec![bot]);
        // Second step with no new alerts does nothing.
        assert!(lfa.mitigate(&athena).is_empty());
    }

    #[test]
    fn no_congestion_means_no_blocks() {
        let athena = Athena::new(AthenaConfig::default());
        let mut lfa = LfaMitigator::new(LfaMitigatorConfig::default());
        lfa.deploy(&athena);
        {
            let mut fm = athena.runtime().feature_manager.lock();
            fm.ingest(&host_record(2, Ipv4Addr::new(10, 0, 0, 66), 1e9, 0.0, 12.0))
                .unwrap();
            fm.ingest(&port_record(2, 1, 0.2, 0.0)).unwrap();
        }
        assert!(lfa.mitigate(&athena).is_empty());
    }

    #[test]
    fn capability_table_matches_table_vii() {
        let rows = LfaMitigator::capability_comparison();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[1], ["Link congestion", "SNMP", "Built-in"]);
        assert_eq!(rows[4], ["Insider threat", "Out of scope", "Covered"]);
    }
}
