//! Scenario 3: the Network Application Effectiveness (NAE) monitor
//! (paper §V-C).
//!
//! A load balancer and a higher-priority security app compete over FTP
//! forwarding; once the security app activates, it takes over the flows
//! and the network "suffers unexpected saturation in some links and low
//! volume in others" even though the LB app is still running. The NAE
//! monitor registers an event handler on per-switch features
//! (`Match DPID==(6 or 3)`), checks a user-defined SLA ("traffic should
//! be distributed evenly per each switch"), and reports violations with
//! the Figure 9 time series.

use athena_core::{Athena, QueryBuilder};
use athena_types::{Dpid, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for the NAE monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct NaeMonitorConfig {
    /// The switches whose balance the SLA covers (the paper queries
    /// `DPID==(6 or 3)`).
    pub switches: (Dpid, Dpid),
    /// Maximum allowed imbalance `|a-b| / max(a,b)` per sample window.
    pub imbalance_threshold: f64,
    /// Samples where both switches carry fewer packets than this are
    /// ignored (start-up noise is not an SLA violation).
    pub min_packets: f64,
}

impl Default for NaeMonitorConfig {
    fn default() -> Self {
        NaeMonitorConfig {
            switches: (Dpid::new(3), Dpid::new(6)),
            imbalance_threshold: 0.6,
            min_packets: 100.0,
        }
    }
}

/// A detected SLA violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaViolation {
    /// When the violating sample was observed.
    pub at: SimTime,
    /// Packet count on the first monitored switch.
    pub first: f64,
    /// Packet count on the second monitored switch.
    pub second: f64,
    /// The imbalance ratio that tripped the SLA.
    pub imbalance: f64,
}

#[derive(Debug, Default)]
struct SeriesState {
    // time(us) -> (per-switch packet totals)
    samples: BTreeMap<u64, BTreeMap<u64, f64>>,
}

/// The NAE monitoring application.
#[derive(Debug)]
pub struct NaeMonitor {
    /// The configuration.
    pub config: NaeMonitorConfig,
    state: Arc<Mutex<SeriesState>>,
}

impl NaeMonitor {
    /// Creates the monitor.
    pub fn new(config: NaeMonitorConfig) -> Self {
        NaeMonitor {
            config,
            state: Arc::new(Mutex::new(SeriesState::default())),
        }
    }

    /// Registers the event handler (`AddEventHandler` with
    /// `Match DPID==(6 or 3)` in the paper; we capture the per-switch
    /// aggregate features of both monitored switches).
    pub fn deploy(&self, athena: &Athena) -> usize {
        let (a, b) = self.config.switches;
        let q = QueryBuilder::new()
            .eq("message_type", "SWITCH_STATE")
            .is_in(
                "switch",
                vec![
                    serde_json::Value::from(a.raw()),
                    serde_json::Value::from(b.raw()),
                ],
            )
            .build();
        let state = Arc::clone(&self.state);
        athena.add_event_handler(
            &q,
            Box::new(move |record| {
                let Some(total) = record.field("SWITCH_PACKET_COUNT_TOTAL") else {
                    return;
                };
                state
                    .lock()
                    .samples
                    .entry(record.meta.timestamp.as_micros())
                    .or_default()
                    .insert(record.index.switch.raw(), total);
            }),
        )
    }

    /// The paper's `Check_SLA()`: detects asymmetric traffic patterns.
    /// Returns every violating sample in time order.
    pub fn check_sla(&self) -> Vec<SlaViolation> {
        let (a, b) = self.config.switches;
        let state = self.state.lock();
        let mut violations = Vec::new();
        for (t, per_switch) in &state.samples {
            let first = per_switch.get(&a.raw()).copied().unwrap_or(0.0);
            let second = per_switch.get(&b.raw()).copied().unwrap_or(0.0);
            let max = first.max(second);
            if max < self.config.min_packets {
                continue;
            }
            let imbalance = (first - second).abs() / max;
            if imbalance > self.config.imbalance_threshold {
                violations.push(SlaViolation {
                    at: SimTime::from_micros(*t),
                    first,
                    second,
                    imbalance,
                });
            }
        }
        violations
    }

    /// The Figure 9 series: per-switch packet counts over time, ready for
    /// `ShowResults`.
    pub fn series(&self) -> Vec<(String, Vec<(f64, f64)>)> {
        let (a, b) = self.config.switches;
        let state = self.state.lock();
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        for (t, per_switch) in &state.samples {
            let time = *t as f64 / 1e6;
            if let Some(v) = per_switch.get(&a.raw()) {
                sa.push((time, *v));
            }
            if let Some(v) = per_switch.get(&b.raw()) {
                sb.push((time, *v));
            }
        }
        vec![(format!("{a}"), sa), (format!("{b}"), sb)]
    }

    /// Number of samples captured.
    pub fn sample_count(&self) -> usize {
        self.state.lock().samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_core::{AthenaConfig, FeatureIndex, FeatureRecord};

    fn switch_record(switch: u64, t: u64, packets: f64) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(switch)));
        r.meta.message_type = "SWITCH_STATE".into();
        r.meta.timestamp = SimTime::from_secs(t);
        r.push_field("SWITCH_PACKET_COUNT_TOTAL", packets);
        r
    }

    fn deployed() -> (Athena, NaeMonitor) {
        let athena = Athena::new(AthenaConfig::default());
        let monitor = NaeMonitor::new(NaeMonitorConfig::default());
        monitor.deploy(&athena);
        (athena, monitor)
    }

    #[test]
    fn balanced_traffic_satisfies_the_sla() {
        let (athena, monitor) = deployed();
        let mut fm = athena.runtime().feature_manager.lock();
        for t in 0..10 {
            fm.ingest(&switch_record(3, t, 1000.0)).unwrap();
            fm.ingest(&switch_record(6, t, 1100.0)).unwrap();
        }
        drop(fm);
        assert_eq!(monitor.sample_count(), 10);
        assert!(monitor.check_sla().is_empty());
    }

    #[test]
    fn takeover_trips_the_sla() {
        let (athena, monitor) = deployed();
        let mut fm = athena.runtime().feature_manager.lock();
        // Balanced until t=5, then the security app drains switch 3.
        for t in 0..5 {
            fm.ingest(&switch_record(3, t, 1000.0)).unwrap();
            fm.ingest(&switch_record(6, t, 900.0)).unwrap();
        }
        for t in 5..10 {
            fm.ingest(&switch_record(3, t, 50.0)).unwrap();
            fm.ingest(&switch_record(6, t, 2000.0)).unwrap();
        }
        drop(fm);
        let violations = monitor.check_sla();
        assert_eq!(violations.len(), 5);
        assert!(violations[0].at >= SimTime::from_secs(5));
        assert!(violations.iter().all(|v| v.imbalance > 0.9));
    }

    #[test]
    fn other_switches_are_ignored() {
        let (athena, monitor) = deployed();
        let mut fm = athena.runtime().feature_manager.lock();
        fm.ingest(&switch_record(1, 0, 5000.0)).unwrap();
        fm.ingest(&switch_record(9, 0, 1.0)).unwrap();
        drop(fm);
        assert_eq!(monitor.sample_count(), 0);
        assert!(monitor.check_sla().is_empty());
    }

    #[test]
    fn series_exposes_both_switches() {
        let (athena, monitor) = deployed();
        {
            let mut fm = athena.runtime().feature_manager.lock();
            for t in 0..3 {
                fm.ingest(&switch_record(3, t, f64::from(t as u32)))
                    .unwrap();
                fm.ingest(&switch_record(6, t, 10.0)).unwrap();
            }
        }
        let series = monitor.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.len(), 3);
        assert_eq!(series[1].1.len(), 3);
        // Renders without panicking.
        let text = athena.show_series("NAE packet counts", &series);
        assert!(text.contains("NAE packet counts"));
    }
}
