//! The Athena use-case applications of the paper's §V, plus the
//! non-Athena baseline implementations used by the usability comparison
//! (Table VIII).
//!
//! - [`DdosDetector`] — scenario 1: the large-scale DDoS attack detector
//!   (Application 1 pseudocode, Figure 6 output),
//! - [`LfaMitigator`] — scenario 2: link-flooding-attack detection and
//!   mitigation, the Spiffy comparison of Table VII,
//! - [`NaeMonitor`] — scenario 3: the Network Application Effectiveness
//!   monitor (Figures 8 and 9),
//! - [`ScanDetector`] — an extension demonstrating framework generality:
//!   the FRESCO-style port-scan detector the related work mentions, built
//!   purely from off-the-shelf features,
//! - [`sloc`] — the same DDoS detector written three ways (Athena NB API,
//!   raw compute-cluster "Spark style", and BSP "Hama style") for the
//!   source-lines-of-code comparison,
//! - [`dataset`] — the synthetic labeled DDoS dataset generator shared by
//!   the Figure 6 / Figure 10 / Table VIII experiments.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod dataset;
pub mod ddos;
pub mod lfa;
pub mod nae;
pub mod scan;
pub mod sloc;

pub use dataset::DdosDataset;
pub use ddos::{DdosDetector, DdosDetectorConfig};
pub use lfa::{LfaMitigator, LfaMitigatorConfig};
pub use nae::{NaeMonitor, NaeMonitorConfig, SlaViolation};
pub use scan::{ScanDetector, ScanDetectorConfig};
