//! The DDoS detector written directly against the compute cluster —
//! what a developer writes *without* Athena (the paper's Spark baseline,
//! 825/851 lines of Java).
//!
//! Everything Athena provides for free must be hand-rolled here: pair-flow
//! state tracking, the 10-tuple feature extraction, min-max statistics and
//! normalization, feature weighting, the distributed K-Means / logistic
//! training loops, cluster labeling, distributed validation, and the
//! report. The code is deliberately written the way such a pipeline
//! actually looks: explicit, stage by stage.
#![allow(clippy::needless_range_loop)] // the baseline is deliberately verbose

use super::{DetectorOutput, RawFlowSample};
use athena_compute::{ComputeCluster, Dataset};
use athena_ml::ConfusionMatrix;
use athena_types::FiveTuple;
use std::collections::HashSet;

/// Runs the K-Means variant.
pub fn run_kmeans(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, TrainMode::KMeans)
}

/// Runs the logistic-regression variant.
pub fn run_logistic(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, TrainMode::Logistic)
}

enum TrainMode {
    KMeans,
    Logistic,
}

const K: usize = 8;
const KMEANS_ITERATIONS: usize = 20;
const LOGISTIC_ITERATIONS: usize = 120;
const LOGISTIC_RATE: f64 = 0.5;
const PARTITIONS: usize = 16;
const DIM: usize = 10;
const WEIGHTS: [f64; DIM] = [2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

fn run(train: &[RawFlowSample], test: &[RawFlowSample], mode: TrainMode) -> DetectorOutput {
    let cluster = ComputeCluster::new(6);

    // >>> measured
    // ---------------------------------------------------------------
    // Stage 1. Load the raw flow samples into the cluster.
    // ---------------------------------------------------------------
    let train_rdd = cluster.parallelize(train.to_vec(), PARTITIONS);
    let test_rdd = cluster.parallelize(test.to_vec(), PARTITIONS);

    // ---------------------------------------------------------------
    // Stage 2. Build the pair-flow state: the set of live 5-tuples.
    // Athena's feature generator maintains this automatically; by hand
    // it is a distributed set union over every partition.
    // ---------------------------------------------------------------
    let train_tuples = collect_tuple_set(&train_rdd);
    let test_tuples = collect_tuple_set(&test_rdd);

    // ---------------------------------------------------------------
    // Stage 3. Extract the 10-tuple features for every sample.
    // ---------------------------------------------------------------
    let train_feats = extract_features(&train_rdd, &train_tuples);
    let test_feats = extract_features(&test_rdd, &test_tuples);

    // ---------------------------------------------------------------
    // Stage 4. Fit min-max statistics on the training set
    // (a distributed fold), then normalize and weight both sets.
    // ---------------------------------------------------------------
    let (lo, hi) = fit_min_max(&train_feats);
    let train_norm = normalize_and_weight(&train_feats, &lo, &hi);
    let test_norm = normalize_and_weight(&test_feats, &lo, &hi);

    // ---------------------------------------------------------------
    // Stage 5. Train.
    // ---------------------------------------------------------------
    let model = match mode {
        TrainMode::KMeans => {
            let centroids = kmeans_train(&train_norm);
            let flags = label_clusters(&train_norm, &centroids);
            Model::KMeans { centroids, flags }
        }
        TrainMode::Logistic => {
            let (weights, bias) = logistic_train(&train_norm);
            Model::Logistic { weights, bias }
        }
    };

    // ---------------------------------------------------------------
    // Stage 6. Validate on the test set (distributed confusion matrix
    // plus per-cluster composition) and build the report.
    // ---------------------------------------------------------------
    let output = validate(&test_norm, &model);
    let _report = format_report(&output);
    // <<< measured

    output
}

// >>> continued-implementation (support code the baseline developer also
// writes; the measured markers above capture the driver, and the helpers
// below are counted by the Table VIII harness as part of this file's
// implementation via the second measured region)
// >>> measured

/// A featurized sample: the 10-dimensional vector plus the ground-truth
/// label the evaluation needs.
#[derive(Clone)]
struct FeatureVector {
    values: [f64; DIM],
    malicious: bool,
}

enum Model {
    KMeans {
        centroids: Vec<[f64; DIM]>,
        flags: Vec<bool>,
    },
    Logistic {
        weights: [f64; DIM],
        bias: f64,
    },
}

/// Distributed set-union of every partition's 5-tuples.
fn collect_tuple_set(rdd: &Dataset<RawFlowSample>) -> HashSet<FiveTuple> {
    let partials = rdd.map_partitions(|part| {
        let mut set = HashSet::new();
        for s in part {
            set.insert(s.five_tuple);
        }
        vec![set]
    });
    let mut all = HashSet::new();
    for set in partials.collect() {
        all.extend(set);
    }
    all
}

/// Per-sample feature extraction, with the pair-flow state broadcast to
/// every partition.
fn extract_features(
    rdd: &Dataset<RawFlowSample>,
    tuples: &HashSet<FiveTuple>,
) -> Dataset<FeatureVector> {
    let pair_count = tuples
        .iter()
        .filter(|t| tuples.contains(&t.reversed()))
        .count();
    let pair_ratio = pair_count as f64 / tuples.len().max(1) as f64;
    let tuples = tuples.clone();
    rdd.map(move |s| {
        let duration = s.duration_us as f64 / 1e6;
        let packets = s.packet_count as f64;
        let bytes = s.byte_count as f64;
        let paired = tuples.contains(&s.five_tuple.reversed());
        FeatureVector {
            values: [
                f64::from(u8::from(paired)),
                pair_ratio,
                packets,
                bytes,
                bytes / packets.max(1.0),
                packets / duration.max(1e-9),
                bytes / duration.max(1e-9),
                duration.floor(),
                (duration.fract() * 1e9).floor(),
                f64::from(s.five_tuple.dst_port),
            ],
            malicious: s.malicious,
        }
    })
}

/// Distributed min/max per dimension.
fn fit_min_max(rdd: &Dataset<FeatureVector>) -> ([f64; DIM], [f64; DIM]) {
    let init = ([f64::INFINITY; DIM], [f64::NEG_INFINITY; DIM]);
    rdd.fold(
        init,
        |(mut lo, mut hi), v| {
            for d in 0..DIM {
                lo[d] = lo[d].min(v.values[d]);
                hi[d] = hi[d].max(v.values[d]);
            }
            (lo, hi)
        },
        |(mut alo, mut ahi), (blo, bhi)| {
            for d in 0..DIM {
                alo[d] = alo[d].min(blo[d]);
                ahi[d] = ahi[d].max(bhi[d]);
            }
            (alo, ahi)
        },
    )
}

/// Min-max normalization followed by the feature weights.
fn normalize_and_weight(
    rdd: &Dataset<FeatureVector>,
    lo: &[f64; DIM],
    hi: &[f64; DIM],
) -> Dataset<FeatureVector> {
    let (lo, hi) = (*lo, *hi);
    rdd.map(move |v| {
        let mut out = v.values;
        for d in 0..DIM {
            let range = hi[d] - lo[d];
            out[d] = if range.abs() < 1e-12 {
                0.0
            } else {
                ((out[d] - lo[d]) / range).clamp(0.0, 1.0)
            };
            out[d] *= WEIGHTS[d];
        }
        FeatureVector {
            values: out,
            malicious: v.malicious,
        }
    })
}

fn squared_distance(a: &[f64; DIM], b: &[f64; DIM]) -> f64 {
    let mut acc = 0.0;
    for d in 0..DIM {
        let diff = a[d] - b[d];
        acc += diff * diff;
    }
    acc
}

fn nearest(centroids: &[[f64; DIM]], x: &[f64; DIM]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(c, x);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Lloyd iterations with per-partition (sum, count) aggregation — the
/// classic Spark K-Means shape, written out by hand.
fn kmeans_train(rdd: &Dataset<FeatureVector>) -> Vec<[f64; DIM]> {
    // Deterministic seeding: spread the initial centroids over the first
    // samples of the dataset (k-means|| is overkill to hand-roll here,
    // which is itself part of the usability point).
    let seeds: Vec<FeatureVector> = rdd.sample(0.001).collect();
    let mut centroids: Vec<[f64; DIM]> = Vec::with_capacity(K);
    for s in seeds.iter().take(K) {
        centroids.push(s.values);
    }
    while centroids.len() < K {
        let mut jittered = centroids[centroids.len() % seeds.len().max(1)];
        jittered[2] += centroids.len() as f64 * 0.01;
        centroids.push(jittered);
    }
    for _ in 0..KMEANS_ITERATIONS {
        let snapshot = centroids.clone();
        let partials = rdd.map_partitions(move |part| {
            let mut sums = vec![[0.0f64; DIM]; K];
            let mut counts = vec![0u64; K];
            for v in part {
                let c = nearest(&snapshot, &v.values);
                for d in 0..DIM {
                    sums[c][d] += v.values[d];
                }
                counts[c] += 1;
            }
            vec![(sums, counts)]
        });
        let mut sums = vec![[0.0f64; DIM]; K];
        let mut counts = [0u64; K];
        for (ps, pc) in partials.collect() {
            for c in 0..K {
                for d in 0..DIM {
                    sums[c][d] += ps[c][d];
                }
                counts[c] += pc[c];
            }
        }
        let mut movement = 0.0;
        for c in 0..K {
            if counts[c] == 0 {
                continue;
            }
            let mut new = [0.0f64; DIM];
            for d in 0..DIM {
                new[d] = sums[c][d] / counts[c] as f64;
            }
            movement += squared_distance(&centroids[c], &new).sqrt();
            centroids[c] = new;
        }
        if movement < 1e-4 {
            break;
        }
    }
    centroids
}

/// Names each cluster malicious/benign by the majority label of its
/// members — what Athena's Detector Manager auto-configures.
fn label_clusters(rdd: &Dataset<FeatureVector>, centroids: &[[f64; DIM]]) -> Vec<bool> {
    let snapshot = centroids.to_vec();
    let partials = rdd.map_partitions(move |part| {
        let mut counts = vec![(0u64, 0u64); K];
        for v in part {
            let c = nearest(&snapshot, &v.values);
            if v.malicious {
                counts[c].1 += 1;
            } else {
                counts[c].0 += 1;
            }
        }
        vec![counts]
    });
    let mut totals = [(0u64, 0u64); K];
    for pc in partials.collect() {
        for c in 0..K {
            totals[c].0 += pc[c].0;
            totals[c].1 += pc[c].1;
        }
    }
    totals.iter().map(|(b, m)| m > b).collect()
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Full-batch logistic regression with per-partition gradients.
fn logistic_train(rdd: &Dataset<FeatureVector>) -> ([f64; DIM], f64) {
    let mut weights = [0.0f64; DIM];
    let mut bias = 0.0f64;
    let n = rdd.len() as f64;
    for _ in 0..LOGISTIC_ITERATIONS {
        let (w, b) = (weights, bias);
        let partials = rdd.map_partitions(move |part| {
            let mut gw = [0.0f64; DIM];
            let mut gb = 0.0f64;
            for v in part {
                let mut z = b;
                for d in 0..DIM {
                    z += w[d] * v.values[d];
                }
                let err = sigmoid(z) - f64::from(u8::from(v.malicious));
                for d in 0..DIM {
                    gw[d] += err * v.values[d];
                }
                gb += err;
            }
            vec![(gw, gb)]
        });
        let mut grad_w = [0.0f64; DIM];
        let mut grad_b = 0.0f64;
        for (gw, gb) in partials.collect() {
            for d in 0..DIM {
                grad_w[d] += gw[d] / n;
            }
            grad_b += gb / n;
        }
        for d in 0..DIM {
            weights[d] -= LOGISTIC_RATE * grad_w[d];
        }
        bias -= LOGISTIC_RATE * grad_b;
    }
    (weights, bias)
}

/// Distributed validation: per-partition confusion matrices and cluster
/// compositions, merged on the driver.
fn validate(rdd: &Dataset<FeatureVector>, model: &Model) -> DetectorOutput {
    match model {
        Model::KMeans { centroids, flags } => {
            let (snapshot, flags_snapshot) = (centroids.clone(), flags.clone());
            let partials = rdd.map_partitions(move |part| {
                let mut confusion = ConfusionMatrix::default();
                let mut clusters = vec![(0u64, 0u64, false); K];
                for v in part {
                    let c = nearest(&snapshot, &v.values);
                    let predicted = flags_snapshot[c];
                    confusion.record(v.malicious, predicted);
                    if v.malicious {
                        clusters[c].1 += 1;
                    } else {
                        clusters[c].0 += 1;
                    }
                    clusters[c].2 = predicted;
                }
                vec![(confusion, clusters)]
            });
            merge_validation(partials.collect())
        }
        Model::Logistic { weights, bias } => {
            let (w, b) = (*weights, *bias);
            let partials = rdd.map_partitions(move |part| {
                let mut confusion = ConfusionMatrix::default();
                for v in part {
                    let mut z = b;
                    for d in 0..DIM {
                        z += w[d] * v.values[d];
                    }
                    confusion.record(v.malicious, sigmoid(z) >= 0.5);
                }
                vec![(confusion, Vec::new())]
            });
            merge_validation(partials.collect())
        }
    }
}

type ValidationPartial = (ConfusionMatrix, Vec<(u64, u64, bool)>);

fn merge_validation(partials: Vec<ValidationPartial>) -> DetectorOutput {
    let mut confusion = ConfusionMatrix::default();
    let mut clusters: Vec<(u64, u64, bool)> = Vec::new();
    for (partial, pc) in partials {
        confusion.merge(&partial);
        if clusters.len() < pc.len() {
            clusters.resize(pc.len(), (0, 0, false));
        }
        for (slot, (b, m, f)) in clusters.iter_mut().zip(pc) {
            slot.0 += b;
            slot.1 += m;
            slot.2 |= f;
        }
    }
    DetectorOutput {
        confusion,
        clusters,
    }
}

/// Builds the operator-facing report by hand.
fn format_report(out: &DetectorOutput) -> String {
    let c = &out.confusion;
    let mut report = String::new();
    report.push_str(&format!("Total : {} entries\n", c.total()));
    report.push_str(&format!("True Positive : {} entries\n", c.true_positive));
    report.push_str(&format!("False Positive : {} entries\n", c.false_positive));
    report.push_str(&format!("True Negative : {} entries\n", c.true_negative));
    report.push_str(&format!("False Negative : {} entries\n", c.false_negative));
    report.push_str(&format!("Detection Rate : {}\n", c.detection_rate()));
    report.push_str(&format!("False Alarm Rate: {}\n", c.false_alarm_rate()));
    for (i, (b, m, flagged)) in out.clusters.iter().enumerate() {
        report.push_str(&format!(
            "Cluster #{i}: Benign ({b} entries), Malicious ({m} entries){}\n",
            if *flagged { " [flagged]" } else { "" }
        ));
    }
    report
}
// <<< measured
