//! The DDoS detector written on a bulk-synchronous-parallel harness —
//! what a developer writes on Apache Hama (the paper's BSP baseline,
//! 817/829 lines of Java).
//!
//! Hama gives you peers, supersteps, and message passing; everything else
//! — the master/worker coordination protocol, centroid broadcast,
//! aggregation messages, convergence detection, feature extraction,
//! normalization, validation — is the application's problem. The BSP
//! harness itself is written in this file too, mirroring the boilerplate
//! a Hama job carries.
#![allow(clippy::needless_range_loop)] // the BSP baseline is deliberately verbose

use super::{DetectorOutput, RawFlowSample};
use athena_ml::ConfusionMatrix;
use athena_types::FiveTuple;
use std::collections::HashSet;

/// Runs the K-Means variant.
pub fn run_kmeans(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, Mode::KMeans)
}

/// Runs the logistic-regression variant.
pub fn run_logistic(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, Mode::Logistic)
}

enum Mode {
    KMeans,
    Logistic,
}

const PEERS: usize = 6;
const K: usize = 8;
const DIM: usize = 10;
const KMEANS_ITERATIONS: usize = 20;
const LOGISTIC_ITERATIONS: usize = 120;
const LOGISTIC_RATE: f64 = 0.5;
const WEIGHTS: [f64; DIM] = [2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
const MASTER: usize = 0;

// >>> measured
// -------------------------------------------------------------------
// The BSP harness: peers exchange messages between supersteps; the
// barrier is implicit in the superstep loop (everything a Hama
// `BSP<K1,V1,K2,V2,M>` job provides, reimplemented).
// -------------------------------------------------------------------

/// One message between peers.
#[derive(Clone)]
enum Message {
    /// Master -> workers: the current centroids.
    Centroids(Vec<[f64; DIM]>),
    /// Worker -> master: per-cluster (sum, count) aggregates.
    Aggregates(Vec<([f64; DIM], u64)>),
    /// Master -> workers: the current logistic parameters.
    LogisticParams([f64; DIM], f64),
    /// Worker -> master: a partial gradient (weights, bias, count).
    Gradient([f64; DIM], f64, u64),
    /// Master -> everyone: the job is done.
    Halt,
}

/// A peer's mailbox for the next superstep.
struct Mailboxes {
    boxes: Vec<Vec<Message>>,
}

impl Mailboxes {
    fn new(peers: usize) -> Self {
        Mailboxes {
            boxes: (0..peers).map(|_| Vec::new()).collect(),
        }
    }

    fn send(&mut self, to: usize, msg: Message) {
        self.boxes[to].push(msg);
    }

    fn broadcast(&mut self, msg: &Message) {
        for b in &mut self.boxes {
            b.push(msg.clone());
        }
    }

    fn take(&mut self, peer: usize) -> Vec<Message> {
        std::mem::take(&mut self.boxes[peer])
    }
}

/// The per-peer state: its data shard and the model replicas.
struct PeerState {
    shard: Vec<FeatureVec>,
    centroids: Vec<[f64; DIM]>,
    weights: [f64; DIM],
    bias: f64,
    lo: [f64; DIM],
    hi: [f64; DIM],
    halted: bool,
}

#[derive(Clone)]
struct FeatureVec {
    values: [f64; DIM],
    malicious: bool,
}

/// Runs supersteps until every peer halts. Each superstep: every peer
/// reads its inbox, updates state, and posts messages for the next
/// superstep (the barrier).
fn run_supersteps(
    states: &mut [PeerState],
    mut superstep: impl FnMut(usize, &mut PeerState, Vec<Message>, &mut Mailboxes, usize),
) {
    let peers = states.len();
    let mut current = Mailboxes::new(peers);
    let mut step = 0usize;
    loop {
        let mut next = Mailboxes::new(peers);
        for (id, state) in states.iter_mut().enumerate() {
            let inbox = current.take(id);
            superstep(id, state, inbox, &mut next, step);
        }
        current = next;
        step += 1;
        if states.iter().all(|s| s.halted) {
            break;
        }
        assert!(step < 10_000, "bsp job failed to converge");
    }
}

// -------------------------------------------------------------------
// Feature extraction (identical math to the other baselines, written
// against plain slices because BSP shards are local vectors).
// -------------------------------------------------------------------

fn extract_features(samples: &[RawFlowSample]) -> Vec<FeatureVec> {
    let tuples: HashSet<FiveTuple> = samples.iter().map(|s| s.five_tuple).collect();
    let pair_count = tuples
        .iter()
        .filter(|t| tuples.contains(&t.reversed()))
        .count();
    let pair_ratio = pair_count as f64 / tuples.len().max(1) as f64;
    samples
        .iter()
        .map(|s| {
            let duration = s.duration_us as f64 / 1e6;
            let packets = s.packet_count as f64;
            let bytes = s.byte_count as f64;
            let paired = tuples.contains(&s.five_tuple.reversed());
            FeatureVec {
                values: [
                    f64::from(u8::from(paired)),
                    pair_ratio,
                    packets,
                    bytes,
                    bytes / packets.max(1.0),
                    packets / duration.max(1e-9),
                    bytes / duration.max(1e-9),
                    duration.floor(),
                    (duration.fract() * 1e9).floor(),
                    f64::from(s.five_tuple.dst_port),
                ],
                malicious: s.malicious,
            }
        })
        .collect()
}

fn shard<T: Clone>(data: &[T], peers: usize) -> Vec<Vec<T>> {
    let mut shards: Vec<Vec<T>> = (0..peers).map(|_| Vec::new()).collect();
    for (i, item) in data.iter().enumerate() {
        shards[i % peers].push(item.clone());
    }
    shards
}

fn squared_distance(a: &[f64; DIM], b: &[f64; DIM]) -> f64 {
    let mut acc = 0.0;
    for d in 0..DIM {
        let diff = a[d] - b[d];
        acc += diff * diff;
    }
    acc
}

fn nearest(centroids: &[[f64; DIM]], x: &[f64; DIM]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(c, x);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

fn apply_normalization(shards: &mut [PeerState]) {
    // Phase 1 of every job: min/max via one aggregate/broadcast round,
    // then each peer rescales and weights its shard locally.
    for state in shards.iter_mut() {
        let mut lo = [f64::INFINITY; DIM];
        let mut hi = [f64::NEG_INFINITY; DIM];
        for v in &state.shard {
            for d in 0..DIM {
                lo[d] = lo[d].min(v.values[d]);
                hi[d] = hi[d].max(v.values[d]);
            }
        }
        state.lo = lo;
        state.hi = hi;
    }
    let mut lo = [f64::INFINITY; DIM];
    let mut hi = [f64::NEG_INFINITY; DIM];
    for state in shards.iter() {
        for d in 0..DIM {
            lo[d] = lo[d].min(state.lo[d]);
            hi[d] = hi[d].max(state.hi[d]);
        }
    }
    for state in shards.iter_mut() {
        state.lo = lo;
        state.hi = hi;
        for v in &mut state.shard {
            for d in 0..DIM {
                let range = hi[d] - lo[d];
                v.values[d] = if range.abs() < 1e-12 {
                    0.0
                } else {
                    ((v.values[d] - lo[d]) / range).clamp(0.0, 1.0)
                };
                v.values[d] *= WEIGHTS[d];
            }
        }
    }
}

fn initial_states(samples: &[RawFlowSample]) -> Vec<PeerState> {
    let features = extract_features(samples);
    shard(&features, PEERS)
        .into_iter()
        .map(|shard| PeerState {
            shard,
            centroids: Vec::new(),
            weights: [0.0; DIM],
            bias: 0.0,
            lo: [0.0; DIM],
            hi: [0.0; DIM],
            halted: false,
        })
        .collect()
}

fn seed_centroids(states: &[PeerState]) -> Vec<[f64; DIM]> {
    let mut centroids = Vec::with_capacity(K);
    'outer: for state in states {
        for v in state.shard.iter().step_by(97) {
            centroids.push(v.values);
            if centroids.len() == K {
                break 'outer;
            }
        }
    }
    while centroids.len() < K {
        let mut jittered = centroids[centroids.len() % centroids.len().max(1)];
        jittered[2] += centroids.len() as f64 * 0.01;
        centroids.push(jittered);
    }
    centroids
}

// -------------------------------------------------------------------
// The K-Means BSP job: master coordinates Lloyd rounds; each round is
// two supersteps (broadcast, aggregate).
// -------------------------------------------------------------------

fn kmeans_job(train: &mut [PeerState]) -> (Vec<[f64; DIM]>, Vec<bool>) {
    apply_normalization(train);
    let initial = seed_centroids(train);
    for s in train.iter_mut() {
        s.centroids = initial.clone();
    }
    let mut rounds = 0usize;
    let mut pending: Vec<Vec<([f64; DIM], u64)>> = Vec::new();
    run_supersteps(train, |id, state, inbox, next, step| {
        if step == 0 {
            if id == MASTER {
                next.broadcast(&Message::Centroids(state.centroids.clone()));
            }
            return;
        }
        for msg in inbox {
            match msg {
                Message::Centroids(c) => {
                    // Assignment phase: send aggregates to the master.
                    state.centroids = c;
                    let mut agg: Vec<([f64; DIM], u64)> = vec![([0.0; DIM], 0); K];
                    for v in &state.shard {
                        let cidx = nearest(&state.centroids, &v.values);
                        for d in 0..DIM {
                            agg[cidx].0[d] += v.values[d];
                        }
                        agg[cidx].1 += 1;
                    }
                    next.send(MASTER, Message::Aggregates(agg));
                }
                Message::Aggregates(agg) => pending.push(agg),
                Message::Halt => state.halted = true,
                _ => {}
            }
        }
        if id == MASTER && pending.len() >= PEERS {
            // A full round's aggregates arrived: merge, update, and
            // rebroadcast (or halt).
            let mut sums = vec![[0.0f64; DIM]; K];
            let mut counts = [0u64; K];
            for agg in pending.drain(..) {
                for (c, (sum, count)) in agg.into_iter().enumerate() {
                    for d in 0..DIM {
                        sums[c][d] += sum[d];
                    }
                    counts[c] += count;
                }
            }
            for c in 0..K {
                if counts[c] == 0 {
                    continue;
                }
                for d in 0..DIM {
                    state.centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
            rounds += 1;
            if rounds >= KMEANS_ITERATIONS {
                next.broadcast(&Message::Halt);
                state.halted = true;
            } else {
                next.broadcast(&Message::Centroids(state.centroids.clone()));
            }
        }
    });
    let centroids = train[MASTER].centroids.clone();
    // Labeling pass: count labels per cluster across shards.
    let mut counts = [(0u64, 0u64); K];
    for state in train.iter() {
        for v in &state.shard {
            let c = nearest(&centroids, &v.values);
            if v.malicious {
                counts[c].1 += 1;
            } else {
                counts[c].0 += 1;
            }
        }
    }
    let flags = counts.iter().map(|(b, m)| m > b).collect();
    (centroids, flags)
}

// -------------------------------------------------------------------
// The logistic BSP job.
// -------------------------------------------------------------------

fn logistic_job(train: &mut [PeerState]) -> ([f64; DIM], f64) {
    apply_normalization(train);
    let total: u64 = train.iter().map(|s| s.shard.len() as u64).sum();
    let mut iterations = 0usize;
    let mut pending: Vec<([f64; DIM], f64, u64)> = Vec::new();
    run_supersteps(train, |id, state, inbox, next, step| {
        if step == 0 {
            if id == MASTER {
                next.broadcast(&Message::LogisticParams(state.weights, state.bias));
            }
            return;
        }
        for msg in inbox {
            match msg {
                Message::LogisticParams(w, b) => {
                    state.weights = w;
                    state.bias = b;
                    let mut gw = [0.0f64; DIM];
                    let mut gb = 0.0f64;
                    for v in &state.shard {
                        let mut z = b;
                        for d in 0..DIM {
                            z += w[d] * v.values[d];
                        }
                        let err = sigmoid(z) - f64::from(u8::from(v.malicious));
                        for d in 0..DIM {
                            gw[d] += err * v.values[d];
                        }
                        gb += err;
                    }
                    next.send(MASTER, Message::Gradient(gw, gb, state.shard.len() as u64));
                }
                Message::Gradient(gw, gb, n) => pending.push((gw, gb, n)),
                Message::Halt => state.halted = true,
                _ => {}
            }
        }
        if id == MASTER && !pending.is_empty() && pending.len() >= PEERS {
            let mut grad_w = [0.0f64; DIM];
            let mut grad_b = 0.0f64;
            for (gw, gb, _) in pending.drain(..) {
                for d in 0..DIM {
                    grad_w[d] += gw[d] / total as f64;
                }
                grad_b += gb / total as f64;
            }
            for d in 0..DIM {
                state.weights[d] -= LOGISTIC_RATE * grad_w[d];
            }
            state.bias -= LOGISTIC_RATE * grad_b;
            iterations += 1;
            if iterations >= LOGISTIC_ITERATIONS {
                next.broadcast(&Message::Halt);
                state.halted = true;
            } else {
                next.broadcast(&Message::LogisticParams(state.weights, state.bias));
            }
        }
    });
    (train[MASTER].weights, train[MASTER].bias)
}

// -------------------------------------------------------------------
// Validation over sharded test data.
// -------------------------------------------------------------------

fn validate_kmeans(test: &[PeerState], centroids: &[[f64; DIM]], flags: &[bool]) -> DetectorOutput {
    let mut confusion = ConfusionMatrix::default();
    let mut clusters = vec![(0u64, 0u64, false); K];
    for state in test {
        for v in &state.shard {
            let c = nearest(centroids, &v.values);
            let predicted = flags[c];
            confusion.record(v.malicious, predicted);
            if v.malicious {
                clusters[c].1 += 1;
            } else {
                clusters[c].0 += 1;
            }
            clusters[c].2 = predicted;
        }
    }
    DetectorOutput {
        confusion,
        clusters,
    }
}

fn validate_logistic(test: &[PeerState], weights: &[f64; DIM], bias: f64) -> DetectorOutput {
    let mut confusion = ConfusionMatrix::default();
    for state in test {
        for v in &state.shard {
            let mut z = bias;
            for d in 0..DIM {
                z += weights[d] * v.values[d];
            }
            confusion.record(v.malicious, sigmoid(z) >= 0.5);
        }
    }
    DetectorOutput {
        confusion,
        clusters: Vec::new(),
    }
}

fn run(train: &[RawFlowSample], test: &[RawFlowSample], mode: Mode) -> DetectorOutput {
    let mut train_states = initial_states(train);
    let mut test_states = initial_states(test);
    match mode {
        Mode::KMeans => {
            let (centroids, flags) = kmeans_job(&mut train_states);
            // The test shards must be normalized with the training stats.
            for s in &mut test_states {
                s.lo = train_states[MASTER].lo;
                s.hi = train_states[MASTER].hi;
            }
            normalize_with(
                &mut test_states,
                train_states[MASTER].lo,
                train_states[MASTER].hi,
            );
            validate_kmeans(&test_states, &centroids, &flags)
        }
        Mode::Logistic => {
            let (weights, bias) = logistic_job(&mut train_states);
            normalize_with(
                &mut test_states,
                train_states[MASTER].lo,
                train_states[MASTER].hi,
            );
            validate_logistic(&test_states, &weights, bias)
        }
    }
}

fn normalize_with(states: &mut [PeerState], lo: [f64; DIM], hi: [f64; DIM]) {
    for state in states {
        for v in &mut state.shard {
            for d in 0..DIM {
                let range = hi[d] - lo[d];
                v.values[d] = if range.abs() < 1e-12 {
                    0.0
                } else {
                    ((v.values[d] - lo[d]) / range).clamp(0.0, 1.0)
                };
                v.values[d] *= WEIGHTS[d];
            }
        }
    }
}
// <<< measured
