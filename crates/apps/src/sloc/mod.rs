//! The usability comparison of the paper's Table VIII: the same DDoS
//! detector implemented three ways.
//!
//! - [`ddos_athena`] — against the Athena NB API (the paper: 45 lines for
//!   K-Means, 42 for logistic regression),
//! - [`ddos_spark`] — directly against the compute cluster with
//!   hand-rolled feature extraction, preprocessing, distributed training,
//!   and reporting (the paper: 825/851 lines of Spark code),
//! - [`ddos_bsp`] — on a bulk-synchronous-parallel harness written in the
//!   file itself (the paper: 817/829 lines of Hama code).
//!
//! Each file brackets its application code with `// >>> measured` /
//! `// <<< measured` markers; [`measured_sloc`] counts the non-empty,
//! non-comment lines between them, which is what the Table VIII harness
//! reports. All three implementations are *real* (tested for agreement on
//! the same dataset), so the comparison measures genuine development
//! effort, not stubs.

pub mod ddos_athena;
pub mod ddos_bsp;
pub mod ddos_spark;

use athena_ml::ConfusionMatrix;
use athena_types::{FiveTuple, Ipv4Addr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A raw flow-statistics sample — what a developer without Athena starts
/// from (per-flow counters scraped off the switches), with ground truth
/// attached for evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawFlowSample {
    /// The reporting switch.
    pub switch: u64,
    /// The flow's 5-tuple.
    pub five_tuple: FiveTuple,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Flow lifetime in microseconds.
    pub duration_us: u64,
    /// Ground truth: attack traffic?
    pub malicious: bool,
}

/// What every implementation must produce: the detection quality plus the
/// per-cluster composition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectorOutput {
    /// The confusion matrix over all test entries.
    pub confusion: ConfusionMatrix,
    /// Per-cluster `(benign, malicious, flagged)` (clustering algorithms
    /// only).
    pub clusters: Vec<(u64, u64, bool)>,
}

/// Generates raw flow samples with the Figure 6 traffic profile: benign
/// web/FTP-style paired flows and flood-style unidirectional bursts.
pub fn generate_raw_samples(total: usize, seed: u64) -> Vec<RawFlowSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let victim = Ipv4Addr::new(10, 1, 0, 1);
    let mut out = Vec::with_capacity(total);
    let mut i = 0u32;
    while out.len() < total {
        i += 1;
        let malicious = rng.random_range(0.0..1.0) > 0.25;
        if malicious {
            let ft = FiveTuple::udp(
                Ipv4Addr::from_raw(0x0a00_0000 + (i % 997)),
                1024 + (i % 50_000) as u16,
                victim,
                (1 + i % 1023) as u16,
            );
            let duration = rng.random_range(500_000u64..5_000_000);
            let pps = rng.random_range(500.0..5000.0);
            let packets = (pps * duration as f64 / 1e6) as u64;
            out.push(RawFlowSample {
                switch: u64::from(i % 18) + 1,
                five_tuple: ft,
                packet_count: packets.max(1),
                byte_count: packets.max(1) * rng.random_range(64..128),
                duration_us: duration,
                malicious: true,
            });
        } else {
            let ft = FiveTuple::tcp(
                Ipv4Addr::from_raw(0x0a00_8000 + (i % 251)),
                32_768 + (i % 20_000) as u16,
                Ipv4Addr::from_raw(0x0a00_9000 + (i % 13)),
                [80u16, 443, 21, 53, 25][(i % 5) as usize],
            );
            let duration = rng.random_range(4_000_000u64..30_000_000);
            let pps = rng.random_range(5.0..120.0);
            let packets = (pps * duration as f64 / 1e6) as u64;
            let sample = RawFlowSample {
                switch: u64::from(i % 18) + 1,
                five_tuple: ft,
                packet_count: packets.max(1),
                byte_count: packets.max(1) * rng.random_range(400..1500),
                duration_us: duration,
                malicious: false,
            };
            out.push(sample);
            // The reverse direction exists for paired benign flows.
            if out.len() < total {
                out.push(RawFlowSample {
                    five_tuple: ft.reversed(),
                    byte_count: sample.byte_count / 10,
                    packet_count: (sample.packet_count / 5).max(1),
                    ..sample
                });
            }
        }
    }
    out
}

/// Counts the source lines between the `// >>> measured` and
/// `// <<< measured` markers, excluding blank lines and pure comments —
/// the SLoC metric of Table VIII.
pub fn measured_sloc(source: &str) -> usize {
    let mut counting = false;
    let mut n = 0;
    for line in source.lines() {
        let t = line.trim();
        if t.contains(">>> measured") {
            counting = true;
            continue;
        }
        if t.contains("<<< measured") {
            counting = false;
            continue;
        }
        if counting && !t.is_empty() && !t.starts_with("//") && !t.starts_with("///") {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_samples_profile() {
        let samples = generate_raw_samples(5_000, 1);
        assert_eq!(samples.len(), 5_000);
        // ~75 % of draws are malicious, but each benign draw emits a
        // forward and a reverse entry, landing near 0.75/1.25 = 0.6.
        let malicious = samples.iter().filter(|s| s.malicious).count() as f64;
        let frac = malicious / 5_000.0;
        assert!(frac > 0.5 && frac < 0.75, "malicious fraction {frac}");
        // Benign flows come in pairs; attack flows do not.
        let tuples: std::collections::HashSet<FiveTuple> =
            samples.iter().map(|s| s.five_tuple).collect();
        let paired_benign = samples
            .iter()
            .filter(|s| !s.malicious && tuples.contains(&s.five_tuple.reversed()))
            .count();
        let benign_total = samples.iter().filter(|s| !s.malicious).count();
        assert!(paired_benign * 10 > benign_total * 8, "most benign paired");
    }

    #[test]
    fn sloc_counter_honours_markers_and_comments() {
        let src = "\
setup line (not counted)
// >>> measured
let a = 1;

// a comment
let b = 2; // trailing comments still count the line
// <<< measured
let after = 3;
";
        assert_eq!(measured_sloc(src), 2);
        assert_eq!(measured_sloc("no markers at all"), 0);
    }

    #[test]
    fn all_three_implementations_agree_on_quality() {
        let samples = generate_raw_samples(12_000, 42);
        let (train, test) = samples.split_at(6_000);

        let athena_out = ddos_athena::run_kmeans(train, test);
        let spark_out = ddos_spark::run_kmeans(train, test);
        let bsp_out = ddos_bsp::run_kmeans(train, test);

        for (name, out) in [
            ("athena", &athena_out),
            ("spark", &spark_out),
            ("bsp", &bsp_out),
        ] {
            let dr = out.confusion.detection_rate();
            let far = out.confusion.false_alarm_rate();
            assert!(dr > 0.9, "{name} detection rate {dr}");
            assert!(far < 0.15, "{name} false alarm rate {far}");
            assert_eq!(out.confusion.total(), 6_000, "{name}");
        }
    }

    #[test]
    fn logistic_variants_agree_too() {
        let samples = generate_raw_samples(8_000, 7);
        let (train, test) = samples.split_at(4_000);
        for (name, out) in [
            ("athena", ddos_athena::run_logistic(train, test)),
            ("spark", ddos_spark::run_logistic(train, test)),
            ("bsp", ddos_bsp::run_logistic(train, test)),
        ] {
            let dr = out.confusion.detection_rate();
            assert!(dr > 0.9, "{name} detection rate {dr}");
        }
    }

    #[test]
    fn athena_is_dramatically_smaller() {
        let athena = measured_sloc(include_str!("ddos_athena.rs"));
        let spark = measured_sloc(include_str!("ddos_spark.rs"));
        let bsp = measured_sloc(include_str!("ddos_bsp.rs"));
        assert!(athena > 0 && spark > 0 && bsp > 0);
        // The paper reports Athena at ~5% of the baselines; we assert the
        // order-of-magnitude relationship.
        assert!(athena * 5 < spark, "athena {athena} vs spark {spark}");
        assert!(athena * 5 < bsp, "athena {athena} vs bsp {bsp}");
    }
}
