//! The DDoS detector written against the Athena NB API — the paper's
//! Application 1 pseudocode, measured for Table VIII.
//!
//! The setup code (standing up an Athena deployment and feeding it the
//! raw samples, which the real framework does automatically at the SB)
//! lives outside the measured markers; the application itself — queries,
//! preprocessor, algorithm, model generation, validation — is what the
//! developer writes.

use super::{DetectorOutput, RawFlowSample};
use athena_core::{Athena, AthenaConfig, FeatureIndex, FeatureRecord, QueryBuilder};
use athena_ml::{Algorithm, Normalization, Preprocessor};
use athena_types::Dpid;
use std::collections::HashSet;

/// Runs the K-Means variant.
pub fn run_kmeans(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, Algorithm::kmeans(8))
}

/// Runs the logistic-regression variant.
pub fn run_logistic(train: &[RawFlowSample], test: &[RawFlowSample]) -> DetectorOutput {
    run(train, test, Algorithm::logistic_regression())
}

fn run(train: &[RawFlowSample], test: &[RawFlowSample], algorithm: Algorithm) -> DetectorOutput {
    // Setup (unmeasured): Athena collects features automatically; here we
    // replay the raw samples into the deployment's feature store tagged
    // by phase so train/test queries can select them.
    let athena = Athena::new(AthenaConfig::default());
    ingest(&athena, train, "train");
    ingest(&athena, test, "test");

    // >>> measured
    let features: Vec<String> = crate::dataset::FEATURES
        .iter()
        .map(|s| s.to_string())
        .collect();
    /* Define the features to be trained */
    let mut q_train = QueryBuilder::new()
        .eq("message_type", "FLOW_STATS")
        .eq("phase", "train")
        .build();
    q_train.features = features.clone();
    /* Define data pre-processing: normalization plus feature weights */
    let f = Preprocessor::new()
        .normalize(Normalization::MinMax)
        .weight(vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
    /* Marking malicious entries: ground truth from the labeled dataset */
    let truth = |r: &FeatureRecord| r.field("truth").unwrap_or(0.0) >= 0.5;
    /* Generate a detection model with the configured algorithm */
    let m = athena
        .generate_detection_model(&q_train, &f, &algorithm, truth)
        .expect("model generation");
    /* Define the features to be tested */
    let mut q_test = QueryBuilder::new()
        .eq("message_type", "FLOW_STATS")
        .eq("phase", "test")
        .build();
    q_test.features = features;
    /* Test the features */
    let summary = athena.validate_features(&q_test, &m, truth);
    /* Show results with the CLI interface */
    let _report = athena.show_results(&summary);
    // <<< measured

    DetectorOutput {
        confusion: summary.confusion,
        clusters: summary
            .clusters
            .iter()
            .map(|c| (c.benign, c.malicious, c.flagged_malicious))
            .collect(),
    }
}

/// Replays raw samples as FLOW_STATS feature records (what the Athena SB
/// generates on a live deployment), tagging each with the phase and its
/// ground-truth label.
fn ingest(athena: &Athena, samples: &[RawFlowSample], phase: &str) {
    let tuples: HashSet<athena_types::FiveTuple> = samples.iter().map(|s| s.five_tuple).collect();
    let pair_total = tuples
        .iter()
        .filter(|t| tuples.contains(&t.reversed()))
        .count();
    let pair_ratio = pair_total as f64 / tuples.len().max(1) as f64;
    let mut fm = athena.runtime().feature_manager.lock();
    for s in samples {
        let dur = s.duration_us as f64 / 1e6;
        let paired = tuples.contains(&s.five_tuple.reversed());
        let mut r = FeatureRecord::new(FeatureIndex::flow(Dpid::new(s.switch), s.five_tuple));
        r.meta.message_type = "FLOW_STATS".into();
        r.push_field("PAIR_FLOW", f64::from(u8::from(paired)));
        r.push_field("PAIR_FLOW_RATIO", pair_ratio);
        r.push_field("FLOW_PACKET_COUNT", s.packet_count as f64);
        r.push_field("FLOW_BYTE_COUNT", s.byte_count as f64);
        r.push_field(
            "FLOW_BYTE_PER_PACKET",
            s.byte_count as f64 / s.packet_count.max(1) as f64,
        );
        r.push_field("FLOW_PACKET_PER_DURATION", s.packet_count as f64 / dur);
        r.push_field("FLOW_BYTE_PER_DURATION", s.byte_count as f64 / dur);
        r.push_field("FLOW_DURATION_SEC", dur.floor());
        r.push_field("FLOW_DURATION_NSEC", (dur.fract() * 1e9).floor());
        r.push_field("FLOW_TP_DST", f64::from(s.five_tuple.dst_port));
        r.push_field("truth", f64::from(u8::from(s.malicious)));
        // The phase tag rides in the stored document as a plain field so
        // the train/test queries can select on it.
        let mut doc = r.to_document();
        doc.set("phase", phase);
        let _ = fm.ingest_document(doc);
    }
}
