//! Extension application: a port-scan detector.
//!
//! The paper's related work credits FRESCO-style libraries with
//! facilitating "attack detection (e.g., port scanning)"; this application
//! demonstrates that Athena's off-the-shelf strategies cover the same
//! ground with no new framework code: a scanner is a host whose flows fan
//! out across many destination ports with almost no return traffic —
//! directly visible in the stateful `HOST_*` and per-flow `PAIR_FLOW`
//! features.

use athena_core::nb::reaction_manager::Reaction;
use athena_core::{Athena, FeatureRecord, Query, QueryBuilder};
use athena_types::Ipv4Addr;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Configuration for the scan detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanDetectorConfig {
    /// Distinct destination ports per (source, destination) pair at or
    /// above which the source is a scanner.
    pub port_threshold: usize,
    /// Flows whose byte count stays below this look like probes.
    pub probe_max_bytes: f64,
    /// Quarantine destination; `None` blocks scanners outright.
    pub honeypot: Option<Ipv4Addr>,
}

impl Default for ScanDetectorConfig {
    fn default() -> Self {
        ScanDetectorConfig {
            port_threshold: 15,
            probe_max_bytes: 5_000.0,
            honeypot: None,
        }
    }
}

#[derive(Debug, Default)]
struct ScanState {
    // (scanner, target) -> probed ports
    probes: HashMap<(u32, u32), HashSet<u16>>,
}

/// The port-scan detection application.
#[derive(Debug)]
pub struct ScanDetector {
    /// The configuration.
    pub config: ScanDetectorConfig,
    state: Arc<Mutex<ScanState>>,
    flagged: HashSet<Ipv4Addr>,
}

impl ScanDetector {
    /// Creates the detector.
    pub fn new(config: ScanDetectorConfig) -> Self {
        ScanDetector {
            config,
            state: Arc::new(Mutex::new(ScanState::default())),
            flagged: HashSet::new(),
        }
    }

    /// Registers the event handler: unpaired, low-volume flows accumulate
    /// per-(source, target) port sets.
    pub fn deploy(&self, athena: &Athena) -> usize {
        let q: Query = QueryBuilder::new().eq("message_type", "FLOW_STATS").build();
        let state = Arc::clone(&self.state);
        let probe_max = self.config.probe_max_bytes;
        athena.add_event_handler(
            &q,
            Box::new(move |record: &FeatureRecord| {
                let Some(ft) = record.index.five_tuple else {
                    return;
                };
                let paired = record.field("PAIR_FLOW").unwrap_or(1.0) >= 0.5;
                let bytes = record.field("FLOW_BYTE_COUNT").unwrap_or(f64::MAX);
                if paired || bytes > probe_max {
                    return;
                }
                state
                    .lock()
                    .probes
                    .entry((ft.src.raw(), ft.dst.raw()))
                    .or_default()
                    .insert(ft.dst_port);
            }),
        )
    }

    /// The detection step: sources probing at least `port_threshold`
    /// distinct ports on one target are scanners; they are blocked (or
    /// quarantined when a honeypot is configured). Returns newly flagged
    /// scanners.
    pub fn detect(&mut self, athena: &Athena) -> Vec<Ipv4Addr> {
        let state = self.state.lock();
        let mut newly = Vec::new();
        for ((src, _dst), ports) in &state.probes {
            if ports.len() >= self.config.port_threshold {
                let scanner = Ipv4Addr::from_raw(*src);
                if self.flagged.insert(scanner) {
                    newly.push(scanner);
                }
            }
        }
        drop(state);
        if !newly.is_empty() {
            let reaction = match self.config.honeypot {
                Some(destination) => Reaction::Quarantine {
                    targets: newly.clone(),
                    destination,
                },
                None => Reaction::Block {
                    targets: newly.clone(),
                },
            };
            athena.reactor(reaction);
        }
        newly
    }

    /// Scanners flagged so far.
    pub fn scanners(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self.flagged.iter().copied().collect();
        v.sort();
        v
    }

    /// `(tracked pairs, max ports probed by any pair)` — diagnostics.
    pub fn probe_stats(&self) -> (usize, usize) {
        let state = self.state.lock();
        (
            state.probes.len(),
            state.probes.values().map(HashSet::len).max().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_core::{AthenaConfig, FeatureIndex};
    use athena_types::{Dpid, FiveTuple};

    fn flow_record(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        paired: bool,
        bytes: f64,
    ) -> FeatureRecord {
        let ft = FiveTuple::tcp(src, 40_000, dst, port);
        let mut r = FeatureRecord::new(FeatureIndex::flow(Dpid::new(1), ft));
        r.meta.message_type = "FLOW_STATS".into();
        r.push_field("PAIR_FLOW", f64::from(u8::from(paired)));
        r.push_field("FLOW_BYTE_COUNT", bytes);
        r
    }

    #[test]
    fn vertical_scan_is_detected_and_blocked() {
        let athena = Athena::new(AthenaConfig::default());
        let mut det = ScanDetector::new(ScanDetectorConfig::default());
        det.deploy(&athena);
        let scanner = Ipv4Addr::new(10, 0, 0, 66);
        let target = Ipv4Addr::new(10, 0, 1, 1);
        {
            let mut fm = athena.runtime().feature_manager.lock();
            for port in 1..=20u16 {
                fm.ingest(&flow_record(scanner, target, port, false, 120.0))
                    .unwrap();
            }
        }
        let newly = det.detect(&athena);
        assert_eq!(newly, vec![scanner]);
        assert_eq!(athena.mitigated_hosts(), vec![scanner]);
        // Idempotent: a second pass flags nothing new.
        assert!(det.detect(&athena).is_empty());
        assert_eq!(det.probe_stats().1, 20);
    }

    #[test]
    fn normal_clients_are_not_scanners() {
        let athena = Athena::new(AthenaConfig::default());
        let mut det = ScanDetector::new(ScanDetectorConfig::default());
        det.deploy(&athena);
        let client = Ipv4Addr::new(10, 0, 0, 7);
        let server = Ipv4Addr::new(10, 0, 1, 1);
        {
            let mut fm = athena.runtime().feature_manager.lock();
            // Few ports, paired, real volume: a browser, not a scanner.
            for port in [80u16, 443, 8080] {
                fm.ingest(&flow_record(client, server, port, true, 500_000.0))
                    .unwrap();
            }
            // Unpaired but heavy flows are also not probes.
            fm.ingest(&flow_record(client, server, 21, false, 1e7))
                .unwrap();
        }
        assert!(det.detect(&athena).is_empty());
        assert!(athena.mitigated_hosts().is_empty());
    }

    #[test]
    fn honeypot_configuration_quarantines() {
        let honeypot = Ipv4Addr::new(10, 0, 9, 9);
        let athena = Athena::new(AthenaConfig::default());
        let mut det = ScanDetector::new(ScanDetectorConfig {
            honeypot: Some(honeypot),
            port_threshold: 5,
            ..ScanDetectorConfig::default()
        });
        det.deploy(&athena);
        let scanner = Ipv4Addr::new(10, 0, 0, 66);
        {
            let mut fm = athena.runtime().feature_manager.lock();
            for port in 1..=6u16 {
                fm.ingest(&flow_record(
                    scanner,
                    Ipv4Addr::new(10, 0, 1, 1),
                    port,
                    false,
                    64.0,
                ))
                .unwrap();
            }
        }
        assert_eq!(det.detect(&athena), vec![scanner]);
        // The reactor received a quarantine (visible via counters after a
        // drain; here just check the scanner was mitigated at all).
        assert_eq!(athena.mitigated_hosts(), vec![scanner]);
    }
}
