//! Synthetic labeled DDoS datasets.
//!
//! The paper's Figure 6 evaluates on 37,370,466 flow-stats entries
//! (a 50 GB dataset) collected from the physical testbed during a DDoS
//! flood modeled on Braga et al. This generator produces a statistically
//! matched dataset at configurable scale: benign entries follow the
//! web/FTP/DNS profile (paired flows, large packets, long durations) and
//! malicious entries the flood profile of Table V (unidirectional, small
//! packets, short durations, high packet rates), with label noise at the
//! boundary so detection is hard enough to produce the paper's ~99 %
//! detection / ~4 % false-alarm operating point rather than a trivial
//! 100 %.

use athena_ml::LabeledPoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The 10-tuple feature order used by every DDoS experiment
/// (matches [`athena_core::catalog::DDOS_10_TUPLE`]).
pub const FEATURES: [&str; 10] = [
    "PAIR_FLOW",
    "PAIR_FLOW_RATIO",
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
    "FLOW_DURATION_SEC",
    "FLOW_DURATION_NSEC",
    "FLOW_TP_DST",
];

/// A labeled synthetic DDoS dataset (10-tuple features).
#[derive(Debug, Clone)]
pub struct DdosDataset {
    /// The entries; labels are ground truth (1 = attack).
    pub points: Vec<LabeledPoint>,
    /// Unique benign flows represented.
    pub benign_unique_flows: u64,
    /// Unique malicious flows represented.
    pub malicious_unique_flows: u64,
}

impl DdosDataset {
    /// Generates a dataset with the paper's class balance (~25 % benign,
    /// ~75 % malicious entries — 9.4 M vs 28 M in Figure 6).
    pub fn generate(total_entries: usize, seed: u64) -> Self {
        Self::generate_with_ratio(total_entries, 0.25, seed)
    }

    /// Generates a dataset with an explicit benign fraction.
    pub fn generate_with_ratio(total_entries: usize, benign_fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_benign = (total_entries as f64 * benign_fraction) as usize;
        let n_malicious = total_entries - n_benign;
        // The paper observes ~367 entries per benign flow and ~168 per
        // malicious flow (entries are repeated stats samples per flow).
        let benign_flows = (n_benign / 367).max(1);
        let malicious_flows = (n_malicious / 168).max(1);

        let mut points = Vec::with_capacity(total_entries);
        for i in 0..n_benign {
            points.push(Self::benign_entry(&mut rng, i % benign_flows));
        }
        for i in 0..n_malicious {
            points.push(Self::malicious_entry(&mut rng, i % malicious_flows));
        }
        // Interleave deterministically so partitions see both classes.
        let mut shuffled = Vec::with_capacity(points.len());
        let (benign, malicious) = points.split_at(n_benign);
        let (mut bi, mut mi) = (0usize, 0usize);
        for k in 0..total_entries {
            // Weighted round-robin by class share.
            let take_benign =
                (k as f64 * benign_fraction).fract() < benign_fraction && bi < benign.len();
            if take_benign || mi >= malicious.len() {
                shuffled.push(benign[bi % benign.len().max(1)].clone());
                bi += 1;
            } else {
                shuffled.push(malicious[mi].clone());
                mi += 1;
            }
        }
        DdosDataset {
            points: shuffled,
            benign_unique_flows: benign_flows as u64,
            malicious_unique_flows: malicious_flows as u64,
        }
    }

    fn benign_entry(rng: &mut StdRng, _flow: usize) -> LabeledPoint {
        // Benign: mostly paired, large packets, long-lived, modest rates.
        // ~6 % of benign entries look attack-like (one-way bursts, small
        // packets) — these drive the paper's ~4 % false-alarm rate.
        let odd = rng.random_range(0.0..1.0) < 0.06;
        let pair = if odd { 0.0 } else { 1.0 };
        let pair_ratio = rng.random_range(if odd { 0.1..0.5 } else { 0.6..1.0 });
        let duration = rng.random_range(if odd { 0.5..4.0 } else { 4.0..30.0 });
        let bpp = rng.random_range(if odd { 80.0..300.0 } else { 400.0..1500.0 });
        let pps = rng.random_range(if odd { 50.0..800.0 } else { 5.0..120.0 });
        let packets = pps * duration;
        let bytes = packets * bpp;
        let port = *[80.0, 443.0, 21.0, 53.0, 25.0]
            .get(rng.random_range(0..5))
            .expect("five ports");
        LabeledPoint::new(
            vec![
                pair,
                pair_ratio,
                packets,
                bytes,
                bpp,
                pps,
                bytes / duration,
                duration.floor(),
                (duration.fract() * 1e9).floor(),
                port,
            ],
            0.0,
        )
    }

    fn malicious_entry(rng: &mut StdRng, _flow: usize) -> LabeledPoint {
        // Attack: unidirectional, tiny packets, short flows, high packet
        // rates, random low destination ports. ~1 % of entries look
        // benign-ish (paced bots) — the paper's ~0.8 % miss rate.
        let stealthy = rng.random_range(0.0..1.0) < 0.01;
        let pair = if stealthy { 1.0 } else { 0.0 };
        let pair_ratio = rng.random_range(if stealthy { 0.5..0.9 } else { 0.0..0.25 });
        let duration = rng.random_range(if stealthy { 5.0..20.0 } else { 0.5..5.0 });
        let bpp = rng.random_range(if stealthy { 400.0..1000.0 } else { 64.0..128.0 });
        let pps = rng.random_range(if stealthy { 10.0..100.0 } else { 500.0..5000.0 });
        let packets = pps * duration;
        let bytes = packets * bpp;
        let port = f64::from(rng.random_range(1u16..1024));
        LabeledPoint::new(
            vec![
                pair,
                pair_ratio,
                packets,
                bytes,
                bpp,
                pps,
                bytes / duration,
                duration.floor(),
                (duration.fract() * 1e9).floor(),
                port,
            ],
            1.0,
        )
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Entries labeled benign / malicious.
    pub fn class_counts(&self) -> (usize, usize) {
        let malicious = self.points.iter().filter(|p| p.is_malicious()).count();
        (self.points.len() - malicious, malicious)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_balance_matches_request() {
        let d = DdosDataset::generate(10_000, 1);
        let (benign, malicious) = d.class_counts();
        assert_eq!(benign + malicious, 10_000);
        let frac = benign as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "benign fraction {frac}");
    }

    #[test]
    fn entries_have_ten_features() {
        let d = DdosDataset::generate(100, 2);
        assert!(d.points.iter().all(|p| p.dim() == 10));
        assert_eq!(FEATURES.len(), 10);
    }

    #[test]
    fn classes_are_mostly_separable_but_overlap() {
        let d = DdosDataset::generate(5_000, 3);
        // A crude single-feature threshold (byte-per-packet) separates
        // most but not all entries — the dataset must not be trivial.
        let errors = d
            .points
            .iter()
            .filter(|p| (p.features[4] < 350.0) != p.is_malicious())
            .count();
        let rate = errors as f64 / d.len() as f64;
        assert!(rate > 0.01, "too separable: {rate}");
        assert!(rate < 0.2, "too noisy: {rate}");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = DdosDataset::generate(500, 7);
        let b = DdosDataset::generate(500, 7);
        assert_eq!(a.points, b.points);
        let c = DdosDataset::generate(500, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn interleaving_spreads_classes() {
        let d = DdosDataset::generate(1000, 4);
        // Both classes appear in the first 10% of entries.
        let head = &d.points[..100];
        assert!(head.iter().any(|p| p.is_malicious()));
        assert!(head.iter().any(|p| !p.is_malicious()));
    }

    #[test]
    fn unique_flow_counts_scale() {
        let d = DdosDataset::generate(37_370, 5);
        assert!(d.benign_unique_flows > 0);
        assert!(d.malicious_unique_flows > d.benign_unique_flows);
    }
}
