//! Scenario 1: the large-scale DDoS attack detector (paper §V-A).
//!
//! Follows the paper's Application 1 pseudocode: define the training
//! query, the preprocessor (normalization, weighting, marking), and the
//! algorithm; call `GenerateDetectionModel`; then validate a test query
//! with `ValidateFeatures` and show the Figure 6 summary.

use athena_core::nb::reaction_manager::Reaction;
use athena_core::FeatureRecord;
use athena_core::{Athena, DetectionModel, Query, QueryBuilder};
use athena_ml::{Algorithm, Normalization, Preprocessor, ValidationSummary};
use athena_telemetry::names;
use athena_types::{IpProto, Ipv4Addr, Result};

/// Configuration for the DDoS detector.
#[derive(Debug, Clone)]
pub struct DdosDetectorConfig {
    /// The protected service address (ground truth: UDP floods toward it
    /// are the attack).
    pub victim: Ipv4Addr,
    /// The detection algorithm (the paper deploys K-Means with K=8,
    /// 20 iterations, 5 runs).
    pub algorithm: Algorithm,
    /// Feature weights emphasizing the pair-flow features (the paper's
    /// `Weight for certain features`).
    pub weights: Vec<f64>,
}

impl Default for DdosDetectorConfig {
    fn default() -> Self {
        DdosDetectorConfig {
            victim: Ipv4Addr::new(10, 1, 0, 1),
            algorithm: Algorithm::kmeans(8),
            // Emphasize the unidirectionality features of Table V.
            weights: vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        }
    }
}

/// The DDoS detection application.
#[derive(Debug, Clone)]
pub struct DdosDetector {
    /// The configuration.
    pub config: DdosDetectorConfig,
}

impl DdosDetector {
    /// Creates the detector for a victim service.
    pub fn new(config: DdosDetectorConfig) -> Self {
        DdosDetector { config }
    }

    /// The Table V candidate feature set (the 10-tuple of Table VI).
    pub fn features() -> Vec<String> {
        crate::dataset::FEATURES
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    }

    /// The training/testing query: flow-scoped features only.
    pub fn query(&self) -> Query {
        QueryBuilder::new().eq("message_type", "FLOW_STATS").build()
    }

    /// The preprocessor of the pseudocode: normalization plus weighting.
    pub fn preprocessor(&self) -> Preprocessor {
        Preprocessor::new()
            .normalize(Normalization::MinMax)
            .weight(self.config.weights.clone())
    }

    /// Ground truth ("Marking malicious entries"): UDP flows toward the
    /// victim are the attack — the harness constructed them, exactly as
    /// the paper's operators labeled their testbed attack flows.
    pub fn truth(&self) -> impl Fn(&FeatureRecord) -> bool + '_ {
        let victim = self.config.victim;
        move |r: &FeatureRecord| {
            r.index
                .five_tuple
                .is_some_and(|ft| ft.dst == victim && ft.proto == IpProto::Udp)
        }
    }

    /// Creates the detection model (the pseudocode's
    /// `GenerateDetectionModel(q_train, f, a)`).
    ///
    /// # Errors
    ///
    /// Propagates query/preprocessing/fitting failures.
    pub fn train(&self, athena: &Athena) -> Result<DetectionModel> {
        let tel = athena.telemetry().metrics();
        let train_ns = tel.histogram(names::apps::SUBSYSTEM, names::apps::DDOS_TRAIN_NS);
        let timer = train_ns.start_timer();
        let mut q_train = self.query();
        q_train.features = Self::features();
        let model = athena.generate_detection_model(
            &q_train,
            &self.preprocessor(),
            &self.config.algorithm,
            self.truth(),
        );
        timer.observe(&train_ns);
        model
    }

    /// Validates the test features (the pseudocode's
    /// `ValidateFeatures(q_test, f, m)`), yielding the Figure 6 summary.
    pub fn test(&self, athena: &Athena, model: &DetectionModel) -> ValidationSummary {
        let tel = athena.telemetry().metrics();
        let test_ns = tel.histogram(names::apps::SUBSYSTEM, names::apps::DDOS_TEST_NS);
        let timer = test_ns.start_timer();
        let mut q_test = self.query();
        q_test.features = Self::features();
        let summary = athena.validate_features(&q_test, model, self.truth());
        timer.observe(&test_ns);
        summary
    }

    /// Deploys live detection: an online validator that blocks alerting
    /// sources through the Attack Reactor.
    pub fn deploy_online(&self, athena: &Athena, model: DetectionModel) -> usize {
        athena.add_online_validator(
            "ddos-detector",
            &self.query(),
            model,
            Box::new(|record| {
                let src = record.index.five_tuple?.src;
                Some(Reaction::Block { targets: vec![src] })
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DdosDataset;
    use athena_compute::ComputeCluster;
    use athena_core::{AthenaConfig, DetectorManager};

    #[test]
    fn detector_reaches_the_papers_operating_point_on_synthetic_data() {
        // Offline check of the pipeline on the synthetic dataset (the
        // full in-network test lives in the integration suite).
        let data = DdosDataset::generate(20_000, 42);
        let dm = DetectorManager::new(ComputeCluster::new(2));
        let det = DdosDetector::new(DdosDetectorConfig::default());
        let model = dm
            .generate_from_points(
                data.points.clone(),
                &DdosDetector::features(),
                &det.preprocessor(),
                &det.config.algorithm,
            )
            .unwrap();
        let summary = dm.validate_points(&data.points, &model);
        let dr = summary.confusion.detection_rate();
        let far = summary.confusion.false_alarm_rate();
        assert!(dr > 0.97, "detection rate {dr}");
        assert!(far < 0.10, "false alarm rate {far}");
        // K-Means with K=8 produced per-cluster reports.
        assert_eq!(summary.clusters.len(), 8);
        assert!(summary.clusters.iter().any(|c| c.flagged_malicious));
    }

    #[test]
    fn query_and_preprocessor_shapes() {
        let det = DdosDetector::new(DdosDetectorConfig::default());
        assert_eq!(DdosDetector::features().len(), 10);
        assert_eq!(det.preprocessor().steps().len(), 2);
        let q = det.query();
        assert!(q
            .to_filter()
            .matches(&athena_store::doc! { "message_type" => "FLOW_STATS" }));
    }

    #[test]
    fn truth_marks_udp_to_victim_only() {
        let det = DdosDetector::new(DdosDetectorConfig::default());
        let truth = det.truth();
        let mk = |proto: IpProto, dst: Ipv4Addr| {
            let ft = athena_types::FiveTuple {
                src: Ipv4Addr::new(10, 0, 0, 2),
                dst,
                src_port: 1,
                dst_port: 2,
                proto,
            };
            FeatureRecord::new(athena_core::FeatureIndex::flow(
                athena_types::Dpid::new(1),
                ft,
            ))
        };
        assert!(truth(&mk(IpProto::Udp, det.config.victim)));
        assert!(!truth(&mk(IpProto::Tcp, det.config.victim)));
        assert!(!truth(&mk(IpProto::Udp, Ipv4Addr::new(10, 0, 0, 3))));
        // Non-flow records are never malicious.
        assert!(!truth(&FeatureRecord::default()));
    }

    #[test]
    fn works_with_logistic_regression_too() {
        let data = DdosDataset::generate(8_000, 11);
        let dm = DetectorManager::new(ComputeCluster::new(2));
        let det = DdosDetector::new(DdosDetectorConfig {
            algorithm: Algorithm::logistic_regression(),
            ..DdosDetectorConfig::default()
        });
        let model = dm
            .generate_from_points(
                data.points.clone(),
                &DdosDetector::features(),
                &det.preprocessor(),
                &det.config.algorithm,
            )
            .unwrap();
        let summary = dm.validate_points(&data.points, &model);
        assert!(summary.confusion.detection_rate() > 0.95);
    }

    #[test]
    fn train_latency_reaches_telemetry() {
        let tel = athena_telemetry::Telemetry::new();
        let athena = Athena::with_telemetry(AthenaConfig::default(), tel.clone());
        let det = DdosDetector::new(DdosDetectorConfig::default());
        // The store is empty, so training fails — the attempt's latency
        // is still recorded (failures are exactly when you want timings).
        assert!(det.train(&athena).is_err());
        let snap = tel
            .metrics()
            .histogram(names::apps::SUBSYSTEM, names::apps::DDOS_TRAIN_NS)
            .snapshot();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn online_deployment_registers_a_validator() {
        let athena = Athena::new(AthenaConfig::default());
        let data = DdosDataset::generate(2_000, 3);
        let det = DdosDetector::new(DdosDetectorConfig::default());
        let model = athena
            .detector_manager()
            .generate_from_points(
                data.points,
                &DdosDetector::features(),
                &det.preprocessor(),
                &Algorithm::kmeans(4),
            )
            .unwrap();
        det.deploy_online(&athena, model);
        assert_eq!(athena.runtime().detector.lock().validator_count(), 1);
    }
}
