//! The Athena facade: the framework's assembly point and the core
//! northbound API of the paper's Table II.

use crate::feature::format::FeatureRecord;
use crate::nb::detector_manager::{DetectionModel, DetectorManager};
use crate::nb::feature_manager::{EventHandler, FeatureManager};
use crate::nb::query::{Predicate, Query};
use crate::nb::reaction_manager::Reaction;
use crate::nb::resource_manager::ResourceManager;
use crate::nb::ui::{Series, UiManager};
use crate::sb::detector::{AlertHandler, AttackDetector};
use crate::sb::interface::AthenaSouthbound;
use crate::sb::reactor::AttackReactor;
use athena_compute::ComputeCluster;
use athena_controller::ControllerCluster;
use athena_ml::{Algorithm, Preprocessor, ValidationSummary};
use athena_observe::Observe;
use athena_store::StoreCluster;
use athena_telemetry::Telemetry;
use athena_types::sentinel::TrackedMutex;
use athena_types::{ControllerId, Dpid, Result, SimDuration};
use std::sync::Arc;

/// Deployment configuration for an Athena instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AthenaConfig {
    /// Nodes in the distributed feature store (the paper uses 3 DB
    /// nodes).
    pub store_nodes: usize,
    /// Store replication factor.
    pub store_replication: usize,
    /// Worker nodes in the compute cluster (the paper scales 1–6).
    pub compute_workers: usize,
    /// Athena's statistics-poll period.
    pub poll_interval: SimDuration,
    /// Timeout/backoff policy for Athena's marked statistics polls: a
    /// poll whose reply is lost to a faulty southbound channel is
    /// re-issued with bounded exponential backoff.
    pub poll_retry: athena_controller::RetryPolicy,
    /// Whether features are published to the store (Table IX's "no DB"
    /// configuration sets this to `false`).
    pub store_enabled: bool,
}

impl Default for AthenaConfig {
    fn default() -> Self {
        AthenaConfig {
            store_nodes: 3,
            store_replication: 2,
            compute_workers: 6,
            poll_interval: SimDuration::from_secs(5),
            poll_retry: athena_controller::RetryPolicy::default(),
            store_enabled: true,
        }
    }
}

/// State shared between the NB facade and every SB instance.
pub struct AthenaRuntime {
    /// The distributed feature store.
    pub store: StoreCluster,
    /// The feature manager (store access + event-delivery table).
    pub feature_manager: TrackedMutex<FeatureManager>,
    /// The live-mode attack detector.
    pub detector: TrackedMutex<AttackDetector>,
    /// The attack reactor (mitigation queue).
    pub reactor: TrackedMutex<AttackReactor>,
    /// The resource manager (monitoring fidelity).
    pub resource: TrackedMutex<ResourceManager>,
    /// Retry policy for Athena's marked statistics polls.
    pub poll_retry: athena_controller::RetryPolicy,
    /// The deployment's telemetry domain (disabled unless the instance
    /// was built with [`Athena::with_telemetry`]).
    pub telemetry: Telemetry,
    /// The deployment's observe pipeline (disabled unless the instance
    /// was built with [`Athena::with_observe`]).
    pub observe: Observe,
}

/// The Athena framework instance.
///
/// One `Athena` spans the whole deployment: it attaches one southbound
/// element per controller instance and exports the northbound API. See
/// the [crate documentation](crate) for an end-to-end example.
pub struct Athena {
    runtime: Arc<AthenaRuntime>,
    detector_manager: DetectorManager,
    ui: UiManager,
}

impl Athena {
    /// Builds an Athena deployment: store cluster, compute cluster, and
    /// the shared managers. Telemetry is present but disabled; use
    /// [`Athena::with_telemetry`] to observe the deployment.
    pub fn new(config: AthenaConfig) -> Self {
        Self::with_telemetry(config, Telemetry::off())
    }

    /// Builds an Athena deployment reporting into `tel`: the store and
    /// compute clusters and the feature pipeline all record their metrics
    /// and traces there.
    pub fn with_telemetry(config: AthenaConfig, tel: Telemetry) -> Self {
        Self::with_observe(config, tel, Observe::disabled())
    }

    /// Builds an Athena deployment reporting into `tel` and recording
    /// causal spans (store quorum writes, compute jobs, feature
    /// generation, verdicts) into `obs`.
    pub fn with_observe(config: AthenaConfig, tel: Telemetry, obs: Observe) -> Self {
        let store = StoreCluster::new(config.store_nodes, config.store_replication);
        store.bind_telemetry(&tel);
        store.bind_observe(&obs);
        let mut feature_manager = FeatureManager::new(&store);
        feature_manager.set_store_enabled(config.store_enabled);
        let mut resource = ResourceManager::new();
        resource.poll_interval = config.poll_interval;
        let runtime = Arc::new(AthenaRuntime {
            store,
            feature_manager: TrackedMutex::new("core/feature_manager", feature_manager),
            detector: TrackedMutex::new("core/detector", AttackDetector::new()),
            reactor: TrackedMutex::new("core/reactor", AttackReactor::new()),
            resource: TrackedMutex::new("core/resource", resource),
            poll_retry: config.poll_retry,
            telemetry: tel.clone(),
            observe: obs.clone(),
        });
        let compute = ComputeCluster::new(config.compute_workers);
        compute.bind_telemetry(&tel);
        compute.bind_observe(&obs);
        Athena {
            runtime,
            detector_manager: DetectorManager::with_telemetry(compute, &tel),
            ui: UiManager::new(),
        }
    }

    /// The deployment's telemetry domain.
    pub fn telemetry(&self) -> &Telemetry {
        &self.runtime.telemetry
    }

    /// Attaches one Athena SB element per controller instance — the
    /// "integration without modification" step: only interceptors are
    /// registered; the SDN stack itself is untouched. The deployment's
    /// telemetry handle is also bound to the cluster, so controller-side
    /// counters land in the same report (a no-op when telemetry is off).
    pub fn attach(&self, cluster: &mut ControllerCluster) {
        if self.runtime.telemetry.is_enabled() {
            cluster.bind_telemetry(&self.runtime.telemetry);
        }
        if self.runtime.observe.is_enabled() {
            cluster.bind_observe(&self.runtime.observe);
        }
        for c in 0..cluster.instance_count() {
            cluster.add_interceptor(Box::new(self.southbound(ControllerId::new(c as u32))));
        }
    }

    /// Creates the SB element for one controller instance (used directly
    /// when instances are managed by hand).
    pub fn southbound(&self, controller: ControllerId) -> AthenaSouthbound {
        AthenaSouthbound::new(controller, Arc::clone(&self.runtime))
    }

    /// The shared runtime (store, managers).
    pub fn runtime(&self) -> &Arc<AthenaRuntime> {
        &self.runtime
    }

    /// The detector manager (batch training/validation).
    pub fn detector_manager(&self) -> &DetectorManager {
        &self.detector_manager
    }

    /// Replaces the compute cluster (the Figure 10 sweep re-runs with
    /// 1–6 workers). The new cluster inherits the deployment's telemetry
    /// binding.
    pub fn set_compute_workers(&mut self, workers: usize) {
        let compute = ComputeCluster::new(workers);
        compute.bind_telemetry(&self.runtime.telemetry);
        compute.bind_observe(&self.runtime.observe);
        self.detector_manager = DetectorManager::with_telemetry(compute, &self.runtime.telemetry);
    }

    // ------------------------------------------------------------------
    // The eight core NB APIs (Table II).
    // ------------------------------------------------------------------

    /// `RequestFeatures(q)`: retrieves stored Athena features under
    /// user-defined constraints.
    pub fn request_features(&self, q: &Query) -> Vec<FeatureRecord> {
        self.runtime.feature_manager.lock().request_features(q)
    }

    /// `ManageMonitor(q, o)`: turns monitoring on/off. A query naming
    /// `switch==X` toggles that switch; `feature==KIND` toggles a feature
    /// kind; an empty query toggles everything.
    pub fn manage_monitor(&self, q: &Query, on: bool) {
        let mut resource = self.runtime.resource.lock();
        let mut toggled_specific = false;
        let mut visit = |p: &Predicate| {
            if let Predicate::Cmp { field, value, .. } = p {
                match field.as_str() {
                    "switch" => {
                        if let Some(d) = value.as_i64() {
                            resource.set_switch_enabled(Dpid::new(d as u64), on);
                            toggled_specific = true;
                        }
                    }
                    "message_type" => {
                        if let Some(kind) = value.as_str() {
                            resource.set_kind_enabled(kind, on);
                            toggled_specific = true;
                        }
                    }
                    _ => {}
                }
            }
        };
        match &q.predicate {
            Some(Predicate::And(ps)) | Some(Predicate::Or(ps)) => {
                for p in ps {
                    visit(p);
                }
            }
            Some(p) => visit(p),
            None => {}
        }
        if !toggled_specific {
            resource.monitoring_enabled = on;
        }
    }

    /// `GenerateDetectionModel(q, f, a)`: fetches the training features,
    /// applies the preprocessor, and fits the algorithm — distributing
    /// the job to the compute cluster for large datasets.
    ///
    /// `truth` labels training entries (the ground truth behind the
    /// *Marking* step; the paper's operators mark known-malicious entries
    /// the same way).
    ///
    /// # Errors
    ///
    /// Returns [`athena_types::AthenaError::Ml`] when the query selects no
    /// usable records or fitting fails.
    pub fn generate_detection_model(
        &self,
        q: &Query,
        f: &Preprocessor,
        a: &Algorithm,
        truth: impl Fn(&FeatureRecord) -> bool,
    ) -> Result<DetectionModel> {
        // Fetch without the projection: the query's feature list selects
        // the *model's* inputs, but auxiliary fields (ground truth, phase
        // tags) must stay visible to the labeling closure.
        let mut fetch = q.clone();
        fetch.features.clear();
        let records = self.request_features(&fetch);
        let features: Vec<String> = if q.features.is_empty() {
            crate::feature::catalog::DDOS_10_TUPLE
                .iter()
                .map(|s| (*s).to_owned())
                .collect()
        } else {
            q.features.clone()
        };
        self.detector_manager
            .generate_detection_model(&records, &features, truth, f, a)
    }

    /// `ValidateFeatures(q, f, m)`: validates the selected features with a
    /// generated model, producing the Figure 6 summary. (The fitted
    /// preprocessor travels inside the model in this implementation.)
    pub fn validate_features(
        &self,
        q: &Query,
        m: &DetectionModel,
        truth: impl Fn(&FeatureRecord) -> bool,
    ) -> ValidationSummary {
        let mut fetch = q.clone();
        fetch.features.clear();
        let records = self.request_features(&fetch);
        self.detector_manager.validate_features(&records, truth, m)
    }

    /// `AddEventHandler(q)`: registers a handler receiving live features
    /// matching the query. Returns the registration index.
    pub fn add_event_handler(&self, q: &Query, handler: EventHandler) -> usize {
        self.runtime
            .feature_manager
            .lock()
            .register_handler(q, handler)
    }

    /// `AddOnlineValidator(f, m, e)`: registers a live validator scoring
    /// matching features with a model; malicious verdicts invoke the
    /// alert handler, whose returned reactions flow to the Attack
    /// Reactor.
    pub fn add_online_validator(
        &self,
        name: impl Into<String>,
        q: &Query,
        m: DetectionModel,
        on_alert: AlertHandler,
    ) -> usize {
        self.runtime
            .detector
            .lock()
            .add_validator(name, q, m, on_alert)
    }

    /// Hot-swaps the model behind online validator `index` atomically
    /// under the detector lock (see
    /// [`AttackDetector::swap_model`](crate::AttackDetector::swap_model));
    /// returns the displaced model.
    pub fn swap_online_model(&self, index: usize, m: DetectionModel) -> Option<DetectionModel> {
        self.runtime.detector.lock().swap_model(index, m)
    }

    /// `Reactor(q, r)`: enforces a mitigation on the data plane. The
    /// reaction's rules are issued through the SB proxy at the next
    /// southbound exchange.
    pub fn reactor(&self, r: Reaction) {
        self.runtime.reactor.lock().enqueue(r);
    }

    /// `ShowResults(r')`: renders a validation summary for the operator.
    pub fn show_results(&self, summary: &ValidationSummary) -> String {
        self.ui.render_summary(summary)
    }

    /// `ShowResults` for time series (the Figure 9 view).
    pub fn show_series(&self, title: &str, series: &[Series]) -> String {
        self.ui.render_series(title, series)
    }

    /// The UI manager, for custom rendering.
    pub fn ui(&self) -> &UiManager {
        &self.ui
    }

    // ------------------------------------------------------------------
    // Introspection used by applications and the evaluation harness.
    // ------------------------------------------------------------------

    /// Number of features stored.
    pub fn stored_feature_count(&self) -> usize {
        self.runtime
            .feature_manager
            .lock()
            .count_features(&Query::all())
    }

    /// Total alerts raised by online validators.
    pub fn total_alerts(&self) -> u64 {
        self.runtime.detector.lock().total_alerts()
    }

    /// Hosts mitigated by the Attack Reactor.
    pub fn mitigated_hosts(&self) -> Vec<athena_types::Ipv4Addr> {
        self.runtime.reactor.lock().mitigated_hosts()
    }
}

impl std::fmt::Debug for Athena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Athena")
            .field("stored_features", &self.stored_feature_count())
            .field("store_nodes", &self.runtime.store.node_count())
            .field(
                "compute_workers",
                &self.detector_manager.compute().workers(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_dataplane::{workload, Network, Topology};
    use athena_types::SimTime;

    fn run_deployment(seconds: u64) -> (Athena, Network, ControllerCluster) {
        let topo = Topology::enterprise();
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        let athena = Athena::new(AthenaConfig::default());
        athena.attach(&mut cluster);
        net.inject_flows(workload::benign_mix_on(
            &topo,
            80,
            SimDuration::from_secs(seconds / 2),
            11,
        ));
        net.run_until(SimTime::from_secs(seconds), &mut cluster);
        (athena, net, cluster)
    }

    #[test]
    fn deployment_collects_features_from_all_controllers() {
        let (athena, _net, _cluster) = run_deployment(20);
        assert!(athena.stored_feature_count() > 100);
        // Features arrived from all three controller domains.
        let mut seen = std::collections::HashSet::new();
        for r in athena.request_features(&Query::all()) {
            seen.insert(r.meta.controller);
        }
        assert_eq!(seen.len(), 3, "{seen:?}");
    }

    #[test]
    fn athena_marked_polling_is_visible_in_features() {
        let (athena, _, _) = run_deployment(15);
        let records = athena.request_features(&Query::parse("feature==FLOW_STATS").unwrap());
        assert!(!records.is_empty());
        assert!(records.iter().any(|r| r.meta.athena_polled));
    }

    #[test]
    fn manage_monitor_toggles() {
        let (athena, _, _) = run_deployment(10);
        // Disable one switch.
        athena.manage_monitor(&Query::parse("switch==1").unwrap(), false);
        assert!(!athena
            .runtime()
            .resource
            .lock()
            .allows_polling(Dpid::new(1)));
        // Disable everything.
        athena.manage_monitor(&Query::all(), false);
        assert!(!athena.runtime().resource.lock().monitoring_enabled);
        // Re-enable.
        athena.manage_monitor(&Query::all(), true);
        assert!(athena.runtime().resource.lock().monitoring_enabled);
    }

    #[test]
    fn end_to_end_model_generation_and_validation() {
        let (athena, _, _) = run_deployment(25);
        let mut q = Query::parse("feature==FLOW_STATS").unwrap();
        q.features = vec![
            "FLOW_PACKET_COUNT".into(),
            "FLOW_BYTE_PER_PACKET".into(),
            "PAIR_FLOW".into(),
        ];
        // Arbitrary truth for the smoke test: big flows are "malicious".
        let truth = |r: &FeatureRecord| r.field("FLOW_BYTE_COUNT").unwrap_or(0.0) > 1e7;
        let model = athena
            .generate_detection_model(
                &q,
                &Preprocessor::new().normalize(athena_ml::Normalization::MinMax),
                &Algorithm::kmeans(4),
                truth,
            )
            .unwrap();
        let summary = athena.validate_features(&q, &model, truth);
        assert!(summary.total_entries() > 0);
        let rendered = athena.show_results(&summary);
        assert!(rendered.contains("Detection Rate"));
    }

    #[test]
    fn reactor_blocks_hosts_via_the_proxy() {
        let topo = Topology::enterprise();
        let mut net = Network::new(topo.clone());
        let mut cluster = ControllerCluster::new(&topo);
        let athena = Athena::new(AthenaConfig::default());
        athena.attach(&mut cluster);
        let victim_src = topo.hosts[0].ip;
        athena.reactor(Reaction::Block {
            targets: vec![victim_src],
        });
        // Traffic from the blocked host.
        net.inject_flows([athena_dataplane::FlowSpec::new(
            athena_types::FiveTuple::tcp(victim_src, 1, topo.hosts[20].ip, 80),
            SimTime::from_secs(2),
            SimDuration::from_secs(10),
            8_000_000,
        )]);
        net.run_until(SimTime::from_secs(15), &mut cluster);
        assert_eq!(athena.mitigated_hosts(), vec![victim_src]);
        // The drop rule kept the flow from delivering.
        assert_eq!(net.delivered_bytes(), 0);
        assert!(net.counters().dropped_bytes > 0);
    }
}
