//! **Athena** — a framework for scalable anomaly detection in
//! software-defined networks (Lee et al., DSN 2017), reproduced in Rust.
//!
//! Athena layers an anomaly-detection development framework over a
//! distributed SDN stack: each controller instance hosts an Athena
//! *southbound element* that taps the OpenFlow control-message stream,
//! generates network features, and publishes them to a distributed
//! database; the *northbound element* exports the eight core APIs of the
//! paper's Table II, from which operators compose detectors with minimal
//! code.
//!
//! # Crate layout
//!
//! - [`feature`] — the feature format of the paper's Figure 4
//!   ([`FeatureRecord`]), the catalog of 100+ features across the
//!   categories of Table I ([`feature::catalog`]), and the
//!   [`FeatureGenerator`] with its variation tables, pair-flow state, and
//!   garbage collector,
//! - [`sb`] — the southbound element: the controller interceptor
//!   ([`AthenaSouthbound`]), the [`AttackDetector`] (online validators),
//!   and the [`AttackReactor`] (Block/Quarantine via the proxy),
//! - [`nb`] — the northbound element: the [`Query`] language, the
//!   [`FeatureManager`] with its event-delivery table, the
//!   [`DetectorManager`] (single-node vs. cluster dispatch), the
//!   [`ReactionManager`], [`ResourceManager`], and [`UiManager`],
//! - [`Athena`] — the facade exporting the core NB API:
//!   `request_features`, `manage_monitor`, `generate_detection_model`,
//!   `validate_features`, `add_event_handler`, `add_online_validator`,
//!   `reactor`, `show_results`.
//!
//! # Examples
//!
//! Deploying Athena over a simulated three-controller SDN and training a
//! detection model:
//!
//! ```
//! use athena_core::{Athena, AthenaConfig, Query};
//! use athena_controller::ControllerCluster;
//! use athena_dataplane::{workload, Network, Topology};
//! use athena_ml::{Algorithm, Preprocessor};
//! use athena_types::{SimDuration, SimTime};
//!
//! // 1. Stand up the SDN stack with Athena attached.
//! let topo = Topology::enterprise();
//! let mut net = Network::new(topo.clone());
//! let mut cluster = ControllerCluster::new(&topo);
//! let athena = Athena::new(AthenaConfig::default());
//! athena.attach(&mut cluster);
//!
//! // 2. Drive traffic.
//! net.inject_flows(workload::benign_mix_on(&topo, 60, SimDuration::from_secs(10), 1));
//! net.run_until(SimTime::from_secs(15), &mut cluster);
//!
//! // 3. Query collected features and train a model.
//! let q = Query::parse("feature==FLOW_STATS")?;
//! let records = athena.request_features(&q);
//! assert!(!records.is_empty());
//! # Ok::<(), athena_types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod athena;
pub mod feature;
pub mod nb;
pub mod sb;

pub use athena::{Athena, AthenaConfig};
pub use feature::catalog::{self, FeatureCategory};
pub use feature::format::{FeatureIndex, FeatureRecord, MetaData};
pub use feature::generator::FeatureGenerator;
pub use feature::window::{Boundaries, Windowing};
pub use nb::detector_manager::{DetectionModel, DetectorManager};
pub use nb::feature_manager::FeatureManager;
pub use nb::query::{Query, QueryBuilder};
pub use nb::reaction_manager::{Reaction, ReactionManager};
pub use nb::resource_manager::ResourceManager;
pub use nb::ui::UiManager;
pub use sb::detector::{AlertHandler, AttackDetector};
pub use sb::interface::AthenaSouthbound;
pub use sb::reactor::AttackReactor;
