//! The Detector Manager (paper §III-A 2B).
//!
//! Offers the well-known ML algorithms behind one uniform interface,
//! auto-configures per-type details (labeling clusters from *Marking*
//! labels), validates large-scale feature sets, and decides between
//! single-instance and cluster execution: "while in learning mode, the
//! Attack Detector distributes jobs to the computing cluster …; for a
//! small dataset, it handles the request on a single instance to reduce
//! communication overhead."

use crate::feature::format::FeatureRecord;
use crate::nb::feature_manager::FeatureManager;
use athena_compute::ComputeCluster;
use athena_ml::{
    Algorithm, ClusterReport, ConfusionMatrix, FittedPreprocessor, LabeledPoint, Model,
    Preprocessor, TrainedModel, ValidationSummary,
};
use athena_telemetry::{Counter, Histogram, Telemetry};
use athena_types::{AthenaError, FiveTuple, Result, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A generated detection model: the trained model plus everything needed
/// to validate features with it (the `Model (m)` parameter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// The trained model.
    pub model: TrainedModel,
    /// The fitted preprocessing chain (applied identically at validation
    /// and online-detection time).
    pub preprocessor: FittedPreprocessor,
    /// The feature fields the model consumes, in order.
    pub features: Vec<String>,
    /// The algorithm's display name.
    pub algorithm: String,
    /// Training-set size.
    pub trained_on: usize,
}

impl DetectionModel {
    /// Serializes the model (trained parameters, fitted preprocessor,
    /// feature list) to JSON — the paper's "off-the-shelf sharing of
    /// anomaly detection algorithms": a model trained on one deployment
    /// can be loaded and used on another.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Model`] if serialization fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| AthenaError::Model(e.to_string()))
    }

    /// Loads a model previously exported with [`DetectionModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Model`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| AthenaError::Model(e.to_string()))
    }

    /// Persists the model to a snapshot file: the JSON export wrapped in
    /// the persist layer's framed record format (CRC-checked, stamped with
    /// virtual time `now`) — the durable, file-based flavor of the paper's
    /// model sharing.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Model`] if serialization fails or
    /// [`AthenaError::Persist`] if the file cannot be written.
    pub fn save_to(&self, path: &std::path::Path, now: SimTime) -> Result<()> {
        let json = self.to_json()?;
        athena_persist::write_snapshot_file(
            path,
            athena_persist::record::kind::MODEL,
            json.as_bytes(),
            now,
        )
    }

    /// Loads a model persisted with [`DetectionModel::save_to`],
    /// validating the record framing and checksum first.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Persist`] for torn or corrupt snapshot files
    /// and [`AthenaError::Model`] for a valid record holding malformed
    /// model JSON — corruption is always an error, never a wrong model.
    pub fn load_from(path: &std::path::Path) -> Result<Self> {
        let (_, payload) =
            athena_persist::read_snapshot_file(path, athena_persist::record::kind::MODEL)?;
        let json = std::str::from_utf8(&payload)
            .map_err(|e| AthenaError::Model(format!("model snapshot is not UTF-8: {e}")))?;
        Self::from_json(json)
    }

    /// Scores one feature record; `None` if the record lacks the model's
    /// features.
    pub fn score(&self, record: &FeatureRecord) -> Option<f64> {
        let v = record.vector(&self.features)?;
        let p = self.preprocessor.apply_point(&LabeledPoint::unlabeled(v));
        Some(self.model.predict(&p.features))
    }

    /// Classifies one record as malicious; `None` if not applicable.
    pub fn is_malicious(&self, record: &FeatureRecord) -> Option<bool> {
        self.score(record).map(|s| s >= 0.5)
    }
}

/// The detector manager: training and validation with single-node or
/// cluster execution.
#[derive(Debug, Clone)]
pub struct DetectorManager {
    compute: ComputeCluster,
    /// Datasets at least this large train/validate on the compute cluster.
    pub distributed_threshold: usize,
    /// Partitions used for distributed jobs.
    pub partitions: usize,
    fit_ns: Histogram,
    models_trained: Counter,
}

impl DetectorManager {
    /// Creates a manager around a compute cluster.
    pub fn new(compute: ComputeCluster) -> Self {
        DetectorManager {
            compute,
            distributed_threshold: 50_000,
            partitions: 24,
            fit_ns: Histogram::detached(),
            models_trained: Counter::detached(),
        }
    }

    /// Like [`DetectorManager::new`], but training latency and model
    /// counts flow into `tel` under the `core` subsystem.
    pub fn with_telemetry(compute: ComputeCluster, tel: &Telemetry) -> Self {
        use athena_telemetry::names;
        let m = tel.metrics();
        DetectorManager {
            fit_ns: m.histogram(names::core::SUBSYSTEM, names::core::FIT_NS),
            models_trained: m.counter(names::core::SUBSYSTEM, names::core::MODELS_TRAINED),
            ..Self::new(compute)
        }
    }

    /// The compute cluster (virtual-time accounting lives there).
    pub fn compute(&self) -> &ComputeCluster {
        &self.compute
    }

    /// Generates a detection model from feature records
    /// (`GenerateDetectionModel`).
    ///
    /// `truth` labels the training entries (the *Marking* ground truth);
    /// clustering algorithms use the labels only to name clusters.
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] when no record carries the requested
    /// features, or when preprocessing/fitting fails.
    pub fn generate_detection_model(
        &self,
        records: &[FeatureRecord],
        features: &[String],
        truth: impl Fn(&FeatureRecord) -> bool,
        preprocessor: &Preprocessor,
        algorithm: &Algorithm,
    ) -> Result<DetectionModel> {
        let points = FeatureManager::to_labeled_points(records, features, truth);
        self.generate_from_points(points, features, preprocessor, algorithm)
    }

    /// [`DetectorManager::generate_detection_model`] from pre-extracted
    /// labeled points (the large-scale path).
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Ml`] for an empty set or fitting failures.
    pub fn generate_from_points(
        &self,
        points: Vec<LabeledPoint>,
        features: &[String],
        preprocessor: &Preprocessor,
        algorithm: &Algorithm,
    ) -> Result<DetectionModel> {
        if points.is_empty() {
            return Err(AthenaError::Ml(
                "no records carry the requested features".into(),
            ));
        }
        let fitted = preprocessor.fit(&points)?;
        let prepared = fitted.apply(&points);
        let n = prepared.len();
        let model = if n >= self.distributed_threshold {
            let ds = self.compute.parallelize(prepared, self.partitions);
            algorithm.fit_distributed_timed(&ds, &self.fit_ns)?
        } else {
            algorithm.fit_timed(&prepared, &self.fit_ns)?
        };
        self.models_trained.inc();
        Ok(DetectionModel {
            model,
            preprocessor: fitted,
            features: features.to_vec(),
            algorithm: algorithm.name().to_owned(),
            trained_on: n,
        })
    }

    /// Validates feature records against a model (`ValidateFeatures`),
    /// producing the paper's Figure 6 summary.
    pub fn validate_features(
        &self,
        records: &[FeatureRecord],
        truth: impl Fn(&FeatureRecord) -> bool,
        model: &DetectionModel,
    ) -> ValidationSummary {
        let mut confusion = ConfusionMatrix::default();
        let mut benign_flows: HashSet<FiveTuple> = HashSet::new();
        let mut malicious_flows: HashSet<FiveTuple> = HashSet::new();
        let k = model.model.cluster_count().unwrap_or(0);
        let mut clusters = vec![ClusterReport::default(); k];
        for (i, c) in clusters.iter_mut().enumerate() {
            c.cluster = i;
        }

        for r in records {
            let Some(v) = r.vector(&model.features) else {
                continue;
            };
            let point = model.preprocessor.apply_point(&LabeledPoint::unlabeled(v));
            let actual = truth(r);
            let (predicted, cluster) = model.model.verdict_and_cluster(&point.features);
            confusion.record(actual, predicted);
            if let Some(ft) = r.index.five_tuple {
                if actual {
                    malicious_flows.insert(ft);
                } else {
                    benign_flows.insert(ft);
                }
            }
            if let Some(c) = cluster {
                if let Some(report) = clusters.get_mut(c) {
                    if actual {
                        report.malicious += 1;
                    } else {
                        report.benign += 1;
                    }
                    report.flagged_malicious = predicted;
                }
            }
        }
        ValidationSummary {
            confusion,
            benign_unique_flows: benign_flows.len() as u64,
            malicious_unique_flows: malicious_flows.len() as u64,
            model_info: model.model.describe(),
            clusters,
        }
    }

    /// Validates pre-extracted points whose labels are the ground truth
    /// (the large-scale path).
    pub fn validate_points(
        &self,
        points: &[LabeledPoint],
        model: &DetectionModel,
    ) -> ValidationSummary {
        let mut confusion = ConfusionMatrix::default();
        let k = model.model.cluster_count().unwrap_or(0);
        let mut clusters = vec![ClusterReport::default(); k];
        for (i, c) in clusters.iter_mut().enumerate() {
            c.cluster = i;
        }
        for p in points {
            let prepared = model.preprocessor.apply_point(p);
            let (predicted, cluster) = model.model.verdict_and_cluster(&prepared.features);
            confusion.record(p.is_malicious(), predicted);
            if let Some(c) = cluster {
                if let Some(report) = clusters.get_mut(c) {
                    if p.is_malicious() {
                        report.malicious += 1;
                    } else {
                        report.benign += 1;
                    }
                    report.flagged_malicious = predicted;
                }
            }
        }
        ValidationSummary {
            confusion,
            benign_unique_flows: 0,
            malicious_unique_flows: 0,
            model_info: model.model.describe(),
            clusters,
        }
    }

    /// Distributed validation: partitions the points over the compute
    /// cluster, validates per-partition, merges the partial summaries,
    /// and reports the job's virtual completion time (the quantity
    /// Figure 10 sweeps over cluster sizes).
    pub fn validate_points_distributed(
        &self,
        points: Vec<LabeledPoint>,
        model: &DetectionModel,
    ) -> (ValidationSummary, SimDuration) {
        let before = self.compute.total_virtual_time();
        let k = model.model.cluster_count().unwrap_or(0);
        let ds = self.compute.parallelize(points, self.partitions);
        let model_for_job = model.clone();
        let partials = ds.map_partitions(move |part| {
            let mut confusion = ConfusionMatrix::default();
            let mut cluster_counts = vec![(0u64, 0u64, false); k];
            for p in part {
                let prepared = model_for_job.preprocessor.apply_point(p);
                let (predicted, cluster) =
                    model_for_job.model.verdict_and_cluster(&prepared.features);
                confusion.record(p.is_malicious(), predicted);
                if let Some(c) = cluster {
                    if let Some(slot) = cluster_counts.get_mut(c) {
                        if p.is_malicious() {
                            slot.1 += 1;
                        } else {
                            slot.0 += 1;
                        }
                        slot.2 = predicted;
                    }
                }
            }
            vec![(confusion, cluster_counts)]
        });
        let mut confusion = ConfusionMatrix::default();
        let mut clusters = vec![ClusterReport::default(); k];
        for (i, c) in clusters.iter_mut().enumerate() {
            c.cluster = i;
        }
        for (partial, counts) in partials.collect() {
            confusion.merge(&partial);
            for (report, (b, m, flagged)) in clusters.iter_mut().zip(counts) {
                report.benign += b;
                report.malicious += m;
                report.flagged_malicious |= flagged;
            }
        }
        let elapsed = self.compute.total_virtual_time() - before;
        (
            ValidationSummary {
                confusion,
                benign_unique_flows: 0,
                malicious_unique_flows: 0,
                model_info: model.model.describe(),
                clusters,
            },
            elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::format::FeatureIndex;
    use athena_types::{Dpid, Ipv4Addr};

    fn records(n: usize) -> Vec<FeatureRecord> {
        // Benign records: low packet counts and pair flows; malicious:
        // high counts, no pair.
        let mut out = Vec::new();
        for i in 0..n {
            let benign = i % 2 == 0;
            let ft = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, (i % 250) as u8),
                1000 + i as u16,
                Ipv4Addr::new(10, 0, 9, 9),
                80,
            );
            let mut r = FeatureRecord::new(FeatureIndex::flow(Dpid::new(1), ft));
            r.meta.message_type = "FLOW_STATS".into();
            if benign {
                r.push_field("FLOW_PACKET_COUNT", 10.0 + (i % 5) as f64);
                r.push_field("PAIR_FLOW", 1.0);
            } else {
                r.push_field("FLOW_PACKET_COUNT", 500.0 + (i % 50) as f64);
                r.push_field("PAIR_FLOW", 0.0);
            }
            out.push(r);
        }
        out
    }

    fn truth(r: &FeatureRecord) -> bool {
        r.field("FLOW_PACKET_COUNT").unwrap_or(0.0) > 100.0
    }

    fn features() -> Vec<String> {
        vec!["FLOW_PACKET_COUNT".into(), "PAIR_FLOW".into()]
    }

    fn manager() -> DetectorManager {
        DetectorManager::new(ComputeCluster::new(3))
    }

    #[test]
    fn kmeans_model_detects_the_separable_records() {
        let dm = manager();
        let rs = records(200);
        let model = dm
            .generate_detection_model(
                &rs,
                &features(),
                truth,
                &Preprocessor::new().normalize(athena_ml::Normalization::MinMax),
                &Algorithm::kmeans(2),
            )
            .unwrap();
        assert_eq!(model.trained_on, 200);
        let summary = dm.validate_features(&rs, truth, &model);
        assert!(summary.confusion.detection_rate() > 0.95);
        assert!(summary.confusion.false_alarm_rate() < 0.05);
        assert_eq!(summary.total_entries(), 200);
        assert_eq!(summary.clusters.len(), 2);
        // Unique flows were tracked from the record indexes.
        assert!(summary.benign_unique_flows > 0);
        assert!(summary.malicious_unique_flows > 0);
    }

    #[test]
    fn small_datasets_train_single_node() {
        let dm = manager();
        let before = dm.compute().job_count();
        let rs = records(100);
        dm.generate_detection_model(
            &rs,
            &features(),
            truth,
            &Preprocessor::new(),
            &Algorithm::logistic_regression(),
        )
        .unwrap();
        // Below the threshold: no cluster jobs ran.
        assert_eq!(dm.compute().job_count(), before);
    }

    #[test]
    fn large_datasets_go_to_the_cluster() {
        let mut dm = manager();
        dm.distributed_threshold = 50;
        let rs = records(200);
        dm.generate_detection_model(
            &rs,
            &features(),
            truth,
            &Preprocessor::new(),
            &Algorithm::kmeans(2),
        )
        .unwrap();
        assert!(dm.compute().job_count() > 0);
    }

    #[test]
    fn distributed_validation_matches_serial() {
        let dm = manager();
        let rs = records(300);
        let model = dm
            .generate_detection_model(
                &rs,
                &features(),
                truth,
                &Preprocessor::new(),
                &Algorithm::decision_tree(),
            )
            .unwrap();
        let points = FeatureManager::to_labeled_points(&rs, &features(), truth);
        let serial = dm.validate_points(&points, &model);
        let (dist, elapsed) = dm.validate_points_distributed(points, &model);
        assert_eq!(serial.confusion, dist.confusion);
        assert!(elapsed.as_micros() > 0);
    }

    #[test]
    fn model_scores_records_directly() {
        let dm = manager();
        let rs = records(100);
        let model = dm
            .generate_detection_model(
                &rs,
                &features(),
                truth,
                &Preprocessor::new(),
                &Algorithm::threshold(0, 100.0),
            )
            .unwrap();
        assert_eq!(model.is_malicious(&rs[1]), Some(true)); // odd = malicious
        assert_eq!(model.is_malicious(&rs[0]), Some(false));
        // Records without the features are not scored.
        let empty = FeatureRecord::new(FeatureIndex::switch(Dpid::new(1)));
        assert_eq!(model.is_malicious(&empty), None);
    }

    #[test]
    fn telemetry_times_model_training() {
        let tel = Telemetry::new();
        let dm = DetectorManager::with_telemetry(ComputeCluster::new(3), &tel);
        let rs = records(100);
        dm.generate_detection_model(
            &rs,
            &features(),
            truth,
            &Preprocessor::new(),
            &Algorithm::kmeans(2),
        )
        .unwrap();
        let m = tel.metrics();
        assert_eq!(m.counter("core", "models_trained").get(), 1);
        assert_eq!(m.histogram("core", "fit_ns").snapshot().count, 1);
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let dm = manager();
        let err = dm.generate_detection_model(
            &[],
            &features(),
            truth,
            &Preprocessor::new(),
            &Algorithm::kmeans(2),
        );
        assert!(err.is_err());
    }
}
