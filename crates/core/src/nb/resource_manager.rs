//! The Resource Manager (paper §III-A 2D): monitoring fidelity.
//!
//! "Dynamically adjusts the number of monitored network entities and
//! generated network features, according to requests from Athena
//! applications."

use crate::feature::format::FeatureRecord;
use athena_types::{Dpid, SimDuration};
use std::collections::HashSet;

/// Controls which entities are monitored, which feature kinds are
/// generated, and how often Athena polls statistics.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    /// Master switch: `false` silences all feature generation.
    pub monitoring_enabled: bool,
    disabled_switches: HashSet<Dpid>,
    disabled_kinds: HashSet<String>,
    /// Athena's own statistics-poll period.
    pub poll_interval: SimDuration,
}

impl Default for ResourceManager {
    fn default() -> Self {
        ResourceManager {
            monitoring_enabled: true,
            disabled_switches: HashSet::new(),
            disabled_kinds: HashSet::new(),
            poll_interval: SimDuration::from_secs(5),
        }
    }
}

impl ResourceManager {
    /// Creates a manager with everything enabled.
    pub fn new() -> Self {
        ResourceManager::default()
    }

    /// Enables/disables monitoring of a switch.
    pub fn set_switch_enabled(&mut self, dpid: Dpid, enabled: bool) {
        if enabled {
            self.disabled_switches.remove(&dpid);
        } else {
            self.disabled_switches.insert(dpid);
        }
    }

    /// Enables/disables a feature kind (message type, e.g. `PORT_STATS`).
    pub fn set_kind_enabled(&mut self, kind: impl Into<String>, enabled: bool) {
        let kind = kind.into();
        if enabled {
            self.disabled_kinds.remove(&kind);
        } else {
            self.disabled_kinds.insert(kind);
        }
    }

    /// Whether Athena should poll this switch at all.
    pub fn allows_polling(&self, dpid: Dpid) -> bool {
        self.monitoring_enabled && !self.disabled_switches.contains(&dpid)
    }

    /// Whether a generated record passes the current fidelity settings.
    pub fn allows(&self, record: &FeatureRecord) -> bool {
        self.monitoring_enabled
            && !self.disabled_switches.contains(&record.index.switch)
            && !self.disabled_kinds.contains(&record.meta.message_type)
    }

    /// Number of explicitly disabled entities (switches + kinds).
    pub fn disabled_count(&self) -> usize {
        self.disabled_switches.len() + self.disabled_kinds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::format::FeatureIndex;

    fn record(switch: u64, kind: &str) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(switch)));
        r.meta.message_type = kind.to_owned();
        r
    }

    #[test]
    fn default_allows_everything() {
        let rm = ResourceManager::new();
        assert!(rm.allows(&record(1, "FLOW_STATS")));
        assert!(rm.allows_polling(Dpid::new(1)));
        assert_eq!(rm.disabled_count(), 0);
    }

    #[test]
    fn master_switch_silences_all() {
        let mut rm = ResourceManager::new();
        rm.monitoring_enabled = false;
        assert!(!rm.allows(&record(1, "FLOW_STATS")));
        assert!(!rm.allows_polling(Dpid::new(1)));
    }

    #[test]
    fn per_switch_and_per_kind_toggles() {
        let mut rm = ResourceManager::new();
        rm.set_switch_enabled(Dpid::new(2), false);
        rm.set_kind_enabled("PORT_STATS", false);
        assert!(!rm.allows(&record(2, "FLOW_STATS")));
        assert!(!rm.allows(&record(1, "PORT_STATS")));
        assert!(rm.allows(&record(1, "FLOW_STATS")));
        assert!(!rm.allows_polling(Dpid::new(2)));
        assert_eq!(rm.disabled_count(), 2);
        // Re-enable.
        rm.set_switch_enabled(Dpid::new(2), true);
        rm.set_kind_enabled("PORT_STATS", true);
        assert!(rm.allows(&record(2, "PORT_STATS")));
        assert_eq!(rm.disabled_count(), 0);
    }
}
