//! The Feature Management Manager (paper §III-A 2A).
//!
//! Provides the unified mechanism applications use to retrieve and receive
//! network features: translates [`Query`]s into store queries, maintains
//! the *event delivery table* matching live features against registered
//! constraints, and converts feature sets into ML training data.

use crate::feature::format::FeatureRecord;
use crate::nb::query::Query;
use athena_ml::LabeledPoint;
use athena_store::cluster::CollectionHandle;
use athena_store::{Filter, StoreCluster};
use athena_types::Result;

/// A live-feature handler registered through `AddEventHandler`.
pub type EventHandler = Box<dyn FnMut(&FeatureRecord) + Send>;

struct Registration {
    filter: Filter,
    handler: EventHandler,
    delivered: u64,
}

/// The feature manager: store access plus the event-delivery table.
pub struct FeatureManager {
    collection: CollectionHandle,
    registrations: Vec<Registration>,
    publish_to_store: bool,
    published: u64,
    dispatched: u64,
}

impl FeatureManager {
    /// The store collection features are published to.
    pub const COLLECTION: &'static str = "features";

    /// Creates a manager publishing into the given store cluster.
    pub fn new(store: &StoreCluster) -> Self {
        let collection = store.collection(Self::COLLECTION);
        collection.create_index("message_type");
        FeatureManager {
            collection,
            registrations: Vec::new(),
            publish_to_store: true,
            published: 0,
            dispatched: 0,
        }
    }

    /// Enables/disables store publication (the paper's Table IX measures
    /// a "no DB" configuration).
    pub fn set_store_enabled(&mut self, enabled: bool) {
        self.publish_to_store = enabled;
    }

    /// Whether store publication is enabled.
    pub fn store_enabled(&self) -> bool {
        self.publish_to_store
    }

    /// `(published, dispatched-to-handlers)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.published, self.dispatched)
    }

    /// Ingests one live feature record: publishes it to the distributed
    /// store and forwards it to every registration whose query matches.
    ///
    /// # Errors
    ///
    /// Returns [`athena_types::AthenaError::Store`] if publication fails.
    pub fn ingest(&mut self, record: &FeatureRecord) -> Result<()> {
        // The document form is only materialized when someone needs it:
        // the store, or a registered handler's filter.
        if !self.publish_to_store && self.registrations.is_empty() {
            return Ok(());
        }
        let doc = record.to_document();
        if self.publish_to_store {
            self.collection.insert(doc.clone())?;
            self.published += 1;
        }
        for reg in &mut self.registrations {
            if reg.filter.matches(&doc) {
                (reg.handler)(record);
                reg.delivered += 1;
                self.dispatched += 1;
            }
        }
        Ok(())
    }

    /// Ingests a pre-built feature document (used when replaying stored
    /// feature sets carrying extra fields such as phase tags or ground
    /// truth). Handlers receive the reconstructed record.
    ///
    /// # Errors
    ///
    /// Returns [`athena_types::AthenaError::Store`] if publication fails.
    pub fn ingest_document(&mut self, doc: crate::feature::format::RawDocument) -> Result<()> {
        if self.publish_to_store {
            self.collection.insert(doc.clone())?;
            self.published += 1;
        }
        let record = FeatureRecord::from_document(&doc);
        for reg in &mut self.registrations {
            if reg.filter.matches(&doc) {
                (reg.handler)(&record);
                reg.delivered += 1;
                self.dispatched += 1;
            }
        }
        Ok(())
    }

    /// Registers an event handler with a query constraint; returns its
    /// registration index.
    pub fn register_handler(&mut self, query: &Query, handler: EventHandler) -> usize {
        self.registrations.push(Registration {
            filter: query.to_filter(),
            handler,
            delivered: 0,
        });
        self.registrations.len() - 1
    }

    /// How many events a registration has received.
    pub fn delivered_count(&self, registration: usize) -> Option<u64> {
        self.registrations.get(registration).map(|r| r.delivered)
    }

    /// Retrieves stored features matching a query (the `RequestFeatures`
    /// API), applying the query's projection to the feature fields.
    pub fn request_features(&self, query: &Query) -> Vec<FeatureRecord> {
        let docs = self
            .collection
            .find(&query.to_filter(), &query.to_find_options());
        let mut records: Vec<FeatureRecord> =
            docs.iter().map(FeatureRecord::from_document).collect();
        if !query.features.is_empty() {
            for r in &mut records {
                r.fields.retain(|(name, _)| query.features.contains(name));
            }
        }
        records
    }

    /// Number of stored feature documents matching a query.
    pub fn count_features(&self, query: &Query) -> usize {
        self.collection.count(&query.to_filter())
    }

    /// Deletes stored features matching a query (used by tests and
    /// benchmarks between phases).
    pub fn purge(&self, query: &Query) -> usize {
        self.collection.delete(&query.to_filter())
    }

    /// Converts records to ML training data: extracts the named feature
    /// fields and labels each record with `truth` (ground truth or the
    /// Marking preprocessor's output). Records missing any named field
    /// are skipped (they are of a different kind).
    pub fn to_labeled_points(
        records: &[FeatureRecord],
        features: &[impl AsRef<str>],
        truth: impl Fn(&FeatureRecord) -> bool,
    ) -> Vec<LabeledPoint> {
        records
            .iter()
            .filter_map(|r| {
                let v = r.vector(features)?;
                Some(LabeledPoint::new(v, f64::from(u8::from(truth(r)))))
            })
            .collect()
    }
}

impl std::fmt::Debug for FeatureManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureManager")
            .field("registrations", &self.registrations.len())
            .field("published", &self.published)
            .field("dispatched", &self.dispatched)
            .field("publish_to_store", &self.publish_to_store)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::format::FeatureIndex;
    use athena_types::Dpid;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn record(switch: u64, packets: f64) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(switch)));
        r.meta.message_type = "FLOW_STATS".into();
        r.push_field("FLOW_PACKET_COUNT", packets);
        r
    }

    fn manager() -> FeatureManager {
        FeatureManager::new(&StoreCluster::new(3, 2))
    }

    #[test]
    fn ingest_then_request_roundtrip() {
        let mut fm = manager();
        for i in 0..10 {
            fm.ingest(&record(i % 3, i as f64 * 10.0)).unwrap();
        }
        let all = fm.request_features(&Query::all());
        assert_eq!(all.len(), 10);
        let hot = fm.request_features(&Query::parse("FLOW_PACKET_COUNT>50").unwrap());
        assert_eq!(hot.len(), 4);
        assert_eq!(fm.count_features(&Query::parse("switch==0").unwrap()), 4);
    }

    #[test]
    fn event_delivery_table_matches_constraints() {
        let mut fm = manager();
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        let reg = fm.register_handler(
            &Query::parse("FLOW_PACKET_COUNT>=100").unwrap(),
            Box::new(move |_| {
                hits2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for i in 0..15 {
            fm.ingest(&record(1, i as f64 * 10.0)).unwrap();
        }
        // Packets 100, 110, 120, 130, 140 match.
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(fm.delivered_count(reg), Some(5));
        assert_eq!(fm.counters(), (15, 5));
    }

    #[test]
    fn no_db_mode_skips_publication_but_still_dispatches() {
        let mut fm = manager();
        fm.set_store_enabled(false);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        fm.register_handler(
            &Query::all(),
            Box::new(move |_| {
                hits2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        fm.ingest(&record(1, 5.0)).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(fm.count_features(&Query::all()), 0);
        assert_eq!(fm.counters(), (0, 1));
    }

    #[test]
    fn projection_restricts_fields() {
        let mut fm = manager();
        let mut r = record(1, 7.0);
        r.push_field("FLOW_BYTE_COUNT", 700.0);
        fm.ingest(&r).unwrap();
        let mut q = Query::all();
        q.features = vec!["FLOW_BYTE_COUNT".into()];
        let out = fm.request_features(&q);
        assert_eq!(out[0].fields.len(), 1);
        assert_eq!(out[0].field("FLOW_BYTE_COUNT"), Some(700.0));
    }

    #[test]
    fn labeled_point_conversion_skips_foreign_records() {
        let mut with_fields = record(1, 10.0);
        with_fields.push_field("FLOW_BYTE_COUNT", 1000.0);
        let without = FeatureRecord::new(FeatureIndex::switch(Dpid::new(2)));
        let points = FeatureManager::to_labeled_points(
            &[with_fields, without],
            &["FLOW_PACKET_COUNT", "FLOW_BYTE_COUNT"],
            |r| r.field("FLOW_PACKET_COUNT").unwrap_or(0.0) > 5.0,
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].features, vec![10.0, 1000.0]);
        assert!(points[0].is_malicious());
    }

    #[test]
    fn purge_deletes_matching() {
        let mut fm = manager();
        for i in 0..6 {
            fm.ingest(&record(i % 2, 1.0)).unwrap();
        }
        assert_eq!(fm.purge(&Query::parse("switch==0").unwrap()), 3);
        assert_eq!(fm.count_features(&Query::all()), 3);
    }
}
