//! The Reaction Manager (paper §III-A 2C): mitigation strategies.
//!
//! Athena supports two reactions: **Block** (drop a host's traffic) and
//! **Quarantine** (redirect a host into a honeynet). The manager turns
//! reaction requests into the flow-rule plans the SB Attack Reactor
//! pushes through the Athena proxy.

use athena_openflow::{Action, FlowMod, MatchFields};
use athena_types::EtherType;
use athena_types::{Dpid, Ipv4Addr, PortNo};
use serde::{Deserialize, Serialize};

/// A mitigation action (the `Reactions (r)` parameter of Table III).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reaction {
    /// Drop all traffic from the targeted hosts.
    Block {
        /// The hosts to block.
        targets: Vec<Ipv4Addr>,
    },
    /// Redirect the targeted hosts' traffic to a honeynet destination.
    Quarantine {
        /// The hosts to quarantine.
        targets: Vec<Ipv4Addr>,
        /// The honeynet address traffic is rewritten to.
        destination: Ipv4Addr,
    },
}

impl Reaction {
    /// The targeted hosts.
    pub fn targets(&self) -> &[Ipv4Addr] {
        match self {
            Reaction::Block { targets } | Reaction::Quarantine { targets, .. } => targets,
        }
    }
}

/// A planned rule installation: which switch gets which flow-mod.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactionRule {
    /// The switch to install on.
    pub dpid: Dpid,
    /// The rule.
    pub flow_mod: FlowMod,
}

/// Priority used by mitigation rules (above every application).
pub const MITIGATION_PRIORITY: u16 = 60_000;

/// Plans and counts reactions.
#[derive(Debug, Clone, Default)]
pub struct ReactionManager {
    blocks: u64,
    quarantines: u64,
}

impl ReactionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        ReactionManager::default()
    }

    /// `(blocks, quarantines)` issued so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.blocks, self.quarantines)
    }

    /// Plans the rules for a reaction. `locate` resolves a host to its
    /// access switch and port; `next_hop` gives the egress port from a
    /// switch *toward* a host (the honeynet path for quarantine — the
    /// honeypot usually sits on a different switch than the suspect).
    pub fn plan(
        &mut self,
        reaction: &Reaction,
        locate: impl Fn(Ipv4Addr) -> Option<(Dpid, PortNo)>,
        next_hop: impl Fn(Dpid, Ipv4Addr) -> Option<PortNo>,
    ) -> Vec<ReactionRule> {
        let mut rules = Vec::new();
        match reaction {
            Reaction::Block { targets } => {
                for t in targets {
                    let Some((dpid, _)) = locate(*t) else {
                        continue;
                    };
                    self.blocks += 1;
                    rules.push(ReactionRule {
                        dpid,
                        flow_mod: FlowMod::add(
                            MatchFields::new()
                                .with_eth_type(EtherType::Ipv4)
                                .with_ip_src(*t, 32),
                            MITIGATION_PRIORITY,
                            Vec::new(), // empty action list = drop
                        ),
                    });
                }
            }
            Reaction::Quarantine {
                targets,
                destination,
            } => {
                for t in targets {
                    let Some((dpid, _)) = locate(*t) else {
                        continue;
                    };
                    // Egress from the suspect's access switch toward the
                    // honeynet.
                    let Some(out_port) = next_hop(dpid, *destination) else {
                        continue;
                    };
                    self.quarantines += 1;
                    // Rewrite the destination to the honeynet and forward
                    // toward it; transit switches need matching rules too,
                    // so install the rewritten-destination path hop by hop.
                    rules.push(ReactionRule {
                        dpid,
                        flow_mod: FlowMod::add(
                            MatchFields::new()
                                .with_eth_type(EtherType::Ipv4)
                                .with_ip_src(*t, 32),
                            MITIGATION_PRIORITY,
                            vec![Action::SetIpDst(*destination), Action::Output(out_port)],
                        ),
                    });
                }
            }
        }
        rules
    }

    /// Plans the *removal* of a reaction's rules (un-block).
    pub fn plan_removal(
        &self,
        reaction: &Reaction,
        locate: impl Fn(Ipv4Addr) -> Option<(Dpid, PortNo)>,
    ) -> Vec<ReactionRule> {
        reaction
            .targets()
            .iter()
            .filter_map(|t| {
                let (dpid, _) = locate(*t)?;
                Some(ReactionRule {
                    dpid,
                    flow_mod: FlowMod::delete(
                        MatchFields::new()
                            .with_eth_type(EtherType::Ipv4)
                            .with_ip_src(*t, 32),
                    ),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locate(ip: Ipv4Addr) -> Option<(Dpid, PortNo)> {
        // Hosts 10.0.0.x live on switch x.
        let o = ip.octets();
        (o[0] == 10).then(|| (Dpid::new(u64::from(o[3])), PortNo::new(4)))
    }

    // Toward any host: its access port when local, else the "uplink".
    fn next_hop(from: Dpid, dest: Ipv4Addr) -> Option<PortNo> {
        let (dst_switch, dst_port) = locate(dest)?;
        Some(if from == dst_switch {
            dst_port
        } else {
            PortNo::new(1)
        })
    }

    #[test]
    fn block_installs_drop_rules_at_access_switches() {
        let mut rm = ReactionManager::new();
        let reaction = Reaction::Block {
            targets: vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)],
        };
        let rules = rm.plan(&reaction, locate, next_hop);
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert!(Action::is_drop(&r.flow_mod.actions));
            assert_eq!(r.flow_mod.priority, MITIGATION_PRIORITY);
        }
        assert_eq!(rules[0].dpid, Dpid::new(1));
        assert_eq!(rm.counters(), (2, 0));
    }

    #[test]
    fn quarantine_rewrites_to_honeynet() {
        let mut rm = ReactionManager::new();
        let honeypot = Ipv4Addr::new(10, 0, 0, 9);
        let reaction = Reaction::Quarantine {
            targets: vec![Ipv4Addr::new(10, 0, 0, 3)],
            destination: honeypot,
        };
        let rules = rm.plan(&reaction, locate, next_hop);
        assert_eq!(rules.len(), 1);
        assert!(rules[0]
            .flow_mod
            .actions
            .contains(&Action::SetIpDst(honeypot)));
        assert_eq!(rm.counters(), (0, 1));
    }

    #[test]
    fn unknown_hosts_are_skipped() {
        let mut rm = ReactionManager::new();
        let reaction = Reaction::Block {
            targets: vec![Ipv4Addr::new(192, 168, 0, 1)],
        };
        assert!(rm.plan(&reaction, locate, next_hop).is_empty());
        assert_eq!(rm.counters(), (0, 0));
    }

    #[test]
    fn removal_plans_deletes() {
        let rm = ReactionManager::new();
        let reaction = Reaction::Block {
            targets: vec![Ipv4Addr::new(10, 0, 0, 1)],
        };
        let rules = rm.plan_removal(&reaction, locate);
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0].flow_mod.command,
            athena_openflow::FlowModCommand::Delete
        );
    }
}
