//! The utility-API surface named by the paper's Application 1 pseudocode.
//!
//! The paper counts "8 core APIs and over 70 utility APIs"; the core eight
//! live on [`crate::Athena`], and the broader utility surface is spread
//! across the workspace (query/preprocessor/algorithm builders, feature
//! catalog accessors, metric helpers, renderers). This module provides the
//! exact names the pseudocode uses, as thin entry points, so code written
//! from the paper reads one-to-one:
//!
//! ```text
//! q_train = GenerateQuery (constraints of features);
//! f = GeneratePreprocessor (Normalization, Weight …, Marking …);
//! f.addAll(candidate features);
//! a = GenerateAlgorithm (a detection algorithm);
//! ```

use crate::feature::format::FeatureRecord;
use crate::nb::query::{Query, QueryBuilder};
use athena_ml::{Algorithm, ConfusionMatrix, Normalization, Preprocessor, ValidationSummary};
use athena_types::Result;

/// `GenerateQuery(constraints)`: parses the paper's query syntax.
///
/// # Errors
///
/// Returns [`athena_types::AthenaError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// let q = athena_core::nb::util::generate_query("TCP_PORT==80 && time==1 day")?;
/// assert!(q.predicate.is_some());
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
pub fn generate_query(constraints: &str) -> Result<Query> {
    Query::parse(constraints)
}

/// `GenerateQuery` without constraints: the match-everything query,
/// refined through the returned builder.
pub fn query_builder() -> QueryBuilder {
    QueryBuilder::new()
}

/// A `Preprocessor` under construction, with the pseudocode's `addAll`.
#[derive(Debug, Clone, Default)]
pub struct PreprocessorSpec {
    inner: Preprocessor,
    features: Vec<String>,
}

impl PreprocessorSpec {
    /// Appends a normalization step.
    pub fn normalization(mut self, kind: Normalization) -> Self {
        self.inner = self.inner.normalize(kind);
        self
    }

    /// Appends a weighting step ("Weight for certain features").
    pub fn weight(mut self, weights: Vec<f64>) -> Self {
        self.inner = self.inner.weight(weights);
        self
    }

    /// Appends a sampling step.
    pub fn sampling(mut self, fraction: f64) -> Self {
        self.inner = self.inner.sample(fraction);
        self
    }

    /// Appends a marking step ("Marking malicious entries").
    pub fn marking(mut self, feature: usize, threshold: f64) -> Self {
        self.inner = self.inner.mark(feature, threshold);
        self
    }

    /// The pseudocode's `f.addAll(candidate features)`: registers the
    /// features the algorithm consumes.
    pub fn add_all<S: AsRef<str>>(&mut self, candidates: &[S]) -> &mut Self {
        self.features
            .extend(candidates.iter().map(|s| s.as_ref().to_owned()));
        self
    }

    /// The registered feature names, in order.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// The underlying preprocessing chain.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.inner
    }
}

/// `GeneratePreprocessor(...)`: starts a preprocessor specification.
///
/// # Examples
///
/// ```
/// use athena_core::nb::util::generate_preprocessor;
/// use athena_ml::Normalization;
///
/// let mut f = generate_preprocessor().normalization(Normalization::MinMax);
/// f.add_all(&["FLOW_PACKET_COUNT", "PAIR_FLOW"]);
/// assert_eq!(f.features().len(), 2);
/// ```
pub fn generate_preprocessor() -> PreprocessorSpec {
    PreprocessorSpec::default()
}

/// `GenerateAlgorithm(a detection algorithm)`: passes a configured
/// algorithm through (the configuration *is* the algorithm value; this
/// name exists for pseudocode parity).
pub fn generate_algorithm(algorithm: Algorithm) -> Algorithm {
    algorithm
}

/// `ResultsGenerator`: assembles a [`ValidationSummary`] from verdicts,
/// as the NAE pseudocode does to "generate the Results to notify
/// operators".
///
/// # Examples
///
/// ```
/// use athena_core::nb::util::results_generator;
/// let summary = results_generator(
///     [(true, true), (false, false), (false, true)],
///     "Custom (Check_SLA)",
/// );
/// assert_eq!(summary.total_entries(), 3);
/// assert_eq!(summary.confusion.false_positive, 1);
/// ```
pub fn results_generator(
    verdicts: impl IntoIterator<Item = (bool, bool)>,
    model_info: &str,
) -> ValidationSummary {
    let mut confusion = ConfusionMatrix::default();
    for (actual, predicted) in verdicts {
        confusion.record(actual, predicted);
    }
    ValidationSummary {
        confusion,
        model_info: model_info.to_owned(),
        ..ValidationSummary::default()
    }
}

/// Ground-truth helper: marks records by a numeric field threshold (the
/// common `Marking` idiom when labels ride in a stored field).
pub fn truth_from_field(field: &str, threshold: f64) -> impl Fn(&FeatureRecord) -> bool + '_ {
    move |r: &FeatureRecord| r.field(field).unwrap_or(0.0) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudocode_surface_composes() {
        // The Application 1 pseudocode, line for line.
        let q_train = generate_query("feature==FLOW_STATS").unwrap();
        let mut f = generate_preprocessor()
            .normalization(Normalization::MinMax)
            .weight(vec![2.0, 1.0]);
        f.add_all(&["PAIR_FLOW", "FLOW_PACKET_COUNT"]);
        let a = generate_algorithm(Algorithm::kmeans(5));
        assert_eq!(f.features().len(), 2);
        assert_eq!(f.preprocessor().steps().len(), 2);
        assert_eq!(a.name(), "K-Means");
        assert!(q_train.predicate.is_some());
    }

    #[test]
    fn truth_from_field_reads_records() {
        use crate::feature::format::{FeatureIndex, FeatureRecord};
        let truth = truth_from_field("truth", 0.5);
        let mut r = FeatureRecord::new(FeatureIndex::switch(athena_types::Dpid::new(1)));
        assert!(!truth(&r));
        r.push_field("truth", 1.0);
        assert!(truth(&r));
    }

    #[test]
    fn results_generator_counts_verdicts() {
        let s = results_generator([(true, false), (true, true)], "m");
        assert_eq!(s.confusion.true_positive, 1);
        assert_eq!(s.confusion.false_negative, 1);
        assert_eq!(s.model_info, "m");
    }
}
