//! The Athena unified query language (the `Query (q)` parameter of
//! Table III).
//!
//! Queries combine arithmetic comparisons (`> >= == != <= <`) with
//! `and`/`or` (also spelled `&&`/`||`), plus the options of Table IV:
//! sorting, aggregation, and limiting. The string syntax matches the
//! paper's examples (`"TCP_PORT==80 && time==1 day"`), and a typed
//! [`QueryBuilder`] offers the same power programmatically.

use athena_store::{Filter, FindOptions, SortSpec};
use athena_types::{AthenaError, Result};
use serde_json::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
}

/// A predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `field op value`.
    Cmp {
        /// The (already canonicalized) document field.
        field: String,
        /// The operator.
        op: CmpOp,
        /// The comparison value.
        value: Value,
    },
    /// `field in {v1, v2, …}`.
    In {
        /// The document field.
        field: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// All conjuncts hold.
    And(Vec<Predicate>),
    /// At least one disjunct holds.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Translates to a store filter.
    pub fn to_filter(&self) -> Filter {
        match self {
            Predicate::Cmp { field, op, value } => {
                let f = field.clone();
                let v = value.clone();
                match op {
                    CmpOp::Eq => Filter::Eq(f, v),
                    CmpOp::Ne => Filter::Ne(f, v),
                    CmpOp::Lt => Filter::Lt(f, v),
                    CmpOp::Lte => Filter::Lte(f, v),
                    CmpOp::Gt => Filter::Gt(f, v),
                    CmpOp::Gte => Filter::Gte(f, v),
                }
            }
            Predicate::In { field, values } => Filter::In(field.clone(), values.clone()),
            Predicate::And(ps) => Filter::And(ps.iter().map(Predicate::to_filter).collect()),
            Predicate::Or(ps) => Filter::Or(ps.iter().map(Predicate::to_filter).collect()),
        }
    }
}

/// An Athena query: predicate plus result-shaping options.
///
/// # Examples
///
/// ```
/// use athena_core::Query;
/// let q = Query::parse("TCP_PORT==80 && FLOW_PACKET_COUNT>100 sort FLOW_BYTE_COUNT desc limit 10")?;
/// assert_eq!(q.limit, Some(10));
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The predicate (`None` = match everything).
    pub predicate: Option<Predicate>,
    /// Sort keys: `(field, descending)`.
    pub sort: Vec<(String, bool)>,
    /// Maximum results.
    pub limit: Option<usize>,
    /// Feature fields to retain (empty = all).
    pub features: Vec<String>,
}

impl Query {
    /// The match-everything query.
    pub fn all() -> Self {
        Query::default()
    }

    /// Parses the paper's string syntax.
    ///
    /// Grammar (whitespace-separated):
    /// `comparison ( (&&|and|,|\|\||or) comparison )*`
    /// `[sort FIELD [asc|desc]]* [limit N]`, where a comparison is
    /// `FIELD op VALUE` (spaces around `op` optional). `or` binds the
    /// whole disjunct list (no mixed precedence — parenthesization is not
    /// supported, matching the paper's flat examples).
    ///
    /// Field aliases map the paper's names onto document fields:
    /// `TCP_PORT`/`PORT` → `tp_dst`, `IP_SRC` → `ip_src` (value parsed as
    /// a dotted address), `IP_DST` → `ip_dst`, `DPID`/`SWITCH` →
    /// `switch`, `APP_ID`/`APP` → `app`, `feature`/`type` →
    /// `message_type`, `time` → `timestamp` (value in seconds, `1 day`
    /// style suffixes supported).
    ///
    /// # Errors
    ///
    /// Returns [`AthenaError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Self> {
        parse_query(text)
    }

    /// The store filter this query's predicate translates to.
    pub fn to_filter(&self) -> Filter {
        self.predicate
            .as_ref()
            .map_or(Filter::All, Predicate::to_filter)
    }

    /// The store find-options (sort + limit) this query translates to.
    pub fn to_find_options(&self) -> FindOptions {
        let mut opts = FindOptions::default();
        for (field, desc) in &self.sort {
            opts = opts.sort(if *desc {
                SortSpec::desc(field.clone())
            } else {
                SortSpec::asc(field.clone())
            });
        }
        if let Some(n) = self.limit {
            opts = opts.limit(n);
        }
        opts
    }
}

/// A typed builder for [`Query`].
///
/// # Examples
///
/// ```
/// use athena_core::QueryBuilder;
/// let q = QueryBuilder::new()
///     .eq("message_type", "FLOW_STATS")
///     .gt("FLOW_PACKET_COUNT", 100)
///     .sort_desc("FLOW_BYTE_COUNT")
///     .limit(5)
///     .build();
/// assert_eq!(q.limit, Some(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    conjuncts: Vec<Predicate>,
    sort: Vec<(String, bool)>,
    limit: Option<usize>,
    features: Vec<String>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    fn cmp(mut self, field: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        self.conjuncts.push(Predicate::Cmp {
            field: field.into(),
            op,
            value: value.into(),
        });
        self
    }

    /// Adds `field == value`.
    pub fn eq(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Eq, value)
    }

    /// Adds `field != value`.
    pub fn ne(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Ne, value)
    }

    /// Adds `field > value`.
    pub fn gt(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Gt, value)
    }

    /// Adds `field >= value`.
    pub fn gte(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Gte, value)
    }

    /// Adds `field < value`.
    pub fn lt(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Lt, value)
    }

    /// Adds `field <= value`.
    pub fn lte(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.cmp(field, CmpOp::Lte, value)
    }

    /// Adds `field in values` (the paper's `IP_SRC in {suspicious hosts}`).
    pub fn is_in(mut self, field: impl Into<String>, values: Vec<Value>) -> Self {
        self.conjuncts.push(Predicate::In {
            field: field.into(),
            values,
        });
        self
    }

    /// Adds an ascending sort key.
    pub fn sort_asc(mut self, field: impl Into<String>) -> Self {
        self.sort.push((field.into(), false));
        self
    }

    /// Adds a descending sort key.
    pub fn sort_desc(mut self, field: impl Into<String>) -> Self {
        self.sort.push((field.into(), true));
        self
    }

    /// Caps the result count.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Restricts to the named feature fields.
    pub fn features(mut self, names: &[&str]) -> Self {
        self.features = names.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Builds the query.
    pub fn build(self) -> Query {
        let mut conjuncts = self.conjuncts;
        let predicate = match conjuncts.len() {
            0 => None,
            1 => conjuncts.pop(),
            _ => Some(Predicate::And(conjuncts)),
        };
        Query {
            predicate,
            sort: self.sort,
            limit: self.limit,
            features: self.features,
        }
    }
}

/// Canonicalizes the paper's field aliases.
fn canonical_field(name: &str) -> String {
    match name.to_ascii_uppercase().as_str() {
        "TCP_PORT" | "PORT" | "TP_DST" => "tp_dst".to_owned(),
        "TP_SRC" => "tp_src".to_owned(),
        "IP_SRC" => "ip_src".to_owned(),
        "IP_DST" => "ip_dst".to_owned(),
        "IP_PROTO" | "PROTO" => "ip_proto".to_owned(),
        "DPID" | "SWITCH" => "switch".to_owned(),
        "APP" | "APP_ID" => "app".to_owned(),
        "FEATURE" | "TYPE" | "MESSAGE_TYPE" => "message_type".to_owned(),
        "TIME" | "TIMESTAMP" => "timestamp".to_owned(),
        "CONTROLLER" => "controller".to_owned(),
        _ => name.to_owned(),
    }
}

fn parse_value(field: &str, raw: &str) -> Result<Value> {
    // IP-valued fields accept dotted quads and store the raw u32.
    if field == "ip_src" || field == "ip_dst" {
        if let Ok(ip) = raw.parse::<athena_types::Ipv4Addr>() {
            return Ok(Value::from(ip.raw()));
        }
    }
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(Value::from(n));
    }
    if let Ok(x) = raw.parse::<f64>() {
        return Ok(Value::from(x));
    }
    // Quoted or bare string.
    Ok(Value::from(raw.trim_matches('"').to_owned()))
}

/// Duration-suffixed values for the `time` field: `1 day`, `5 min`, `30 sec`.
fn parse_time_value(amount: &str, unit: Option<&str>) -> Option<i64> {
    let n: f64 = amount.parse().ok()?;
    let mult = match unit.unwrap_or("sec") {
        "day" | "days" | "d" => 86_400.0,
        "hour" | "hours" | "h" => 3_600.0,
        "min" | "mins" | "m" => 60.0,
        "sec" | "secs" | "s" => 1.0,
        _ => return None,
    };
    // Timestamps are stored in microseconds.
    Some((n * mult * 1e6) as i64)
}

fn parse_query(text: &str) -> Result<Query> {
    let bad = |why: &str| AthenaError::parse("query", format!("{text} ({why})"));
    // Normalize operators so everything splits on whitespace.
    let mut norm = text.replace("&&", " and ").replace("||", " or ");
    for op in ["<=", ">=", "==", "!="] {
        norm = norm.replace(op, &format!(" {op} "));
    }
    // Single-char ops last (avoid splitting the two-char ones).
    let norm = norm
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .replace('<', " < ")
        .replace('>', " > ")
        .replace("<  =", "<=")
        .replace(">  =", ">=")
        .replace("<= =", "<==") // never valid; caught below
        .replace("= =", "==");
    let mut tokens: Vec<&str> = norm.split_whitespace().collect();
    // Repair two-char ops that single-char splitting broke apart.
    let mut fixed: Vec<String> = Vec::with_capacity(tokens.len());
    let mut parts = tokens.iter().peekable();
    while let Some(&tok) = parts.next() {
        if (tok == "<" || tok == ">") && parts.peek() == Some(&&"=") {
            parts.next();
            fixed.push(format!("{tok}="));
        } else {
            fixed.push(tok.to_owned());
        }
    }
    tokens = fixed.iter().map(String::as_str).collect();

    let mut query = Query::default();
    let mut comparisons: Vec<Predicate> = Vec::new();
    let mut any_or = false;
    let mut i = 0;
    while let Some(tok) = tokens.get(i) {
        match *tok {
            "and" | "," => {
                i += 1;
            }
            "or" => {
                any_or = true;
                i += 1;
            }
            "sort" => {
                let field = tokens.get(i + 1).ok_or_else(|| bad("sort needs a field"))?;
                let mut desc = false;
                let mut step = 2;
                match tokens.get(i + 2) {
                    Some(&"desc") => {
                        desc = true;
                        step = 3;
                    }
                    Some(&"asc") => step = 3,
                    _ => {}
                }
                query.sort.push((canonical_field(field), desc));
                i += step;
            }
            "limit" => {
                let n = tokens
                    .get(i + 1)
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| bad("limit needs a number"))?;
                query.limit = Some(n);
                i += 2;
            }
            field_tok => {
                let op_tok = tokens.get(i + 1).ok_or_else(|| bad("missing operator"))?;
                let op = match *op_tok {
                    "==" => CmpOp::Eq,
                    "!=" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Lte,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Gte,
                    other => return Err(bad(&format!("unknown operator {other:?}"))),
                };
                let value_tok = tokens.get(i + 2).ok_or_else(|| bad("missing value"))?;
                let field = canonical_field(field_tok);
                let mut consumed = 3;
                let value = if field == "timestamp" {
                    let unit = tokens.get(i + 3).copied();
                    let unit_valid = unit.is_some_and(|u| parse_time_value("1", Some(u)).is_some());
                    if unit_valid {
                        consumed = 4;
                    }
                    match parse_time_value(value_tok, if unit_valid { unit } else { None }) {
                        Some(us) => Value::from(us),
                        None => parse_value(&field, value_tok)?,
                    }
                } else {
                    parse_value(&field, value_tok)?
                };
                comparisons.push(Predicate::Cmp { field, op, value });
                i += consumed;
            }
        }
    }
    query.predicate = match comparisons.len() {
        0 => None,
        1 => comparisons.pop(),
        _ if any_or => Some(Predicate::Or(comparisons)),
        _ => Some(Predicate::And(comparisons)),
    };
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_store::doc;

    #[test]
    fn parses_the_papers_example() {
        let q = Query::parse("TCP_PORT==80 && time==1 day").unwrap();
        let Some(Predicate::And(ps)) = &q.predicate else {
            panic!("expected conjunction: {q:?}");
        };
        assert_eq!(ps.len(), 2);
        assert_eq!(
            ps[0],
            Predicate::Cmp {
                field: "tp_dst".into(),
                op: CmpOp::Eq,
                value: Value::from(80),
            }
        );
        assert_eq!(
            ps[1],
            Predicate::Cmp {
                field: "timestamp".into(),
                op: CmpOp::Eq,
                value: Value::from(86_400_000_000i64),
            }
        );
    }

    #[test]
    fn parses_all_six_operators() {
        for (text, op) in [
            ("x == 1", CmpOp::Eq),
            ("x != 1", CmpOp::Ne),
            ("x < 1", CmpOp::Lt),
            ("x <= 1", CmpOp::Lte),
            ("x > 1", CmpOp::Gt),
            ("x >= 1", CmpOp::Gte),
        ] {
            let q = Query::parse(text).unwrap();
            let Some(Predicate::Cmp { op: parsed, .. }) = q.predicate else {
                panic!("{text}");
            };
            assert_eq!(parsed, op, "{text}");
        }
    }

    #[test]
    fn parses_or_and_options() {
        let q = Query::parse("switch==6 or switch==3 sort timestamp asc limit 100").unwrap();
        assert!(matches!(q.predicate, Some(Predicate::Or(_))));
        assert_eq!(q.sort, vec![("timestamp".to_owned(), false)]);
        assert_eq!(q.limit, Some(100));
    }

    #[test]
    fn ip_values_become_raw_u32() {
        let q = Query::parse("IP_DST==10.0.0.5").unwrap();
        let Some(Predicate::Cmp { value, .. }) = &q.predicate else {
            panic!();
        };
        assert_eq!(
            value,
            &Value::from(athena_types::Ipv4Addr::new(10, 0, 0, 5).raw())
        );
    }

    #[test]
    fn filter_translation_matches_documents() {
        let q = Query::parse("message_type==FLOW_STATS && FLOW_PACKET_COUNT>10").unwrap();
        let f = q.to_filter();
        assert!(f.matches(&doc! {
            "message_type" => "FLOW_STATS",
            "FLOW_PACKET_COUNT" => 50,
        }));
        assert!(!f.matches(&doc! {
            "message_type" => "PORT_STATS",
            "FLOW_PACKET_COUNT" => 50,
        }));
        assert!(!f.matches(&doc! {
            "message_type" => "FLOW_STATS",
            "FLOW_PACKET_COUNT" => 5,
        }));
    }

    #[test]
    fn builder_and_parser_agree() {
        let parsed = Query::parse("tp_dst==80 && FLOW_BYTE_COUNT>=1000 limit 3").unwrap();
        let built = QueryBuilder::new()
            .eq("tp_dst", 80)
            .gte("FLOW_BYTE_COUNT", 1000)
            .limit(3)
            .build();
        assert_eq!(parsed.to_filter(), built.to_filter());
        assert_eq!(parsed.limit, built.limit);
    }

    #[test]
    fn in_predicate_for_suspicious_hosts() {
        let q = QueryBuilder::new()
            .is_in("ip_src", vec![Value::from(1u32), Value::from(2u32)])
            .build();
        let f = q.to_filter();
        assert!(f.matches(&doc! { "ip_src" => 2 }));
        assert!(!f.matches(&doc! { "ip_src" => 3 }));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(Query::parse("x ==").is_err());
        assert!(Query::parse("x ?? 3").is_err());
        assert!(Query::parse("limit abc").is_err());
        assert!(Query::parse("sort").is_err());
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = Query::parse("").unwrap();
        assert_eq!(q.to_filter(), Filter::All);
        assert!(q.to_filter().matches(&doc! { "anything" => 1 }));
    }

    #[test]
    fn time_units() {
        for (text, us) in [
            ("time>=1 day", 86_400_000_000i64),
            ("time>=2 hour", 7_200_000_000),
            ("time>=5 min", 300_000_000),
            ("time>=30 sec", 30_000_000),
            ("time>=7", 7_000_000),
        ] {
            let q = Query::parse(text).unwrap();
            let Some(Predicate::Cmp { value, .. }) = &q.predicate else {
                panic!("{text}");
            };
            assert_eq!(value, &Value::from(us), "{text}");
        }
    }
}
