//! The Athena northbound element (paper §III-A 2): query language,
//! feature manager, detector manager, reaction manager, resource manager,
//! and UI manager.

pub mod detector_manager;
pub mod feature_manager;
pub mod query;
pub mod reaction_manager;
pub mod resource_manager;
pub mod ui;
pub mod util;
