//! The UI Manager (paper §III-A 2E): result rendering.
//!
//! The paper's prototype uses JfreeChart; this reproduction renders the
//! same information as text — the Figure 6 validation report, Figure 9
//! style time-series as ASCII charts, CSV exports, and aligned tables.

use athena_ml::ValidationSummary;

/// A named time series: `(label, points as (time, value))`.
pub type Series = (String, Vec<(f64, f64)>);

/// Renders Athena results for operators (`ShowResults`).
#[derive(Debug, Clone, Default)]
pub struct UiManager {
    /// Chart width in characters.
    pub width: usize,
    /// Chart height in rows.
    pub height: usize,
}

impl UiManager {
    /// Creates a manager with an 72x16 chart canvas.
    pub fn new() -> Self {
        UiManager {
            width: 72,
            height: 16,
        }
    }

    /// Renders the Figure 6 validation report.
    pub fn render_summary(&self, summary: &ValidationSummary) -> String {
        let line = "-".repeat(self.width.max(20));
        format!("{line}\n{summary}{line}")
    }

    /// Renders time series as an ASCII chart (the Figure 9 view). Each
    /// series gets its own glyph; axes are annotated with ranges.
    pub fn render_series(&self, title: &str, series: &[Series]) -> String {
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];
        let (w, h) = (self.width.max(20), self.height.max(5));
        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{title}\n(no data)");
        }
        let (tmin, tmax) = min_max(all.iter().map(|p| p.0));
        let (vmin, vmax) = min_max(all.iter().map(|p| p.1));
        let tspan = (tmax - tmin).max(1e-12);
        let vspan = (vmax - vmin).max(1e-12);

        let mut canvas = vec![vec![' '; w]; h];
        for (si, (_, pts)) in series.iter().enumerate() {
            let glyph = glyphs[si % glyphs.len()];
            for (t, v) in pts {
                let x = (((t - tmin) / tspan) * (w as f64 - 1.0)).round() as usize;
                let y = (((v - vmin) / vspan) * (h as f64 - 1.0)).round() as usize;
                let row = h - 1 - y.min(h - 1);
                canvas[row][x.min(w - 1)] = glyph;
            }
        }
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        for (si, (label, _)) in series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", glyphs[si % glyphs.len()], label));
        }
        out.push_str(&format!("{vmax:>12.1} +{}\n", "-".repeat(w)));
        for row in canvas {
            out.push_str("             |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!("{vmin:>12.1} +{}\n", "-".repeat(w)));
        out.push_str(&format!(
            "{:>14}t={tmin:.0}s{}t={tmax:.0}s\n",
            "",
            " ".repeat(w.saturating_sub(16))
        ));
        out
    }

    /// Exports time series as CSV (`time,series1,series2,…` by sample
    /// index).
    pub fn to_csv(&self, series: &[Series]) -> String {
        let mut out = String::from("time");
        for (label, _) in series {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        let max_len = series.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
        for i in 0..max_len {
            let t = series
                .iter()
                .find_map(|(_, p)| p.get(i).map(|(t, _)| *t))
                .unwrap_or(i as f64);
            out.push_str(&format!("{t}"));
            for (_, pts) in series {
                match pts.get(i) {
                    Some((_, v)) => out.push_str(&format!(",{v}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders an aligned text table.
    pub fn render_table(&self, headers: &[&str], rows: &[Vec<String>]) -> String {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        out.push_str(&sep);
        out.push_str(&fmt_row(
            headers.iter().map(|h| (*h).to_owned()).collect(),
            &widths,
        ));
        out.push_str(&sep);
        for row in rows {
            out.push_str(&fmt_row(row.clone(), &widths));
        }
        out.push_str(&sep);
        out
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_ml::ConfusionMatrix;

    #[test]
    fn summary_rendering_contains_rates() {
        let ui = UiManager::new();
        let summary = ValidationSummary {
            confusion: ConfusionMatrix {
                true_positive: 90,
                false_negative: 10,
                true_negative: 95,
                false_positive: 5,
            },
            ..ValidationSummary::default()
        };
        let text = ui.render_summary(&summary);
        assert!(text.contains("Detection Rate : 0.9"));
        assert!(text.contains("Total : 200 entries"));
    }

    #[test]
    fn series_chart_plots_every_series() {
        let ui = UiManager::new();
        let s1: Series = (
            "sw6".into(),
            (0..20).map(|i| (f64::from(i), f64::from(i * 2))).collect(),
        );
        let s2: Series = (
            "sw3".into(),
            (0..20).map(|i| (f64::from(i), 10.0)).collect(),
        );
        let chart = ui.render_series("packet counts", &[s1, s2]);
        assert!(chart.contains("packet counts"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("sw6"));
    }

    #[test]
    fn empty_series_is_handled() {
        let ui = UiManager::new();
        assert!(ui.render_series("t", &[]).contains("no data"));
    }

    #[test]
    fn csv_export_shape() {
        let ui = UiManager::new();
        let s: Series = ("a".into(), vec![(0.0, 1.0), (1.0, 2.0)]);
        let csv = ui.to_csv(&[s]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a");
        assert_eq!(lines[1], "0,1");
        assert_eq!(lines[2], "1,2");
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let ui = UiManager::new();
        let t = ui.render_table(
            &["Category", "Value"],
            &[
                vec!["Switch".into(), "18 OF switches".into()],
                vec!["Link".into(), "48".into()],
            ],
        );
        assert!(t.contains("| Category |"));
        assert!(t.contains("| 18 OF switches |"));
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }
}
