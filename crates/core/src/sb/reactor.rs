//! The Attack Reactor (paper §III-A 1D): mitigation enforcement.
//!
//! Translates queued [`Reaction`]s into flow rules and hands them to the
//! Athena Proxy (the interceptor command path), "to avoid consistency
//! issues that might arise from issuing control messages to the data
//! plane without involving the controller".

use crate::nb::reaction_manager::{Reaction, ReactionManager};
use athena_openflow::{FlowMod, OfMessage};
use athena_types::{AppId, Dpid, Ipv4Addr, PortNo, Xid};
use std::collections::HashSet;

/// The application id mitigation rules are attributed to.
pub const ATHENA_APP: AppId = AppId::new(9);

/// Queues reactions and emits their flow rules through the proxy.
#[derive(Debug, Default)]
pub struct AttackReactor {
    manager: ReactionManager,
    queue: Vec<Reaction>,
    already_mitigated: HashSet<Ipv4Addr>,
    rules_issued: u64,
}

impl AttackReactor {
    /// Creates an empty reactor.
    pub fn new() -> Self {
        AttackReactor::default()
    }

    /// Queues a reaction. Hosts already mitigated are filtered out so a
    /// chatty validator does not reinstall rules every event.
    pub fn enqueue(&mut self, reaction: Reaction) {
        let fresh: Vec<Ipv4Addr> = reaction
            .targets()
            .iter()
            .filter(|t| !self.already_mitigated.contains(t))
            .copied()
            .collect();
        if fresh.is_empty() {
            return;
        }
        self.already_mitigated.extend(fresh.iter().copied());
        let filtered = match reaction {
            Reaction::Block { .. } => Reaction::Block { targets: fresh },
            Reaction::Quarantine { destination, .. } => Reaction::Quarantine {
                targets: fresh,
                destination,
            },
        };
        self.queue.push(filtered);
    }

    /// Hosts mitigated so far.
    pub fn mitigated_hosts(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self.already_mitigated.iter().copied().collect();
        v.sort();
        v
    }

    /// Mitigation rules issued so far.
    pub fn rules_issued(&self) -> u64 {
        self.rules_issued
    }

    /// `(blocks, quarantines)` counters.
    pub fn counters(&self) -> (u64, u64) {
        self.manager.counters()
    }

    /// Drains the queue into proxy commands, resolving host locations
    /// with `locate` and honeynet paths with `next_hop`.
    pub fn drain(
        &mut self,
        locate: impl Fn(Ipv4Addr) -> Option<(Dpid, PortNo)> + Copy,
        next_hop: impl Fn(Dpid, Ipv4Addr) -> Option<PortNo> + Copy,
    ) -> Vec<(Dpid, OfMessage)> {
        let mut out = Vec::new();
        for reaction in self.queue.drain(..) {
            for rule in self.manager.plan(&reaction, locate, next_hop) {
                self.rules_issued += 1;
                let fm: FlowMod = rule.flow_mod.with_app(ATHENA_APP);
                out.push((
                    rule.dpid,
                    OfMessage::FlowMod {
                        xid: Xid::athena_marked(self.rules_issued as u32),
                        body: fm,
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locate(ip: Ipv4Addr) -> Option<(Dpid, PortNo)> {
        Some((Dpid::new(u64::from(ip.octets()[3])), PortNo::new(1)))
    }

    fn next_hop(_from: Dpid, _dest: Ipv4Addr) -> Option<PortNo> {
        Some(PortNo::new(9))
    }

    #[test]
    fn enqueue_then_drain_emits_attributed_rules() {
        let mut r = AttackReactor::new();
        r.enqueue(Reaction::Block {
            targets: vec![Ipv4Addr::new(10, 0, 0, 1)],
        });
        let cmds = r.drain(locate, next_hop);
        assert_eq!(cmds.len(), 1);
        let OfMessage::FlowMod { body, xid } = &cmds[0].1 else {
            panic!("expected flow mod");
        };
        assert_eq!(body.app_id(), ATHENA_APP);
        assert!(xid.is_athena_marked());
        assert_eq!(r.rules_issued(), 1);
        // Queue is drained.
        assert!(r.drain(locate, next_hop).is_empty());
    }

    #[test]
    fn duplicate_targets_are_mitigated_once() {
        let mut r = AttackReactor::new();
        let block = Reaction::Block {
            targets: vec![Ipv4Addr::new(10, 0, 0, 2)],
        };
        r.enqueue(block.clone());
        r.enqueue(block);
        assert_eq!(r.drain(locate, next_hop).len(), 1);
        assert_eq!(r.mitigated_hosts().len(), 1);
    }

    #[test]
    fn mixed_reactions_count_separately() {
        let mut r = AttackReactor::new();
        r.enqueue(Reaction::Block {
            targets: vec![Ipv4Addr::new(10, 0, 0, 1)],
        });
        r.enqueue(Reaction::Quarantine {
            targets: vec![Ipv4Addr::new(10, 0, 0, 2)],
            destination: Ipv4Addr::new(10, 0, 0, 9),
        });
        let cmds = r.drain(locate, next_hop);
        assert_eq!(cmds.len(), 2);
        assert_eq!(r.counters(), (1, 1));
    }
}
