//! The Attack Detector (paper §III-A 1C): live-mode detection.
//!
//! Online validators — registered through the NB's `AddOnlineValidator` —
//! examine each incoming feature record against a detection model and
//! raise reactions for the Attack Reactor. Batch-mode detection runs in
//! the Detector Manager; this component is the live path.

use crate::feature::format::FeatureRecord;
use crate::nb::detector_manager::DetectionModel;
use crate::nb::query::Query;
use crate::nb::reaction_manager::Reaction;
use athena_store::Filter;

/// The verdict callback: inspects an alerting record and optionally
/// requests a mitigation.
pub type AlertHandler = Box<dyn FnMut(&FeatureRecord) -> Option<Reaction> + Send>;

struct OnlineValidator {
    name: String,
    filter: Filter,
    model: DetectionModel,
    on_alert: AlertHandler,
    examined: u64,
    alerts: u64,
}

/// Runs registered online validators over the live feature stream.
pub struct AttackDetector {
    validators: Vec<OnlineValidator>,
}

impl Default for AttackDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl AttackDetector {
    /// Creates a detector with no validators.
    pub fn new() -> Self {
        AttackDetector {
            validators: Vec::new(),
        }
    }

    /// Registers an online validator: records matching `query` are scored
    /// with `model`; malicious verdicts invoke `on_alert`. Returns the
    /// validator's index.
    pub fn add_validator(
        &mut self,
        name: impl Into<String>,
        query: &Query,
        model: DetectionModel,
        on_alert: AlertHandler,
    ) -> usize {
        self.validators.push(OnlineValidator {
            name: name.into(),
            filter: query.to_filter(),
            model,
            on_alert,
            examined: 0,
            alerts: 0,
        });
        self.validators.len() - 1
    }

    /// Atomically replaces validator `index`'s model, returning the one
    /// it displaces. Callers hold the detector lock for the duration,
    /// so every record scores against exactly one model: the old one up
    /// to the swap instant, the new one after — the hot-swap primitive
    /// of the streaming retrain loop. Returns `None` (and drops the
    /// candidate) when `index` names no validator.
    pub fn swap_model(&mut self, index: usize, model: DetectionModel) -> Option<DetectionModel> {
        let v = self.validators.get_mut(index)?;
        Some(std::mem::replace(&mut v.model, model))
    }

    /// Number of registered validators.
    pub fn validator_count(&self) -> usize {
        self.validators.len()
    }

    /// `(name, examined, alerts)` per validator.
    pub fn validator_stats(&self) -> Vec<(String, u64, u64)> {
        self.validators
            .iter()
            .map(|v| (v.name.clone(), v.examined, v.alerts))
            .collect()
    }

    /// Total alerts across validators.
    pub fn total_alerts(&self) -> u64 {
        self.validators.iter().map(|v| v.alerts).sum()
    }

    /// Examines one live record, returning any requested reactions.
    pub fn process(&mut self, record: &FeatureRecord) -> Vec<Reaction> {
        let mut reactions = Vec::new();
        // The document form is only built when some validator's query
        // needs evaluation.
        if self.validators.is_empty() {
            return reactions;
        }
        let doc = record.to_document();
        for v in &mut self.validators {
            if !v.filter.matches(&doc) {
                continue;
            }
            let Some(malicious) = v.model.is_malicious(record) else {
                continue;
            };
            v.examined += 1;
            if malicious {
                v.alerts += 1;
                if let Some(reaction) = (v.on_alert)(record) {
                    reactions.push(reaction);
                }
            }
        }
        reactions
    }
}

impl std::fmt::Debug for AttackDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackDetector")
            .field("validators", &self.validator_count())
            .field("alerts", &self.total_alerts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::format::FeatureIndex;
    use athena_compute::ComputeCluster;
    use athena_ml::{Algorithm, Preprocessor};
    use athena_types::{Dpid, Ipv4Addr};

    fn threshold_model() -> DetectionModel {
        // Threshold on FLOW_PACKET_COUNT >= 100; no learning needed, but
        // build through the manager for a realistic DetectionModel.
        let dm = crate::nb::detector_manager::DetectorManager::new(ComputeCluster::new(1));
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(1)));
        r.push_field("FLOW_PACKET_COUNT", 1.0);
        dm.generate_detection_model(
            &[r],
            &["FLOW_PACKET_COUNT".into()],
            |_| false,
            &Preprocessor::new(),
            &Algorithm::threshold(0, 100.0),
        )
        .unwrap()
    }

    fn record(switch: u64, packets: f64) -> FeatureRecord {
        let mut r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(switch)));
        r.meta.message_type = "FLOW_STATS".into();
        r.push_field("FLOW_PACKET_COUNT", packets);
        r
    }

    #[test]
    fn validator_fires_on_malicious_records_only() {
        let mut det = AttackDetector::new();
        det.add_validator(
            "ddos",
            &Query::all(),
            threshold_model(),
            Box::new(|_| {
                Some(Reaction::Block {
                    targets: vec![Ipv4Addr::new(10, 0, 0, 1)],
                })
            }),
        );
        assert!(det.process(&record(1, 10.0)).is_empty());
        let reactions = det.process(&record(1, 500.0));
        assert_eq!(reactions.len(), 1);
        assert_eq!(det.total_alerts(), 1);
        let stats = det.validator_stats();
        assert_eq!(stats[0].0, "ddos");
        assert_eq!(stats[0].1, 2); // examined both
    }

    #[test]
    fn query_scopes_the_validator() {
        let mut det = AttackDetector::new();
        det.add_validator(
            "sw1-only",
            &Query::parse("switch==1").unwrap(),
            threshold_model(),
            Box::new(|_| None),
        );
        det.process(&record(2, 500.0)); // other switch: ignored
        assert_eq!(det.total_alerts(), 0);
        det.process(&record(1, 500.0));
        assert_eq!(det.total_alerts(), 1);
    }

    #[test]
    fn alert_handler_may_decline_to_react() {
        let mut det = AttackDetector::new();
        det.add_validator(
            "observer",
            &Query::all(),
            threshold_model(),
            Box::new(|_| None),
        );
        assert!(det.process(&record(1, 500.0)).is_empty());
        assert_eq!(det.total_alerts(), 1);
    }

    #[test]
    fn records_without_model_features_are_skipped() {
        let mut det = AttackDetector::new();
        det.add_validator("v", &Query::all(), threshold_model(), Box::new(|_| None));
        let empty = FeatureRecord::new(FeatureIndex::switch(Dpid::new(1)));
        det.process(&empty);
        assert_eq!(det.validator_stats()[0].1, 0);
    }
}
