//! The SB Interface (paper §III-A 1A): one Athena southbound element per
//! controller instance.
//!
//! Implemented as a [`MessageInterceptor`] on the controller cluster —
//! the reproduction of the paper's `OpenFlowController` modification.
//! Each instance monitors the switches its controller masters, feeds the
//! [`FeatureGenerator`], publishes features through the shared
//! [`FeatureManager`](crate::nb::feature_manager::FeatureManager), runs
//! live validators, and drains the Attack Reactor through the proxy
//! command path. On its own cadence it issues Athena-marked statistics
//! requests (`Xid::athena_marked`), exactly as the paper describes.

use crate::athena::AthenaRuntime;
use crate::feature::generator::FeatureGenerator;
use athena_controller::{InterceptCtx, MessageInterceptor};
use athena_openflow::{MatchFields, OfMessage, StatsRequest};
use athena_telemetry::{Counter, Histogram};
use athena_types::{ControllerId, Dpid, PortNo, SimTime, Xid};
use std::sync::Arc;

/// One controller instance's Athena southbound element.
pub struct AthenaSouthbound {
    controller: ControllerId,
    name: String,
    generator: FeatureGenerator,
    runtime: Arc<AthenaRuntime>,
    last_poll: Option<SimTime>,
    last_gc: SimTime,
    next_xid: u32,
    feature_gen_ns: Histogram,
    dispatch_ns: Histogram,
    feature_records: Counter,
}

impl AthenaSouthbound {
    /// Creates the SB element for one controller instance.
    ///
    /// Instruments come from the runtime's [`Telemetry`] handle, labeled
    /// by controller instance (`sb-<id>`).
    ///
    /// [`Telemetry`]: athena_telemetry::Telemetry
    pub fn new(controller: ControllerId, runtime: Arc<AthenaRuntime>) -> Self {
        let m = runtime.telemetry.metrics();
        let instance = format!("sb-{}", controller.raw());
        AthenaSouthbound {
            controller,
            name: format!("athena-sb-{}", controller.raw()),
            generator: FeatureGenerator::new(controller),
            last_poll: None,
            last_gc: SimTime::ZERO,
            next_xid: 0,
            feature_gen_ns: m.histogram_with("core", "feature_gen_ns", &instance),
            dispatch_ns: m.histogram_with("core", "dispatch_ns", &instance),
            feature_records: m.counter("core", "feature_records"),
            runtime,
        }
    }

    /// The feature generator's record counter.
    pub fn records_generated(&self) -> u64 {
        self.generator.records_generated()
    }

    fn dispatch(
        &mut self,
        records: Vec<crate::feature::format::FeatureRecord>,
        ctx: &InterceptCtx<'_>,
        out: &mut Vec<(Dpid, OfMessage)>,
    ) {
        if records.is_empty() {
            return;
        }
        self.feature_records.add(records.len() as u64);
        let timer = self.dispatch_ns.start_timer();
        let resource = self.runtime.resource.lock();
        let mut fm = self.runtime.feature_manager.lock();
        let mut detector = self.runtime.detector.lock();
        let mut reactor = self.runtime.reactor.lock();
        for record in records {
            if !resource.allows(&record) {
                continue;
            }
            // Publication + event delivery; store failures surface as
            // dropped features, not panics.
            let _ = fm.ingest(&record);
            for reaction in detector.process(&record) {
                reactor.enqueue(reaction);
            }
        }
        drop((resource, fm, detector));
        out.extend(reactor.drain(
            |ip| ctx.hosts.location_of(ip),
            |from, dest| next_hop_toward(ctx, from, dest),
        ));
        timer.observe(&self.dispatch_ns);
    }

    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = self.next_xid.wrapping_add(1);
        Xid::athena_marked(self.next_xid)
    }
}

impl MessageInterceptor for AthenaSouthbound {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_southbound(
        &mut self,
        ctx: &InterceptCtx<'_>,
        from: Dpid,
        msg: &OfMessage,
        now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        // Each SB element monitors "its associated controller and those
        // switches that the controller directly manages".
        if ctx.mastership.master_of(from) != Some(self.controller) {
            return Vec::new();
        }
        let records = {
            let timer = self.feature_gen_ns.start_timer();
            let app_of = |cookie: u64| ctx.flow_rules.app_of_cookie(cookie);
            let records = self.generator.ingest(from, msg, now, &app_of);
            timer.observe(&self.feature_gen_ns);
            records
        };
        let mut out = Vec::new();
        self.dispatch(records, ctx, &mut out);
        out
    }

    fn on_tick(&mut self, ctx: &InterceptCtx<'_>, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let mut out = Vec::new();
        let (poll_interval, monitoring) = {
            let r = self.runtime.resource.lock();
            (r.poll_interval, r.monitoring_enabled)
        };

        // Athena's own marked statistics polling.
        let due = self
            .last_poll
            .is_none_or(|t| now.saturating_since(t) >= poll_interval);
        if due && monitoring {
            self.last_poll = Some(now);
            let mastered = ctx.mastership.switches_of(self.controller);
            for dpid in mastered {
                let allowed = self.runtime.resource.lock().allows_polling(dpid);
                if !allowed {
                    continue;
                }
                out.push((
                    dpid,
                    OfMessage::StatsRequest {
                        xid: self.fresh_xid(),
                        body: StatsRequest::Flow {
                            filter: MatchFields::new(),
                        },
                    },
                ));
                out.push((
                    dpid,
                    OfMessage::StatsRequest {
                        xid: self.fresh_xid(),
                        body: StatsRequest::Port {
                            port_no: PortNo::ANY,
                        },
                    },
                ));
                out.push((
                    dpid,
                    OfMessage::StatsRequest {
                        xid: self.fresh_xid(),
                        body: StatsRequest::Table,
                    },
                ));
            }
            // Flush the per-window message counters as features.
            let records = self.generator.flush_window(now);
            self.dispatch(records, ctx, &mut out);
        }

        // Garbage collection of outdated tracking entries.
        if now.saturating_since(self.last_gc) >= self.generator.ttl {
            self.last_gc = now;
            self.generator.gc(now);
        }

        // Drain any reactions raised outside the message path (e.g. the
        // NB `Reactor` API).
        let mut reactor = self.runtime.reactor.lock();
        out.extend(reactor.drain(
            |ip| ctx.hosts.location_of(ip),
            |from, dest| next_hop_toward(ctx, from, dest),
        ));
        out
    }
}

/// The egress port from `from` toward the host `dest` (first hop of the
/// shortest path, or the access port when `dest` attaches to `from`).
fn next_hop_toward(
    ctx: &InterceptCtx<'_>,
    from: Dpid,
    dest: athena_types::Ipv4Addr,
) -> Option<PortNo> {
    let (dst_switch, dst_port) = ctx.hosts.location_of(dest)?;
    if from == dst_switch {
        return Some(dst_port);
    }
    ctx.topology
        .shortest_path(from, dst_switch)?
        .first()
        .map(|(_, p)| *p)
}

impl std::fmt::Debug for AthenaSouthbound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AthenaSouthbound")
            .field("controller", &self.controller)
            .field("records_generated", &self.records_generated())
            .finish()
    }
}
