//! The SB Interface (paper §III-A 1A): one Athena southbound element per
//! controller instance.
//!
//! Implemented as a [`MessageInterceptor`] on the controller cluster —
//! the reproduction of the paper's `OpenFlowController` modification.
//! Each instance monitors the switches its controller masters, feeds the
//! [`FeatureGenerator`], publishes features through the shared
//! [`FeatureManager`](crate::nb::feature_manager::FeatureManager), runs
//! live validators, and drains the Attack Reactor through the proxy
//! command path. On its own cadence it issues Athena-marked statistics
//! requests (`Xid::athena_marked`), exactly as the paper describes.

use crate::athena::AthenaRuntime;
use crate::feature::generator::FeatureGenerator;
use athena_controller::{InterceptCtx, MessageInterceptor, RetryCounters, RetryPolicy};
use athena_observe::Observe;
use athena_openflow::{MatchFields, OfMessage, StatsRequest};
use athena_telemetry::{names, Counter, Histogram};
use athena_types::{ControllerId, Dpid, PortNo, SimTime, Xid};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One Athena-marked statistics request awaiting its reply.
#[derive(Debug, Clone)]
struct OutstandingPoll {
    dpid: Dpid,
    body: StatsRequest,
    issued_at: SimTime,
    attempt: u32,
}

/// One controller instance's Athena southbound element.
pub struct AthenaSouthbound {
    controller: ControllerId,
    name: String,
    generator: FeatureGenerator,
    runtime: Arc<AthenaRuntime>,
    last_poll: Option<SimTime>,
    last_gc: SimTime,
    next_xid: u32,
    retry: RetryPolicy,
    retry_counters: RetryCounters,
    // Keyed by raw marked XID; BTreeMap keeps timeout scans deterministic.
    outstanding: BTreeMap<u32, OutstandingPoll>,
    feature_gen_ns: Histogram,
    dispatch_ns: Histogram,
    feature_records: Counter,
    timeouts_tel: Counter,
    retries_tel: Counter,
    gave_up_tel: Counter,
    observe: Observe,
}

impl AthenaSouthbound {
    /// Creates the SB element for one controller instance.
    ///
    /// Instruments come from the runtime's [`Telemetry`] handle, labeled
    /// by controller instance (`sb-<id>`).
    ///
    /// [`Telemetry`]: athena_telemetry::Telemetry
    pub fn new(controller: ControllerId, runtime: Arc<AthenaRuntime>) -> Self {
        let m = runtime.telemetry.metrics();
        let instance = format!("sb-{}", controller.raw());
        AthenaSouthbound {
            controller,
            name: format!("athena-sb-{}", controller.raw()),
            generator: FeatureGenerator::new(controller),
            last_poll: None,
            last_gc: SimTime::ZERO,
            next_xid: 0,
            retry: runtime.poll_retry,
            retry_counters: RetryCounters::default(),
            outstanding: BTreeMap::new(),
            feature_gen_ns: m.histogram_with(
                names::core::SUBSYSTEM,
                names::core::FEATURE_GEN_NS,
                &instance,
            ),
            dispatch_ns: m.histogram_with(
                names::core::SUBSYSTEM,
                names::core::DISPATCH_NS,
                &instance,
            ),
            feature_records: m.counter(names::core::SUBSYSTEM, names::core::FEATURE_RECORDS),
            timeouts_tel: m.counter(names::retry::SUBSYSTEM, names::retry::SB_STATS_TIMEOUTS),
            retries_tel: m.counter(names::retry::SUBSYSTEM, names::retry::SB_STATS_RETRIES),
            gave_up_tel: m.counter(names::retry::SUBSYSTEM, names::retry::SB_STATS_GAVE_UP),
            observe: runtime.observe.clone(),
            runtime,
        }
    }

    /// The feature generator's record counter.
    pub fn records_generated(&self) -> u64 {
        self.generator.records_generated()
    }

    /// Retry counters for Athena-marked statistics polls.
    pub fn retry_counters(&self) -> RetryCounters {
        self.retry_counters
    }

    /// Athena-marked polls still awaiting a reply.
    pub fn outstanding_polls(&self) -> usize {
        self.outstanding.len()
    }

    fn dispatch(
        &mut self,
        records: Vec<crate::feature::format::FeatureRecord>,
        ctx: &InterceptCtx<'_>,
        out: &mut Vec<(Dpid, OfMessage)>,
    ) {
        if records.is_empty() {
            return;
        }
        self.feature_records.add(records.len() as u64);
        let span = self.observe.span("core", "dispatch");
        let n_records = records.len();
        let timer = self.dispatch_ns.start_timer();
        let resource = self.runtime.resource.lock();
        let mut fm = self.runtime.feature_manager.lock();
        let mut detector = self.runtime.detector.lock();
        let mut reactor = self.runtime.reactor.lock();
        let mut verdicts = 0usize;
        for record in records {
            if !resource.allows(&record) {
                continue;
            }
            // Publication + event delivery; store failures surface as
            // dropped features, not panics.
            let _ = fm.ingest(&record);
            let reactions = detector.process(&record);
            if !reactions.is_empty() {
                verdicts += 1;
                self.observe.event(
                    "core",
                    "verdict",
                    format!(
                        "malicious {}: {} reactions",
                        record.meta.message_type,
                        reactions.len()
                    ),
                );
            }
            for reaction in reactions {
                reactor.enqueue(reaction);
            }
        }
        drop((resource, fm, detector));
        out.extend(reactor.drain(
            |ip| ctx.hosts.location_of(ip),
            |from, dest| next_hop_toward(ctx, from, dest),
        ));
        timer.observe(&self.dispatch_ns);
        span.finish(format!("{n_records} records, {verdicts} verdicts"));
    }

    fn fresh_xid(&mut self) -> Xid {
        self.next_xid = self.next_xid.wrapping_add(1);
        Xid::athena_marked(self.next_xid)
    }

    /// Issues one Athena-marked statistics request and registers it for
    /// timeout tracking.
    fn issue_poll(
        &mut self,
        dpid: Dpid,
        body: StatsRequest,
        now: SimTime,
        attempt: u32,
        out: &mut Vec<(Dpid, OfMessage)>,
    ) {
        let xid = self.fresh_xid();
        self.outstanding.insert(
            xid.raw(),
            OutstandingPoll {
                dpid,
                body: body.clone(),
                issued_at: now,
                attempt,
            },
        );
        out.push((dpid, OfMessage::StatsRequest { xid, body }));
    }

    /// Reissues timed-out marked polls with bounded exponential backoff;
    /// gives up past `max_retries` (and on switches this controller no
    /// longer masters).
    fn drain_timeouts(
        &mut self,
        ctx: &InterceptCtx<'_>,
        now: SimTime,
        out: &mut Vec<(Dpid, OfMessage)>,
    ) {
        let due: Vec<u32> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                now.saturating_since(o.issued_at) >= self.retry.deadline_after(o.attempt)
            })
            .map(|(xid, _)| *xid)
            .collect();
        for xid in due {
            let Some(o) = self.outstanding.remove(&xid) else {
                continue;
            };
            self.retry_counters.timeouts += 1;
            self.timeouts_tel.inc();
            let still_mastered = ctx.mastership.master_of(o.dpid) == Some(self.controller);
            if o.attempt >= self.retry.max_retries || !still_mastered {
                self.retry_counters.gave_up += 1;
                self.gave_up_tel.inc();
                continue;
            }
            self.retry_counters.retries += 1;
            self.retries_tel.inc();
            self.issue_poll(o.dpid, o.body, now, o.attempt + 1, out);
        }
    }
}

impl MessageInterceptor for AthenaSouthbound {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_southbound(
        &mut self,
        ctx: &InterceptCtx<'_>,
        from: Dpid,
        msg: &OfMessage,
        now: SimTime,
    ) -> Vec<(Dpid, OfMessage)> {
        // Each SB element monitors "its associated controller and those
        // switches that the controller directly manages".
        if ctx.mastership.master_of(from) != Some(self.controller) {
            return Vec::new();
        }
        // Settle the marked poll this reply answers.
        if let OfMessage::StatsReply { xid, .. } = msg {
            if xid.is_athena_marked() {
                self.outstanding.remove(&xid.raw());
            }
        }
        let records = {
            let span = self.observe.span_at("core", "feature_gen", now);
            let timer = self.feature_gen_ns.start_timer();
            let app_of = |cookie: u64| ctx.flow_rules.app_of_cookie(cookie);
            let records = self.generator.ingest(from, msg, now, &app_of);
            timer.observe(&self.feature_gen_ns);
            span.finish(format!("{} records", records.len()));
            records
        };
        let mut out = Vec::new();
        self.dispatch(records, ctx, &mut out);
        out
    }

    fn on_tick(&mut self, ctx: &InterceptCtx<'_>, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        let mut out = Vec::new();
        let (poll_interval, monitoring) = {
            let r = self.runtime.resource.lock();
            (r.poll_interval, r.monitoring_enabled)
        };

        // Reissue timed-out marked polls before scheduling new ones.
        self.drain_timeouts(ctx, now, &mut out);

        // Athena's own marked statistics polling.
        let due = self
            .last_poll
            .is_none_or(|t| now.saturating_since(t) >= poll_interval);
        if due && monitoring {
            self.last_poll = Some(now);
            let mastered = ctx.mastership.switches_of(self.controller);
            for dpid in mastered {
                let allowed = self.runtime.resource.lock().allows_polling(dpid);
                if !allowed {
                    continue;
                }
                self.issue_poll(
                    dpid,
                    StatsRequest::Flow {
                        filter: MatchFields::new(),
                    },
                    now,
                    0,
                    &mut out,
                );
                self.issue_poll(
                    dpid,
                    StatsRequest::Port {
                        port_no: PortNo::ANY,
                    },
                    now,
                    0,
                    &mut out,
                );
                self.issue_poll(dpid, StatsRequest::Table, now, 0, &mut out);
            }
            // Flush the per-window message counters as features.
            let records = self.generator.flush_window(now);
            self.dispatch(records, ctx, &mut out);
        }

        // Garbage collection of outdated tracking entries.
        if now.saturating_since(self.last_gc) >= self.generator.ttl {
            self.last_gc = now;
            self.generator.gc(now);
        }

        // Drain any reactions raised outside the message path (e.g. the
        // NB `Reactor` API).
        let mut reactor = self.runtime.reactor.lock();
        out.extend(reactor.drain(
            |ip| ctx.hosts.location_of(ip),
            |from, dest| next_hop_toward(ctx, from, dest),
        ));
        out
    }
}

/// The egress port from `from` toward the host `dest` (first hop of the
/// shortest path, or the access port when `dest` attaches to `from`).
fn next_hop_toward(
    ctx: &InterceptCtx<'_>,
    from: Dpid,
    dest: athena_types::Ipv4Addr,
) -> Option<PortNo> {
    let (dst_switch, dst_port) = ctx.hosts.location_of(dest)?;
    if from == dst_switch {
        return Some(dst_port);
    }
    ctx.topology
        .shortest_path(from, dst_switch)?
        .first()
        .map(|(_, p)| *p)
}

impl std::fmt::Debug for AthenaSouthbound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AthenaSouthbound")
            .field("controller", &self.controller)
            .field("records_generated", &self.records_generated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::athena::{Athena, AthenaConfig};
    use athena_controller::{FlowRuleService, HostService, MastershipService};
    use athena_dataplane::Topology;
    use athena_openflow::StatsReply;
    use athena_telemetry::Telemetry;

    struct Ctx {
        flow_rules: FlowRuleService,
        hosts: HostService,
        mastership: MastershipService,
        topology: Topology,
    }

    impl Ctx {
        fn new() -> Self {
            let topology = Topology::enterprise();
            Ctx {
                flow_rules: FlowRuleService::new(),
                hosts: HostService::from_topology(&topology),
                mastership: MastershipService::from_topology(&topology),
                topology,
            }
        }

        fn borrow(&self, controller: ControllerId) -> InterceptCtx<'_> {
            InterceptCtx {
                controller,
                flow_rules: &self.flow_rules,
                hosts: &self.hosts,
                mastership: &self.mastership,
                topology: &self.topology,
            }
        }
    }

    fn sb(tel: Telemetry) -> AthenaSouthbound {
        let athena = Athena::with_telemetry(AthenaConfig::default(), tel);
        athena.southbound(ControllerId::new(0))
    }

    fn marked_stats_requests(out: &[(Dpid, OfMessage)]) -> Vec<(Dpid, Xid)> {
        out.iter()
            .filter_map(|(d, m)| match m {
                OfMessage::StatsRequest { xid, .. } if xid.is_athena_marked() => Some((*d, *xid)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn replies_settle_marked_polls() {
        let ctx = Ctx::new();
        let mut sb = sb(Telemetry::off());
        let out = sb.on_tick(&ctx.borrow(ControllerId::new(0)), SimTime::from_secs(5));
        let issued = marked_stats_requests(&out);
        assert!(!issued.is_empty());
        assert_eq!(sb.outstanding_polls(), issued.len());
        for (dpid, xid) in issued {
            sb.on_southbound(
                &ctx.borrow(ControllerId::new(0)),
                dpid,
                &OfMessage::StatsReply {
                    xid,
                    body: StatsReply::Table(Vec::new()),
                },
                SimTime::from_secs(5),
            );
        }
        assert_eq!(sb.outstanding_polls(), 0);
        assert_eq!(sb.retry_counters(), RetryCounters::default());
    }

    #[test]
    fn lost_replies_are_retried_with_backoff_then_dropped() {
        let ctx = Ctx::new();
        let tel = Telemetry::new();
        let mut sb = sb(tel.clone());
        // Issue one poll round; never answer it.
        let out = sb.on_tick(&ctx.borrow(ControllerId::new(0)), SimTime::from_secs(5));
        let issued = marked_stats_requests(&out).len();
        assert!(issued > 0);
        // Stop new interval polls from mixing in: disable monitoring.
        sb.runtime.resource.lock().monitoring_enabled = false;
        let policy = RetryPolicy::default();
        let mut now = SimTime::from_secs(5);
        // Walk far enough for every attempt to expire (attempts 0..=max).
        for _ in 0..=policy.max_retries {
            now += policy.backoff_cap;
            let out = sb.on_tick(&ctx.borrow(ControllerId::new(0)), now);
            // Retries re-issue the same stats bodies with fresh marked xids.
            for (_, msg) in &out {
                if let OfMessage::StatsRequest { xid, .. } = msg {
                    assert!(xid.is_athena_marked());
                }
            }
        }
        now += policy.backoff_cap;
        sb.on_tick(&ctx.borrow(ControllerId::new(0)), now);
        let c = sb.retry_counters();
        assert_eq!(c.retries, issued as u64 * u64::from(policy.max_retries));
        assert_eq!(c.gave_up, issued as u64);
        assert_eq!(c.timeouts, c.retries + c.gave_up);
        assert_eq!(sb.outstanding_polls(), 0);
        let m = tel.metrics();
        assert_eq!(m.counter("retry", "sb_stats_timeouts").get(), c.timeouts);
        assert_eq!(m.counter("retry", "sb_stats_gave_up").get(), c.gave_up);
    }

    #[test]
    fn polls_for_lost_mastership_are_abandoned_not_retried() {
        let ctx = Ctx::new();
        let mut sb = sb(Telemetry::off());
        let out = sb.on_tick(&ctx.borrow(ControllerId::new(0)), SimTime::from_secs(5));
        let issued = marked_stats_requests(&out).len();
        assert!(issued > 0);
        sb.runtime.resource.lock().monitoring_enabled = false;
        // Mastership moves away (e.g. this instance crashed and rejoined
        // elsewhere): outstanding polls are abandoned on expiry.
        let mut moved = Ctx::new();
        for s in &mut moved.topology.switches {
            s.controller = ControllerId::new(1);
        }
        moved.mastership = MastershipService::from_topology(&moved.topology);
        let later = SimTime::from_secs(5) + RetryPolicy::default().backoff_cap;
        let out = sb.on_tick(&moved.borrow(ControllerId::new(0)), later);
        assert!(marked_stats_requests(&out).is_empty());
        let c = sb.retry_counters();
        assert_eq!(c.gave_up, issued as u64);
        assert_eq!(c.retries, 0);
        assert_eq!(sb.outstanding_polls(), 0);
    }
}
