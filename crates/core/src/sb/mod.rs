//! The Athena southbound element (paper §III-A 1): the SB interface that
//! taps the control-message stream, the Attack Detector running live
//! validators, and the Attack Reactor pushing mitigation through the
//! Athena proxy.

pub mod detector;
pub mod interface;
pub mod reactor;
