//! The Athena feature model: format, catalog, and generator.

pub mod catalog;
pub mod format;
pub mod generator;
pub mod window;
