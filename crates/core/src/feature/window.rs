//! The one windowing definition shared by the batch Feature Generator
//! and the streaming pipeline (`crates/stream`).
//!
//! Both paths must agree byte-for-byte on where windows begin and end
//! and on how a raw count becomes a per-second rate — otherwise the
//! streaming verdicts drift from the batch verdicts and the
//! incremental-equals-batch gates cannot hold. [`Windowing`] owns that
//! math; [`Windowing::boundaries`] is the public boundary iterator the
//! stream crate walks instead of copy-pasting window arithmetic.

use athena_types::{SimDuration, SimTime};

/// A fixed-width tumbling/sliding window definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windowing {
    width: SimDuration,
}

impl Windowing {
    /// A windowing of the given width. Zero widths are accepted (the
    /// rate denominator is floored, matching the historical batch
    /// behaviour) but produce a degenerate single-boundary iterator.
    pub fn new(width: SimDuration) -> Self {
        Windowing { width }
    }

    /// The window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// The rate denominator in seconds, floored exactly like the
    /// original batch path (`as_secs_f64().max(1e-9)`) so refactored
    /// callers stay byte-identical.
    pub fn secs(&self) -> f64 {
        self.width.as_secs_f64().max(1e-9)
    }

    /// Converts an integer count observed over one window into a
    /// per-second rate. This is the only rate formula in the workspace;
    /// batch (`flush_window`) and stream (`RingWindow`) both call it.
    pub fn rate(&self, count: u64) -> f64 {
        self.rate_f64(count as f64)
    }

    /// [`Windowing::rate`] for an already-converted numerator (byte
    /// deltas, utilization numerators).
    pub fn rate_f64(&self, value: f64) -> f64 {
        value / self.secs()
    }

    /// The index of the window containing `at` (window `i` spans
    /// `[i*width, (i+1)*width)`). Degenerate zero-width windowings map
    /// everything to window 0.
    pub fn index_of(&self, at: SimTime) -> u64 {
        let w = self.width.as_micros();
        if w == 0 {
            return 0;
        }
        at.as_micros() / w
    }

    /// The closing boundary of window `index`, saturating at
    /// [`SimTime::MAX`].
    pub fn close_of(&self, index: u64) -> SimTime {
        let w = self.width.as_micros();
        SimTime::from_micros(index.saturating_add(1).saturating_mul(w))
    }

    /// Iterator over every window boundary in `(from, until]`, in
    /// order: the virtual times at which a window closes and its
    /// aggregates must match a full batch recompute. This is the public
    /// seam the stream crate aligns to — one windowing definition, two
    /// consumers.
    pub fn boundaries(&self, from: SimTime, until: SimTime) -> Boundaries {
        Boundaries {
            windowing: *self,
            next_index: if self.width.is_zero() {
                u64::MAX // empty iterator for degenerate widths
            } else {
                self.index_of(from)
            },
            until,
        }
    }
}

/// Iterator over window-close boundaries; see
/// [`Windowing::boundaries`].
#[derive(Debug, Clone)]
pub struct Boundaries {
    windowing: Windowing,
    next_index: u64,
    until: SimTime,
}

impl Iterator for Boundaries {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next_index == u64::MAX {
            return None;
        }
        let close = self.windowing.close_of(self.next_index);
        if close > self.until {
            return None;
        }
        self.next_index += 1;
        Some(close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_historical_batch_formula() {
        let w = Windowing::new(SimDuration::from_secs(5));
        // 10 packet-ins over a 5 s window: the generator's documented
        // MSG_PACKET_IN_RATE.
        assert_eq!(w.rate(10), 2.0);
        // Bitwise identical to the inline expression it replaced.
        let window_secs = SimDuration::from_secs(5).as_secs_f64().max(1e-9);
        assert_eq!(w.rate(7).to_bits(), (7.0f64 / window_secs).to_bits());
    }

    #[test]
    fn zero_width_is_floored_not_infinite() {
        let w = Windowing::new(SimDuration::ZERO);
        assert!(w.rate(1).is_finite());
        assert_eq!(
            w.boundaries(SimTime::ZERO, SimTime::from_secs(10)).count(),
            0
        );
    }

    #[test]
    fn boundaries_cover_half_open_windows() {
        let w = Windowing::new(SimDuration::from_secs(5));
        let b: Vec<u64> = w
            .boundaries(SimTime::ZERO, SimTime::from_secs(16))
            .map(|t| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(b, vec![5, 10, 15]);
        // Starting mid-window yields that window's close first.
        let b: Vec<u64> = w
            .boundaries(SimTime::from_secs(7), SimTime::from_secs(15))
            .map(|t| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(b, vec![10, 15]);
        assert_eq!(w.index_of(SimTime::from_secs(7)), 1);
        assert_eq!(w.close_of(1), SimTime::from_secs(10));
    }
}
