//! The Athena feature catalog.
//!
//! The paper exposes "over 100 network monitoring features" in three
//! categories (Table I): *protocol-centric* features read directly from
//! OpenFlow control messages, *combination* features derived by
//! pre-defined formulas, and *stateful* features reflecting tracked
//! network state — each with `_VAR` variation derivatives computed
//! against the previous sample.

use serde::{Deserialize, Serialize};

/// The feature categories of Table I (plus the variation derivative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureCategory {
    /// Derived from SDN control messages directly.
    ProtocolCentric,
    /// Combined features derived by pre-defined formulas.
    Combination,
    /// Features reflecting tracked network state.
    Stateful,
    /// Change of a feature since the previous sample.
    Variation,
}

/// Per-flow protocol-centric features (from `FLOW_STATS` replies and
/// `FLOW_REMOVED` messages).
pub const FLOW_FEATURES: &[&str] = &[
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_DURATION_SEC",
    "FLOW_DURATION_NSEC",
    "FLOW_PRIORITY",
    "FLOW_IDLE_TIMEOUT",
    "FLOW_HARD_TIMEOUT",
    "FLOW_TABLE_ID",
    "FLOW_IP_PROTO",
    "FLOW_IP_SRC",
    "FLOW_IP_DST",
    "FLOW_TP_SRC",
    "FLOW_TP_DST",
    "FLOW_ETH_TYPE",
    "FLOW_ACTION_OUTPUT_PORT",
];

/// Per-flow combination features.
pub const FLOW_COMBINATION_FEATURES: &[&str] = &[
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
    "FLOW_UTILIZATION",
];

/// Per-flow stateful features.
pub const FLOW_STATEFUL_FEATURES: &[&str] = &[
    "PAIR_FLOW",
    "PAIR_FLOW_RATIO",
    "FLOW_APP_ID",
    "FLOW_ORIGIN_REACTIVE",
];

/// Per-flow variation features.
pub const FLOW_VARIATION_FEATURES: &[&str] = &[
    "FLOW_PACKET_COUNT_VAR",
    "FLOW_BYTE_COUNT_VAR",
    "FLOW_DURATION_SEC_VAR",
    "FLOW_BYTE_PER_PACKET_VAR",
];

/// Per-port protocol-centric counters (from `PORT_STATS` replies).
pub const PORT_FEATURES: &[&str] = &[
    "PORT_RX_PACKETS",
    "PORT_TX_PACKETS",
    "PORT_RX_BYTES",
    "PORT_TX_BYTES",
    "PORT_RX_DROPPED",
    "PORT_TX_DROPPED",
    "PORT_RX_ERRORS",
    "PORT_TX_ERRORS",
];

/// Per-port variation features.
pub const PORT_VARIATION_FEATURES: &[&str] = &[
    "PORT_RX_PACKETS_VAR",
    "PORT_TX_PACKETS_VAR",
    "PORT_RX_BYTES_VAR",
    "PORT_TX_BYTES_VAR",
    "PORT_RX_DROPPED_VAR",
    "PORT_TX_DROPPED_VAR",
    "PORT_RX_ERRORS_VAR",
    "PORT_TX_ERRORS_VAR",
];

/// Per-port combination features.
pub const PORT_COMBINATION_FEATURES: &[&str] = &[
    "PORT_RX_BYTE_PER_PACKET",
    "PORT_TX_BYTE_PER_PACKET",
    "PORT_RX_UTILIZATION",
    "PORT_TX_UTILIZATION",
    "PORT_DROP_RATIO",
];

/// Per-table features (from `TABLE_STATS` replies).
pub const TABLE_FEATURES: &[&str] = &[
    "TABLE_ACTIVE_COUNT",
    "TABLE_LOOKUP_COUNT",
    "TABLE_MATCHED_COUNT",
    "TABLE_MISS_RATIO",
    "TABLE_ACTIVE_COUNT_VAR",
    "TABLE_LOOKUP_COUNT_VAR",
];

/// Per-event packet-in features (derived from each `PACKET_IN` directly —
/// the per-message protocol-centric path that dominates Athena's Table IX
/// overhead).
pub const PACKET_IN_FEATURES: &[&str] =
    &["PACKET_IN_BYTE_LEN", "PACKET_IN_PORT", "PACKET_IN_BUFFERED"];

/// Flow-removed features.
pub const FLOW_REMOVED_FEATURES: &[&str] = &[
    "REMOVED_PACKET_COUNT",
    "REMOVED_BYTE_COUNT",
    "REMOVED_DURATION_SEC",
    "REMOVED_REASON_IDLE",
    "REMOVED_REASON_HARD",
    "REMOVED_REASON_DELETE",
    "REMOVED_BYTE_PER_PACKET",
];

/// Per-switch control-plane message counters (the paper's eight major SDN
/// operational functions each map to message types the SB interface
/// watches), sampled per window with rates and variations.
pub const MESSAGE_FEATURES: &[&str] = &[
    "MSG_PACKET_IN_COUNT",
    "MSG_PACKET_OUT_COUNT",
    "MSG_FLOW_MOD_COUNT",
    "MSG_FLOW_REMOVED_COUNT",
    "MSG_PORT_STATUS_COUNT",
    "MSG_STATS_REQUEST_COUNT",
    "MSG_STATS_REPLY_COUNT",
    "MSG_ECHO_COUNT",
    "MSG_BARRIER_COUNT",
    "MSG_PACKET_IN_RATE",
    "MSG_FLOW_MOD_RATE",
    "MSG_FLOW_REMOVED_RATE",
    "MSG_PACKET_IN_COUNT_VAR",
    "MSG_FLOW_MOD_COUNT_VAR",
    "MSG_PACKET_OUT_COUNT_VAR",
    "MSG_TOTAL_COUNT",
];

/// Per-switch stateful aggregates.
pub const SWITCH_STATEFUL_FEATURES: &[&str] = &[
    "SWITCH_FLOW_COUNT",
    "SWITCH_PAIR_FLOW_COUNT",
    "SWITCH_PAIR_FLOW_RATIO",
    "SWITCH_AVG_FLOW_DURATION",
    "SWITCH_UNIQUE_SRC_COUNT",
    "SWITCH_UNIQUE_DST_COUNT",
    "SWITCH_SRC_DST_RATIO",
    "SWITCH_APP_FLOW_COUNT",
    "SWITCH_PACKET_COUNT_TOTAL",
    "SWITCH_BYTE_COUNT_TOTAL",
];

/// Per-host stateful aggregates (derived from each switch's flow-stats
/// snapshot, keyed by host address).
pub const HOST_FEATURES: &[&str] = &[
    "HOST_OUT_FLOW_COUNT",
    "HOST_IN_FLOW_COUNT",
    "HOST_TX_BYTES",
    "HOST_RX_BYTES",
    "HOST_TX_PACKETS",
    "HOST_RX_PACKETS",
    "HOST_FANOUT",
    "HOST_FANIN",
    "HOST_PAIR_RATIO",
];

/// Control-plane-wide features (per controller instance).
pub const CONTROL_PLANE_FEATURES: &[&str] = &[
    "CTRL_MASTERED_SWITCHES",
    "CTRL_KNOWN_HOSTS",
    "CTRL_LIVE_RULES",
    "CTRL_RULES_PER_APP",
    "CTRL_INSTALL_RATE",
    "CTRL_REMOVAL_RATE",
];

/// Every feature name in the catalog.
pub fn all_features() -> Vec<&'static str> {
    let mut v = Vec::new();
    v.extend_from_slice(FLOW_FEATURES);
    v.extend_from_slice(FLOW_COMBINATION_FEATURES);
    v.extend_from_slice(FLOW_STATEFUL_FEATURES);
    v.extend_from_slice(FLOW_VARIATION_FEATURES);
    v.extend_from_slice(PORT_FEATURES);
    v.extend_from_slice(PORT_VARIATION_FEATURES);
    v.extend_from_slice(PORT_COMBINATION_FEATURES);
    v.extend_from_slice(TABLE_FEATURES);
    v.extend_from_slice(PACKET_IN_FEATURES);
    v.extend_from_slice(FLOW_REMOVED_FEATURES);
    v.extend_from_slice(MESSAGE_FEATURES);
    v.extend_from_slice(SWITCH_STATEFUL_FEATURES);
    v.extend_from_slice(HOST_FEATURES);
    v.extend_from_slice(CONTROL_PLANE_FEATURES);
    v
}

/// The category of a feature name.
pub fn category_of(name: &str) -> FeatureCategory {
    if name.ends_with("_VAR") {
        FeatureCategory::Variation
    } else if FLOW_COMBINATION_FEATURES.contains(&name)
        || PORT_COMBINATION_FEATURES.contains(&name)
        || name == "TABLE_MISS_RATIO"
        || name == "REMOVED_BYTE_PER_PACKET"
        || name.ends_with("_RATE")
    {
        FeatureCategory::Combination
    } else if FLOW_STATEFUL_FEATURES.contains(&name)
        || SWITCH_STATEFUL_FEATURES.contains(&name)
        || HOST_FEATURES.contains(&name)
        || CONTROL_PLANE_FEATURES.contains(&name)
    {
        FeatureCategory::Stateful
    } else {
        FeatureCategory::ProtocolCentric
    }
}

/// The 10-tuple flow feature set the paper's DDoS detector uses
/// (Table V's candidates, ten of them, vs. Braga et al.'s 6-tuple).
pub const DDOS_10_TUPLE: &[&str] = &[
    "PAIR_FLOW",
    "PAIR_FLOW_RATIO",
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
    "FLOW_DURATION_SEC",
    "FLOW_DURATION_NSEC",
    "FLOW_TP_DST",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_exposes_over_100_features() {
        let all = all_features();
        assert!(all.len() > 100, "only {} features", all.len());
    }

    #[test]
    fn feature_names_are_unique() {
        let all = all_features();
        let set: HashSet<&str> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn every_table_i_category_is_represented() {
        let all = all_features();
        for cat in [
            FeatureCategory::ProtocolCentric,
            FeatureCategory::Combination,
            FeatureCategory::Stateful,
            FeatureCategory::Variation,
        ] {
            assert!(all.iter().any(|f| category_of(f) == cat), "{cat:?} missing");
        }
    }

    #[test]
    fn categories_match_the_paper_examples() {
        // Table I's examples: packet/byte counts are protocol-centric,
        // flow utilization is combination, pair-flow ratio is stateful.
        assert_eq!(
            category_of("FLOW_PACKET_COUNT"),
            FeatureCategory::ProtocolCentric
        );
        assert_eq!(
            category_of("FLOW_UTILIZATION"),
            FeatureCategory::Combination
        );
        assert_eq!(category_of("PAIR_FLOW_RATIO"), FeatureCategory::Stateful);
        assert_eq!(category_of("PORT_RX_BYTES_VAR"), FeatureCategory::Variation);
    }

    #[test]
    fn ddos_tuple_has_ten_catalogued_features() {
        assert_eq!(DDOS_10_TUPLE.len(), 10);
        let all: HashSet<&str> = all_features().into_iter().collect();
        for f in DDOS_10_TUPLE {
            assert!(all.contains(f), "{f} not in catalog");
        }
    }
}
