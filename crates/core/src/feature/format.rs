//! The Athena feature format (the paper's Figure 4): index fields,
//! metadata, then the feature fields.

use athena_store::{doc, Document};

/// Alias used at API boundaries that accept pre-built feature documents.
pub type RawDocument = Document;
use athena_types::{AppId, ControllerId, Dpid, FiveTuple, IpProto, Ipv4Addr, PortNo, SimTime};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::fmt;

/// The index fields: where the feature came from, including OpenFlow
/// match-field indicators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureIndex {
    /// The originating switch.
    pub switch: Dpid,
    /// The port, for port-scoped features.
    pub port: Option<PortNo>,
    /// The flow's 5-tuple, for flow-scoped features.
    pub five_tuple: Option<FiveTuple>,
    /// The host address, for host-scoped features.
    pub host: Option<Ipv4Addr>,
    /// The installing application, when attributable.
    pub app: Option<AppId>,
}

impl FeatureIndex {
    /// A switch-scoped index.
    pub fn switch(dpid: Dpid) -> Self {
        FeatureIndex {
            switch: dpid,
            ..FeatureIndex::default()
        }
    }

    /// A port-scoped index.
    pub fn port(dpid: Dpid, port: PortNo) -> Self {
        FeatureIndex {
            switch: dpid,
            port: Some(port),
            ..FeatureIndex::default()
        }
    }

    /// A flow-scoped index.
    pub fn flow(dpid: Dpid, ft: FiveTuple) -> Self {
        FeatureIndex {
            switch: dpid,
            five_tuple: Some(ft),
            ..FeatureIndex::default()
        }
    }
}

/// Metadata: timestamp plus control-plane semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetaData {
    /// When the feature was generated.
    pub timestamp: SimTime,
    /// The controller instance whose SB element generated it.
    pub controller: ControllerId,
    /// The OpenFlow message type the feature derives from.
    pub message_type: String,
    /// Whether the sample came from an Athena-marked statistics request.
    pub athena_polled: bool,
}

/// One Athena feature record: index, metadata, and named numeric fields.
///
/// # Examples
///
/// ```
/// use athena_core::{FeatureIndex, FeatureRecord};
/// use athena_types::Dpid;
///
/// let r = FeatureRecord::new(FeatureIndex::switch(Dpid::new(1)))
///     .with_field("FLOW_PACKET_COUNT", 42.0);
/// assert_eq!(r.field("FLOW_PACKET_COUNT"), Some(42.0));
/// let doc = r.to_document();
/// assert_eq!(doc.get_f64("FLOW_PACKET_COUNT"), Some(42.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureRecord {
    /// Where the feature came from.
    pub index: FeatureIndex,
    /// Timestamp and control-plane semantics.
    pub meta: MetaData,
    /// The named feature fields.
    pub fields: Vec<(String, f64)>,
}

impl FeatureRecord {
    /// Creates an empty record for an index.
    pub fn new(index: FeatureIndex) -> Self {
        FeatureRecord {
            index,
            ..FeatureRecord::default()
        }
    }

    /// Sets the metadata (builder style).
    pub fn with_meta(mut self, meta: MetaData) -> Self {
        self.meta = meta;
        self
    }

    /// Appends a field (builder style).
    pub fn with_field(mut self, name: impl Into<String>, value: f64) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Appends a field in place.
    pub fn push_field(&mut self, name: impl Into<String>, value: f64) {
        self.fields.push((name.into(), value));
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Extracts the named fields as a feature vector; `None` if any is
    /// missing (the record is not of the right kind for the model).
    pub fn vector(&self, names: &[impl AsRef<str>]) -> Option<Vec<f64>> {
        names.iter().map(|n| self.field(n.as_ref())).collect()
    }

    /// Serializes the record into a store document, flattening index and
    /// metadata into queryable top-level fields.
    pub fn to_document(&self) -> Document {
        let mut d = doc! {
            "switch" => self.index.switch.raw(),
            "timestamp" => self.meta.timestamp.as_micros(),
            "controller" => self.meta.controller.raw(),
            "message_type" => self.meta.message_type.clone(),
            "athena_polled" => self.meta.athena_polled,
        };
        if let Some(p) = self.index.port {
            d.set("port", p.raw());
        }
        if let Some(ft) = self.index.five_tuple {
            d.set("ip_src", ft.src.raw());
            d.set("ip_dst", ft.dst.raw());
            d.set("tp_src", ft.src_port);
            d.set("tp_dst", ft.dst_port);
            d.set("ip_proto", ft.proto.number());
        }
        if let Some(host) = self.index.host {
            d.set("host", host.raw());
        }
        if let Some(app) = self.index.app {
            d.set("app", app.raw());
        }
        for (name, value) in &self.fields {
            d.set(name.clone(), json!(value));
        }
        d
    }

    /// Reconstructs a record from a store document (the inverse of
    /// [`FeatureRecord::to_document`]); unknown fields become feature
    /// fields.
    pub fn from_document(d: &Document) -> Self {
        let mut index = FeatureIndex::switch(Dpid::new(d.get_i64("switch").unwrap_or(0) as u64));
        if let Some(p) = d.get_i64("port") {
            index.port = Some(PortNo::new(p as u32));
        }
        if let (Some(src), Some(dst)) = (d.get_i64("ip_src"), d.get_i64("ip_dst")) {
            index.five_tuple = Some(FiveTuple {
                src: Ipv4Addr::from_raw(src as u32),
                dst: Ipv4Addr::from_raw(dst as u32),
                src_port: d.get_i64("tp_src").unwrap_or(0) as u16,
                dst_port: d.get_i64("tp_dst").unwrap_or(0) as u16,
                proto: IpProto::from_number(d.get_i64("ip_proto").unwrap_or(0) as u8),
            });
        }
        if let Some(host) = d.get_i64("host") {
            index.host = Some(Ipv4Addr::from_raw(host as u32));
        }
        if let Some(app) = d.get_i64("app") {
            index.app = Some(AppId::new(app as u32));
        }
        let meta = MetaData {
            timestamp: SimTime::from_micros(d.get_i64("timestamp").unwrap_or(0) as u64),
            controller: ControllerId::new(d.get_i64("controller").unwrap_or(0) as u32),
            message_type: d.get_str("message_type").unwrap_or("").to_owned(),
            athena_polled: d
                .get("athena_polled")
                .and_then(serde_json::Value::as_bool)
                .unwrap_or(false),
        };
        const META_KEYS: [&str; 12] = [
            "switch",
            "timestamp",
            "controller",
            "message_type",
            "athena_polled",
            "port",
            "ip_src",
            "ip_dst",
            "tp_src",
            "tp_dst",
            "ip_proto",
            "host",
        ];
        let mut fields = Vec::new();
        for (k, v) in &d.fields {
            if META_KEYS.contains(&k.as_str()) || k == "app" {
                continue;
            }
            if let Some(x) = v.as_f64() {
                fields.push((k.clone(), x));
            }
        }
        FeatureRecord {
            index,
            meta,
            fields,
        }
    }
}

impl fmt::Display for FeatureRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {} fields",
            self.meta.timestamp,
            self.index.switch,
            self.meta.message_type,
            self.fields.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FeatureRecord {
        let ft = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        FeatureRecord::new(FeatureIndex::flow(Dpid::new(7), ft))
            .with_meta(MetaData {
                timestamp: SimTime::from_secs(9),
                controller: ControllerId::new(2),
                message_type: "FLOW_STATS".into(),
                athena_polled: true,
            })
            .with_field("FLOW_PACKET_COUNT", 100.0)
            .with_field("FLOW_BYTE_COUNT", 6400.0)
    }

    #[test]
    fn field_lookup_and_vector() {
        let r = record();
        assert_eq!(r.field("FLOW_BYTE_COUNT"), Some(6400.0));
        assert_eq!(r.field("MISSING"), None);
        assert_eq!(
            r.vector(&["FLOW_PACKET_COUNT", "FLOW_BYTE_COUNT"]),
            Some(vec![100.0, 6400.0])
        );
        assert_eq!(r.vector(&["FLOW_PACKET_COUNT", "MISSING"]), None);
    }

    #[test]
    fn document_roundtrip_preserves_everything() {
        let r = record();
        let d = r.to_document();
        let back = FeatureRecord::from_document(&d);
        assert_eq!(back.index.switch, r.index.switch);
        assert_eq!(back.index.five_tuple, r.index.five_tuple);
        assert_eq!(back.meta.timestamp, r.meta.timestamp);
        assert_eq!(back.meta.controller, r.meta.controller);
        assert_eq!(back.meta.message_type, r.meta.message_type);
        assert!(back.meta.athena_polled);
        for (name, value) in &r.fields {
            assert_eq!(back.field(name), Some(*value), "{name}");
        }
    }

    #[test]
    fn document_exposes_queryable_index_fields() {
        let d = record().to_document();
        assert_eq!(d.get_i64("switch"), Some(7));
        assert_eq!(d.get_i64("tp_dst"), Some(80));
        assert_eq!(d.get_str("message_type"), Some("FLOW_STATS"));
    }

    #[test]
    fn port_scoped_index_roundtrips() {
        let r = FeatureRecord::new(FeatureIndex::port(Dpid::new(3), PortNo::new(2)))
            .with_field("PORT_RX_BYTES", 1.0);
        let back = FeatureRecord::from_document(&r.to_document());
        assert_eq!(back.index.port, Some(PortNo::new(2)));
        assert_eq!(back.index.five_tuple, None);
    }
}
