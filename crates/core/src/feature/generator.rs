//! The Feature Generator (paper §III-A 1B).
//!
//! Examines incoming control messages to derive Athena features, keeping
//! hash tables of previous samples (for `_VAR` variation features) and
//! network state (pair-flow tracking), with a garbage collector that
//! periodically removes outdated entries.

use crate::feature::format::{FeatureIndex, FeatureRecord, MetaData};
use crate::feature::window::Windowing;
use athena_openflow::stats::PortStatsEntry;
use athena_openflow::{FlowStatsEntry, MatchFields, OfMessage, StatsReply};
use athena_types::{AppId, ControllerId, Dpid, FiveTuple, PortNo, SimDuration, SimTime};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Nominal link capacity used for utilization features (bits/second).
const NOMINAL_CAPACITY_BPS: f64 = 1_000_000_000.0;

/// Snapshots smaller than this are formatted in place: the stateful
/// phase has already run, and the per-record construction cost does not
/// amortize a parallel job for a handful of entries.
const PAR_THRESHOLD: usize = 32;

#[derive(Debug, Clone, Copy)]
struct PrevFlowSample {
    packet_count: u64,
    byte_count: u64,
    duration_sec: u64,
    last_seen: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct PrevPortSample {
    stats: PortStatsEntry,
    last_seen: SimTime,
}

#[derive(Debug, Clone, Copy, Default)]
struct MsgWindow {
    packet_in: u64,
    packet_out: u64,
    flow_mod: u64,
    flow_removed: u64,
    port_status: u64,
    stats_request: u64,
    stats_reply: u64,
    echo: u64,
    barrier: u64,
}

impl MsgWindow {
    fn total(&self) -> u64 {
        self.packet_in
            + self.packet_out
            + self.flow_mod
            + self.flow_removed
            + self.port_status
            + self.stats_request
            + self.stats_reply
            + self.echo
            + self.barrier
    }
}

/// Generates Athena features from the southbound message stream.
///
/// # Examples
///
/// ```
/// use athena_core::FeatureGenerator;
/// use athena_types::{ControllerId, SimTime};
///
/// let mut g = FeatureGenerator::new(ControllerId::new(0));
/// assert_eq!(g.tracked_entries(), 0);
/// assert!(g.flush_window(SimTime::from_secs(1)).is_empty());
/// ```
#[derive(Debug)]
pub struct FeatureGenerator {
    controller: ControllerId,
    /// Entries unseen for this long are garbage-collected.
    pub ttl: SimDuration,
    /// The message-counter window length.
    pub window: SimDuration,
    prev_flow: HashMap<(Dpid, MatchFields), PrevFlowSample>,
    prev_port: HashMap<(Dpid, PortNo), PrevPortSample>,
    prev_table: HashMap<Dpid, (u32, u64)>,
    msg_counts: HashMap<Dpid, MsgWindow>,
    prev_msg_counts: HashMap<Dpid, MsgWindow>,
    records_generated: u64,
}

impl FeatureGenerator {
    /// Creates a generator for one controller instance's SB element.
    pub fn new(controller: ControllerId) -> Self {
        FeatureGenerator {
            controller,
            ttl: SimDuration::from_secs(120),
            window: SimDuration::from_secs(5),
            prev_flow: HashMap::new(),
            prev_port: HashMap::new(),
            prev_table: HashMap::new(),
            msg_counts: HashMap::new(),
            prev_msg_counts: HashMap::new(),
            records_generated: 0,
        }
    }

    /// Total records generated so far.
    pub fn records_generated(&self) -> u64 {
        self.records_generated
    }

    /// Number of tracked previous-sample entries (the GC's subject).
    pub fn tracked_entries(&self) -> usize {
        self.prev_flow.len() + self.prev_port.len()
    }

    /// Consumes one southbound message, producing feature records.
    ///
    /// `app_of` resolves a flow cookie to the installing application (the
    /// controller's FlowRule subsystem).
    pub fn ingest(
        &mut self,
        from: Dpid,
        msg: &OfMessage,
        now: SimTime,
        app_of: &dyn Fn(u64) -> AppId,
    ) -> Vec<FeatureRecord> {
        self.count_message(from, msg);
        let mut out = match msg {
            OfMessage::StatsReply { xid, body } => {
                let polled = xid.is_athena_marked();
                match body {
                    StatsReply::Flow(entries) => {
                        self.flow_stats_features(from, entries, now, polled, app_of)
                    }
                    StatsReply::Port(entries) => {
                        self.port_stats_features(from, entries, now, polled)
                    }
                    StatsReply::Table(entries) => {
                        let mut records = Vec::new();
                        for e in entries {
                            let (prev_active, prev_lookup) = self
                                .prev_table
                                .insert(from, (e.active_count, e.lookup_count))
                                .unwrap_or((e.active_count, e.lookup_count));
                            let mut r = FeatureRecord::new(FeatureIndex::switch(from))
                                .with_meta(self.meta(now, "TABLE_STATS", polled));
                            r.push_field("TABLE_ACTIVE_COUNT", f64::from(e.active_count));
                            r.push_field("TABLE_LOOKUP_COUNT", e.lookup_count as f64);
                            r.push_field("TABLE_MATCHED_COUNT", e.matched_count as f64);
                            r.push_field("TABLE_MISS_RATIO", e.miss_ratio());
                            r.push_field(
                                "TABLE_ACTIVE_COUNT_VAR",
                                f64::from(e.active_count) - f64::from(prev_active),
                            );
                            r.push_field(
                                "TABLE_LOOKUP_COUNT_VAR",
                                e.lookup_count as f64 - prev_lookup as f64,
                            );
                            records.push(r);
                        }
                        records
                    }
                    StatsReply::Aggregate(_) => Vec::new(),
                }
            }
            OfMessage::FlowRemoved { body, .. } => {
                let mut index = FeatureIndex::switch(from);
                index.five_tuple = body.match_fields.five_tuple();
                index.app = Some(app_of(body.cookie));
                let mut r =
                    FeatureRecord::new(index).with_meta(self.meta(now, "FLOW_REMOVED", false));
                r.push_field("REMOVED_PACKET_COUNT", body.packet_count as f64);
                r.push_field("REMOVED_BYTE_COUNT", body.byte_count as f64);
                r.push_field("REMOVED_DURATION_SEC", body.duration.as_secs_f64());
                use athena_openflow::FlowRemovedReason as R;
                r.push_field(
                    "REMOVED_REASON_IDLE",
                    f64::from(u8::from(body.reason == R::IdleTimeout)),
                );
                r.push_field(
                    "REMOVED_REASON_HARD",
                    f64::from(u8::from(body.reason == R::HardTimeout)),
                );
                r.push_field(
                    "REMOVED_REASON_DELETE",
                    f64::from(u8::from(body.reason == R::Delete)),
                );
                r.push_field(
                    "REMOVED_BYTE_PER_PACKET",
                    safe_div(body.byte_count as f64, body.packet_count as f64),
                );
                // The flow is gone: stop tracking its previous sample.
                self.prev_flow.remove(&(from, body.match_fields));
                vec![r]
            }
            OfMessage::PacketIn { body, .. } => {
                // Per-event protocol-centric features: every punted packet
                // yields a record (this per-message path is what makes
                // Athena's Cbench overhead visible, per Table IX).
                let mut index = FeatureIndex::switch(from);
                index.five_tuple = body.header.five_tuple();
                index.port = Some(body.header.in_port);
                let mut r = FeatureRecord::new(index).with_meta(self.meta(now, "PACKET_IN", false));
                r.push_field("PACKET_IN_BYTE_LEN", f64::from(body.header.byte_len));
                r.push_field("PACKET_IN_PORT", f64::from(body.header.in_port.raw()));
                r.push_field(
                    "PACKET_IN_BUFFERED",
                    f64::from(u8::from(body.buffer_id.is_some())),
                );
                vec![r]
            }
            _ => Vec::new(),
        };
        self.records_generated += out.len() as u64;
        // Window flush rides on the message stream clock.
        out.extend(self.maybe_flush(now));
        out
    }

    /// The generator's windowing definition — the single source of
    /// truth for window width, boundary placement, and rate math, also
    /// consumed by the streaming pipeline (`crates/stream`) so the two
    /// paths can never disagree on window arithmetic.
    pub fn windowing(&self) -> Windowing {
        Windowing::new(self.window)
    }

    /// Public iterator over every window boundary in `(from, until]`:
    /// the virtual times at which [`FeatureGenerator::flush_window`]
    /// would close a window. Stream consumers align their ring-buffer
    /// evictions to exactly these instants instead of re-deriving them.
    pub fn window_boundaries(
        &self,
        from: SimTime,
        until: SimTime,
    ) -> crate::feature::window::Boundaries {
        self.windowing().boundaries(from, until)
    }

    /// Flushes the per-switch message-counter window if due, emitting
    /// `MSG_*` records.
    pub fn flush_window(&mut self, now: SimTime) -> Vec<FeatureRecord> {
        let windowing = self.windowing();
        let mut out = Vec::new();
        // Sorted so identically-seeded runs emit (and store) the window
        // records in the same order — crash-recovery diffs rely on it.
        let mut switches: Vec<Dpid> = self.msg_counts.keys().copied().collect();
        switches.sort();
        for dpid in switches {
            let counts = self.msg_counts.remove(&dpid).unwrap_or_default();
            let prev = self
                .prev_msg_counts
                .insert(dpid, counts)
                .unwrap_or_default();
            let mut r = FeatureRecord::new(FeatureIndex::switch(dpid)).with_meta(self.meta(
                now,
                "MSG_WINDOW",
                false,
            ));
            r.push_field("MSG_PACKET_IN_COUNT", counts.packet_in as f64);
            r.push_field("MSG_PACKET_OUT_COUNT", counts.packet_out as f64);
            r.push_field("MSG_FLOW_MOD_COUNT", counts.flow_mod as f64);
            r.push_field("MSG_FLOW_REMOVED_COUNT", counts.flow_removed as f64);
            r.push_field("MSG_PORT_STATUS_COUNT", counts.port_status as f64);
            r.push_field("MSG_STATS_REQUEST_COUNT", counts.stats_request as f64);
            r.push_field("MSG_STATS_REPLY_COUNT", counts.stats_reply as f64);
            r.push_field("MSG_ECHO_COUNT", counts.echo as f64);
            r.push_field("MSG_BARRIER_COUNT", counts.barrier as f64);
            r.push_field("MSG_PACKET_IN_RATE", windowing.rate(counts.packet_in));
            r.push_field("MSG_FLOW_MOD_RATE", windowing.rate(counts.flow_mod));
            r.push_field("MSG_FLOW_REMOVED_RATE", windowing.rate(counts.flow_removed));
            r.push_field(
                "MSG_PACKET_IN_COUNT_VAR",
                counts.packet_in as f64 - prev.packet_in as f64,
            );
            r.push_field(
                "MSG_FLOW_MOD_COUNT_VAR",
                counts.flow_mod as f64 - prev.flow_mod as f64,
            );
            r.push_field(
                "MSG_PACKET_OUT_COUNT_VAR",
                counts.packet_out as f64 - prev.packet_out as f64,
            );
            r.push_field("MSG_TOTAL_COUNT", counts.total() as f64);
            self.records_generated += 1;
            out.push(r);
        }
        out
    }

    fn maybe_flush(&mut self, _now: SimTime) -> Vec<FeatureRecord> {
        // Window flushing is driven explicitly by the SB's tick (which
        // knows the poll cadence); nothing implicit here.
        Vec::new()
    }

    /// Removes previous-sample entries unseen for longer than the TTL.
    /// Returns how many entries were collected.
    pub fn gc(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let before = self.tracked_entries();
        self.prev_flow
            .retain(|_, s| now.saturating_since(s.last_seen) < ttl);
        self.prev_port
            .retain(|_, s| now.saturating_since(s.last_seen) < ttl);
        before - self.tracked_entries()
    }

    fn meta(&self, now: SimTime, message_type: &str, athena_polled: bool) -> MetaData {
        MetaData {
            timestamp: now,
            controller: self.controller,
            message_type: message_type.to_owned(),
            athena_polled,
        }
    }

    fn count_message(&mut self, from: Dpid, msg: &OfMessage) {
        let w = self.msg_counts.entry(from).or_default();
        match msg {
            OfMessage::PacketIn { .. } => w.packet_in += 1,
            OfMessage::PacketOut { .. } => w.packet_out += 1,
            OfMessage::FlowMod { .. } => w.flow_mod += 1,
            OfMessage::FlowRemoved { .. } => w.flow_removed += 1,
            OfMessage::PortStatus { .. } => w.port_status += 1,
            OfMessage::StatsRequest { .. } => w.stats_request += 1,
            OfMessage::StatsReply { .. } => w.stats_reply += 1,
            OfMessage::EchoRequest { .. } | OfMessage::EchoReply { .. } => w.echo += 1,
            OfMessage::BarrierRequest { .. } | OfMessage::BarrierReply { .. } => w.barrier += 1,
            _ => {}
        }
    }

    /// Per-flow + per-switch features from a flow-stats snapshot.
    ///
    /// Runs in two phases so the expensive part can go wide: a
    /// sequential *stateful* pass (previous-sample table updates, app
    /// resolution, per-switch aggregation — everything that touches
    /// `&mut self` or the non-`Sync` `app_of`), then a pure
    /// record-construction pass that runs on the `athena-parallel` pool
    /// for large snapshots. Ordered reduction keeps the emitted record
    /// order — and therefore store contents — byte-identical at any
    /// `ATHENA_THREADS`.
    fn flow_stats_features(
        &mut self,
        from: Dpid,
        entries: &[FlowStatsEntry],
        now: SimTime,
        polled: bool,
        app_of: &dyn Fn(u64) -> AppId,
    ) -> Vec<FeatureRecord> {
        // Stateful context: the set of live 5-tuples on this switch.
        let tuples: HashSet<FiveTuple> = entries
            .iter()
            .filter_map(|e| e.match_fields.five_tuple())
            .collect();
        let pair_count = tuples
            .iter()
            .filter(|t| tuples.contains(&t.reversed()))
            .count();
        let total_tuples = tuples.len().max(1);
        let pair_ratio = pair_count as f64 / total_tuples as f64;

        let mut unique_src: HashSet<athena_types::Ipv4Addr> = HashSet::new();
        let mut unique_dst: HashSet<athena_types::Ipv4Addr> = HashSet::new();
        let mut total_packets = 0u64;
        let mut total_bytes = 0u64;
        let mut total_duration = 0.0f64;

        // Phase 1 (sequential): state updates and per-entry derivations.
        let mut derived = Vec::with_capacity(entries.len());
        for e in entries {
            let ft = e.match_fields.five_tuple();
            if let Some(ft) = ft {
                unique_src.insert(ft.src);
                unique_dst.insert(ft.dst);
            }
            let prev = self.prev_flow.insert(
                (from, e.match_fields),
                PrevFlowSample {
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                    duration_sec: e.duration_sec(),
                    last_seen: now,
                },
            );
            total_packets += e.packet_count;
            total_bytes += e.byte_count;
            total_duration += e.duration.as_secs_f64();
            derived.push(FlowDerived {
                app: app_of(e.cookie),
                prev,
                is_pair: ft.is_some_and(|t| tuples.contains(&t.reversed())),
            });
        }

        // Phase 2 (parallel for large snapshots): pure record
        // construction from the frozen per-entry inputs.
        let meta = self.meta(now, "FLOW_STATS", polled);
        let mut out: Vec<FeatureRecord> = if entries.len() >= PAR_THRESHOLD {
            let shared = Arc::new(entries.to_vec());
            let derived = Arc::new(derived);
            let meta = meta.clone();
            athena_parallel::par_map_indexed(shared.len(), move |i| {
                build_flow_record(from, meta.clone(), pair_ratio, &shared[i], &derived[i])
            })
        } else {
            entries
                .iter()
                .zip(&derived)
                .map(|(e, d)| build_flow_record(from, meta.clone(), pair_ratio, e, d))
                .collect()
        };
        out.reserve(2);

        // The per-switch stateful aggregate record.
        if !entries.is_empty() {
            let mut r = FeatureRecord::new(FeatureIndex::switch(from)).with_meta(self.meta(
                now,
                "SWITCH_STATE",
                polled,
            ));
            r.push_field("SWITCH_FLOW_COUNT", entries.len() as f64);
            r.push_field("SWITCH_PAIR_FLOW_COUNT", pair_count as f64);
            r.push_field("SWITCH_PAIR_FLOW_RATIO", pair_ratio);
            r.push_field(
                "SWITCH_AVG_FLOW_DURATION",
                total_duration / entries.len() as f64,
            );
            r.push_field("SWITCH_UNIQUE_SRC_COUNT", unique_src.len() as f64);
            r.push_field("SWITCH_UNIQUE_DST_COUNT", unique_dst.len() as f64);
            r.push_field(
                "SWITCH_SRC_DST_RATIO",
                safe_div(unique_src.len() as f64, unique_dst.len() as f64),
            );
            let athena_rules = entries
                .iter()
                .filter(|e| app_of(e.cookie) == AppId::new(9))
                .count();
            r.push_field("SWITCH_APP_FLOW_COUNT", athena_rules as f64);
            r.push_field("SWITCH_PACKET_COUNT_TOTAL", total_packets as f64);
            r.push_field("SWITCH_BYTE_COUNT_TOTAL", total_bytes as f64);
            out.push(r);

            // Per-host stateful aggregates from the same snapshot.
            out.extend(self.host_features(from, entries, &tuples, now, polled));
        }
        out
    }

    /// Per-host aggregates: fan-out/fan-in, byte/packet totals, and pair
    /// ratio, keyed by host address. The aggregation pass is stateful
    /// and sequential; record construction parallelizes for large host
    /// sets (ordered, so output order matches the sequential run).
    fn host_features(
        &mut self,
        from: Dpid,
        entries: &[FlowStatsEntry],
        tuples: &HashSet<FiveTuple>,
        now: SimTime,
        polled: bool,
    ) -> Vec<FeatureRecord> {
        let mut hosts: HashMap<athena_types::Ipv4Addr, HostAgg> = HashMap::new();
        for e in entries {
            let Some(ft) = e.match_fields.five_tuple() else {
                continue;
            };
            let src = hosts.entry(ft.src).or_default();
            src.out_flows += 1;
            src.tx_bytes += e.byte_count;
            src.tx_packets += e.packet_count;
            src.fanout.insert(ft.dst);
            if tuples.contains(&ft.reversed()) {
                src.paired += 1;
            }
            let dst = hosts.entry(ft.dst).or_default();
            dst.in_flows += 1;
            dst.rx_bytes += e.byte_count;
            dst.rx_packets += e.packet_count;
            dst.fanin.insert(ft.src);
        }
        // Sorted so identically-seeded runs emit (and store) the host
        // records in the same order — crash-recovery diffs rely on it.
        let mut hosts: Vec<_> = hosts.into_iter().collect();
        hosts.sort_by_key(|(ip, _)| *ip);
        self.records_generated += hosts.len() as u64;
        let meta = self.meta(now, "HOST_STATE", polled);
        if hosts.len() >= PAR_THRESHOLD {
            athena_parallel::par_map(hosts, move |(ip, agg)| {
                build_host_record(from, meta.clone(), *ip, agg)
            })
        } else {
            hosts
                .into_iter()
                .map(|(ip, agg)| build_host_record(from, meta.clone(), ip, &agg))
                .collect()
        }
    }

    fn port_stats_features(
        &mut self,
        from: Dpid,
        entries: &[PortStatsEntry],
        now: SimTime,
        polled: bool,
    ) -> Vec<FeatureRecord> {
        let windowing = self.windowing();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let mut r = FeatureRecord::new(FeatureIndex::port(from, e.port_no))
                .with_meta(self.meta(now, "PORT_STATS", polled));
            r.push_field("PORT_RX_PACKETS", e.rx_packets as f64);
            r.push_field("PORT_TX_PACKETS", e.tx_packets as f64);
            r.push_field("PORT_RX_BYTES", e.rx_bytes as f64);
            r.push_field("PORT_TX_BYTES", e.tx_bytes as f64);
            r.push_field("PORT_RX_DROPPED", e.rx_dropped as f64);
            r.push_field("PORT_TX_DROPPED", e.tx_dropped as f64);
            r.push_field("PORT_RX_ERRORS", e.rx_errors as f64);
            r.push_field("PORT_TX_ERRORS", e.tx_errors as f64);
            r.push_field(
                "PORT_RX_BYTE_PER_PACKET",
                safe_div(e.rx_bytes as f64, e.rx_packets as f64),
            );
            r.push_field(
                "PORT_TX_BYTE_PER_PACKET",
                safe_div(e.tx_bytes as f64, e.tx_packets as f64),
            );
            let prev = self.prev_port.insert(
                (from, e.port_no),
                PrevPortSample {
                    stats: *e,
                    last_seen: now,
                },
            );
            let p = prev.map(|p| p.stats).unwrap_or_default();
            let rx_var = e.rx_bytes as f64 - p.rx_bytes as f64;
            let tx_var = e.tx_bytes as f64 - p.tx_bytes as f64;
            r.push_field(
                "PORT_RX_PACKETS_VAR",
                e.rx_packets as f64 - p.rx_packets as f64,
            );
            r.push_field(
                "PORT_TX_PACKETS_VAR",
                e.tx_packets as f64 - p.tx_packets as f64,
            );
            r.push_field("PORT_RX_BYTES_VAR", rx_var);
            r.push_field("PORT_TX_BYTES_VAR", tx_var);
            r.push_field(
                "PORT_RX_DROPPED_VAR",
                e.rx_dropped as f64 - p.rx_dropped as f64,
            );
            r.push_field(
                "PORT_TX_DROPPED_VAR",
                e.tx_dropped as f64 - p.tx_dropped as f64,
            );
            r.push_field(
                "PORT_RX_ERRORS_VAR",
                e.rx_errors as f64 - p.rx_errors as f64,
            );
            r.push_field(
                "PORT_TX_ERRORS_VAR",
                e.tx_errors as f64 - p.tx_errors as f64,
            );
            // Utilization over the sampling window.
            r.push_field(
                "PORT_RX_UTILIZATION",
                windowing.rate_f64(rx_var.max(0.0) * 8.0) / NOMINAL_CAPACITY_BPS,
            );
            r.push_field(
                "PORT_TX_UTILIZATION",
                windowing.rate_f64(tx_var.max(0.0) * 8.0) / NOMINAL_CAPACITY_BPS,
            );
            let dropped = e.rx_dropped + e.tx_dropped;
            let seen = e.rx_packets + e.tx_packets + dropped;
            r.push_field("PORT_DROP_RATIO", safe_div(dropped as f64, seen as f64));
            out.push(r);
        }
        self.records_generated += out.len() as u64;
        out
    }
}

/// Per-entry inputs frozen by the stateful phase so the record-building
/// phase is a pure function fit for the parallel pool.
#[derive(Debug, Clone, Copy)]
struct FlowDerived {
    app: AppId,
    prev: Option<PrevFlowSample>,
    is_pair: bool,
}

/// Per-host aggregate accumulated from one flow-stats snapshot.
#[derive(Debug, Default)]
struct HostAgg {
    out_flows: u64,
    in_flows: u64,
    tx_bytes: u64,
    rx_bytes: u64,
    tx_packets: u64,
    rx_packets: u64,
    fanout: HashSet<athena_types::Ipv4Addr>,
    fanin: HashSet<athena_types::Ipv4Addr>,
    paired: u64,
}

/// Builds one `FLOW_STATS` record from an entry and its frozen derived
/// inputs. Pure: safe to run on any pool worker.
fn build_flow_record(
    from: Dpid,
    meta: MetaData,
    pair_ratio: f64,
    e: &FlowStatsEntry,
    d: &FlowDerived,
) -> FeatureRecord {
    let ft = e.match_fields.five_tuple();
    let mut index = FeatureIndex::switch(from);
    index.five_tuple = ft;
    index.app = Some(d.app);
    let mut r = FeatureRecord::new(index).with_meta(meta);

    let dur = e.duration.as_secs_f64();
    r.push_field("FLOW_PACKET_COUNT", e.packet_count as f64);
    r.push_field("FLOW_BYTE_COUNT", e.byte_count as f64);
    r.push_field("FLOW_DURATION_SEC", e.duration_sec() as f64);
    r.push_field("FLOW_DURATION_NSEC", e.duration_nsec() as f64);
    r.push_field("FLOW_PRIORITY", f64::from(e.priority));
    r.push_field("FLOW_IDLE_TIMEOUT", e.idle_timeout.as_secs_f64());
    r.push_field("FLOW_HARD_TIMEOUT", e.hard_timeout.as_secs_f64());
    r.push_field("FLOW_TABLE_ID", f64::from(e.table_id));
    if let Some(ft) = ft {
        r.push_field("FLOW_IP_PROTO", f64::from(ft.proto.number()));
        r.push_field("FLOW_IP_SRC", f64::from(ft.src.raw()));
        r.push_field("FLOW_IP_DST", f64::from(ft.dst.raw()));
        r.push_field("FLOW_TP_SRC", f64::from(ft.src_port));
        r.push_field("FLOW_TP_DST", f64::from(ft.dst_port));
    }
    if let Some(et) = e.match_fields.eth_type {
        r.push_field("FLOW_ETH_TYPE", f64::from(et.number()));
    }
    if let Some(p) = athena_openflow::Action::first_output(&e.actions) {
        r.push_field("FLOW_ACTION_OUTPUT_PORT", f64::from(p.raw()));
    }
    // Combination features.
    r.push_field(
        "FLOW_BYTE_PER_PACKET",
        safe_div(e.byte_count as f64, e.packet_count as f64),
    );
    r.push_field(
        "FLOW_PACKET_PER_DURATION",
        safe_div(e.packet_count as f64, dur),
    );
    r.push_field("FLOW_BYTE_PER_DURATION", safe_div(e.byte_count as f64, dur));
    r.push_field(
        "FLOW_UTILIZATION",
        safe_div(e.byte_count as f64 * 8.0, dur) / NOMINAL_CAPACITY_BPS,
    );
    // Stateful features (derived in the sequential phase).
    r.push_field("PAIR_FLOW", f64::from(u8::from(d.is_pair)));
    r.push_field("PAIR_FLOW_RATIO", pair_ratio);
    r.push_field("FLOW_APP_ID", f64::from(d.app.raw()));
    r.push_field(
        "FLOW_ORIGIN_REACTIVE",
        f64::from(u8::from(!e.idle_timeout.is_zero())),
    );
    // Variation features against the previous sample.
    if let Some(p) = d.prev {
        r.push_field(
            "FLOW_PACKET_COUNT_VAR",
            e.packet_count as f64 - p.packet_count as f64,
        );
        r.push_field(
            "FLOW_BYTE_COUNT_VAR",
            e.byte_count as f64 - p.byte_count as f64,
        );
        r.push_field(
            "FLOW_DURATION_SEC_VAR",
            e.duration_sec() as f64 - p.duration_sec as f64,
        );
        let prev_bpp = safe_div(p.byte_count as f64, p.packet_count as f64);
        r.push_field(
            "FLOW_BYTE_PER_PACKET_VAR",
            safe_div(e.byte_count as f64, e.packet_count as f64) - prev_bpp,
        );
    } else {
        r.push_field("FLOW_PACKET_COUNT_VAR", e.packet_count as f64);
        r.push_field("FLOW_BYTE_COUNT_VAR", e.byte_count as f64);
        r.push_field("FLOW_DURATION_SEC_VAR", e.duration_sec() as f64);
        r.push_field(
            "FLOW_BYTE_PER_PACKET_VAR",
            safe_div(e.byte_count as f64, e.packet_count as f64),
        );
    }
    r
}

/// Builds one `HOST_STATE` record. Pure: safe to run on any pool worker.
fn build_host_record(
    from: Dpid,
    meta: MetaData,
    ip: athena_types::Ipv4Addr,
    agg: &HostAgg,
) -> FeatureRecord {
    let mut index = FeatureIndex::switch(from);
    index.host = Some(ip);
    let mut r = FeatureRecord::new(index).with_meta(meta);
    r.push_field("HOST_OUT_FLOW_COUNT", agg.out_flows as f64);
    r.push_field("HOST_IN_FLOW_COUNT", agg.in_flows as f64);
    r.push_field("HOST_TX_BYTES", agg.tx_bytes as f64);
    r.push_field("HOST_RX_BYTES", agg.rx_bytes as f64);
    r.push_field("HOST_TX_PACKETS", agg.tx_packets as f64);
    r.push_field("HOST_RX_PACKETS", agg.rx_packets as f64);
    r.push_field("HOST_FANOUT", agg.fanout.len() as f64);
    r.push_field("HOST_FANIN", agg.fanin.len() as f64);
    r.push_field(
        "HOST_PAIR_RATIO",
        safe_div(agg.paired as f64, agg.out_flows as f64),
    );
    r
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den.abs() < 1e-12 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_openflow::{Action, FlowRemoved, FlowRemovedReason};
    use athena_types::{Ipv4Addr, Xid};

    fn app_core(_cookie: u64) -> AppId {
        AppId::CORE
    }

    fn flow_entry(ft: FiveTuple, packets: u64, bytes: u64, dur_s: u64) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id: 0,
            match_fields: MatchFields::exact_five_tuple(ft),
            priority: 100,
            duration: SimDuration::from_secs(dur_s),
            idle_timeout: SimDuration::from_secs(30),
            hard_timeout: SimDuration::ZERO,
            cookie: 0,
            packet_count: packets,
            byte_count: bytes,
            actions: vec![Action::Output(PortNo::new(2))],
        }
    }

    fn ft() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    fn stats_msg(entries: Vec<FlowStatsEntry>, marked: bool) -> OfMessage {
        OfMessage::StatsReply {
            xid: if marked {
                Xid::athena_marked(1)
            } else {
                Xid::new(1)
            },
            body: StatsReply::Flow(entries),
        }
    }

    #[test]
    fn flow_features_include_all_categories() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        let records = g.ingest(
            Dpid::new(1),
            &stats_msg(vec![flow_entry(ft(), 100, 64_000, 4)], true),
            SimTime::from_secs(10),
            &app_core,
        );
        // One flow record + one switch-state record + two host records
        // (source and destination hosts of the single flow).
        assert_eq!(records.len(), 4);
        assert_eq!(
            records
                .iter()
                .filter(|r| r.meta.message_type == "HOST_STATE")
                .count(),
            2
        );
        let host = records
            .iter()
            .find(|r| r.meta.message_type == "HOST_STATE")
            .unwrap();
        assert!(host.index.host.is_some());
        let r = &records[0];
        assert_eq!(r.field("FLOW_PACKET_COUNT"), Some(100.0));
        assert_eq!(r.field("FLOW_BYTE_PER_PACKET"), Some(640.0));
        assert_eq!(r.field("FLOW_PACKET_PER_DURATION"), Some(25.0));
        assert_eq!(r.field("PAIR_FLOW"), Some(0.0));
        assert_eq!(r.field("FLOW_TP_DST"), Some(80.0));
        assert!(r.meta.athena_polled);
        assert_eq!(records[1].field("SWITCH_FLOW_COUNT"), Some(1.0));
    }

    #[test]
    fn variation_features_track_previous_sample() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        g.ingest(
            Dpid::new(1),
            &stats_msg(vec![flow_entry(ft(), 100, 64_000, 4)], true),
            SimTime::from_secs(10),
            &app_core,
        );
        let records = g.ingest(
            Dpid::new(1),
            &stats_msg(vec![flow_entry(ft(), 175, 96_000, 9)], true),
            SimTime::from_secs(15),
            &app_core,
        );
        let r = &records[0];
        assert_eq!(r.field("FLOW_PACKET_COUNT_VAR"), Some(75.0));
        assert_eq!(r.field("FLOW_BYTE_COUNT_VAR"), Some(32_000.0));
        assert_eq!(r.field("FLOW_DURATION_SEC_VAR"), Some(5.0));
    }

    #[test]
    fn pair_flow_detection() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        let records = g.ingest(
            Dpid::new(1),
            &stats_msg(
                vec![
                    flow_entry(ft(), 10, 1000, 1),
                    flow_entry(ft().reversed(), 5, 500, 1),
                ],
                true,
            ),
            SimTime::from_secs(1),
            &app_core,
        );
        let flows: Vec<&FeatureRecord> = records
            .iter()
            .filter(|r| r.meta.message_type == "FLOW_STATS")
            .collect();
        assert_eq!(flows.len(), 2);
        assert!(flows.iter().all(|r| r.field("PAIR_FLOW") == Some(1.0)));
        assert!(flows
            .iter()
            .all(|r| r.field("PAIR_FLOW_RATIO") == Some(1.0)));
        let sw = records
            .iter()
            .find(|r| r.meta.message_type == "SWITCH_STATE")
            .unwrap();
        assert_eq!(sw.field("SWITCH_PAIR_FLOW_COUNT"), Some(2.0));
    }

    #[test]
    fn port_stats_features_and_variation() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        let entry = |rx_bytes| PortStatsEntry {
            port_no: PortNo::new(1),
            rx_packets: 10,
            rx_bytes,
            ..PortStatsEntry::default()
        };
        let msg = |rx_bytes| OfMessage::StatsReply {
            xid: Xid::athena_marked(2),
            body: StatsReply::Port(vec![entry(rx_bytes)]),
        };
        g.ingest(Dpid::new(2), &msg(1000), SimTime::from_secs(1), &app_core);
        let records = g.ingest(Dpid::new(2), &msg(5000), SimTime::from_secs(6), &app_core);
        let r = &records[0];
        assert_eq!(r.field("PORT_RX_BYTES"), Some(5000.0));
        assert_eq!(r.field("PORT_RX_BYTES_VAR"), Some(4000.0));
        assert_eq!(r.field("PORT_RX_BYTE_PER_PACKET"), Some(500.0));
        assert_eq!(r.index.port, Some(PortNo::new(1)));
    }

    #[test]
    fn flow_removed_features() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        let msg = OfMessage::FlowRemoved {
            xid: Xid::new(1),
            body: FlowRemoved {
                match_fields: MatchFields::exact_five_tuple(ft()),
                cookie: 0,
                priority: 1,
                reason: FlowRemovedReason::IdleTimeout,
                duration: SimDuration::from_secs(30),
                packet_count: 60,
                byte_count: 6000,
            },
        };
        let records = g.ingest(Dpid::new(1), &msg, SimTime::from_secs(40), &app_core);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.field("REMOVED_REASON_IDLE"), Some(1.0));
        assert_eq!(r.field("REMOVED_REASON_HARD"), Some(0.0));
        assert_eq!(r.field("REMOVED_BYTE_PER_PACKET"), Some(100.0));
    }

    #[test]
    fn message_window_counts_and_rates() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        let pin = OfMessage::packet_in(
            Xid::new(1),
            athena_openflow::PacketHeader::tcp_syn(
                PortNo::new(1),
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
            ),
        );
        for _ in 0..10 {
            g.ingest(Dpid::new(1), &pin, SimTime::from_secs(1), &app_core);
        }
        let records = g.flush_window(SimTime::from_secs(5));
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.field("MSG_PACKET_IN_COUNT"), Some(10.0));
        assert_eq!(r.field("MSG_PACKET_IN_RATE"), Some(2.0)); // 10 / 5s window
        assert_eq!(r.field("MSG_TOTAL_COUNT"), Some(10.0));
        // Next window is fresh; VAR is negative after silence.
        let records = g.flush_window(SimTime::from_secs(10));
        assert!(records.is_empty()); // no new messages -> no entry
    }

    #[test]
    fn window_boundaries_share_the_flush_rate_math() {
        let g = FeatureGenerator::new(ControllerId::new(0));
        // Default 5 s window: boundaries in (0, 20] are 5, 10, 15, 20.
        let bounds: Vec<SimTime> = g
            .window_boundaries(SimTime::ZERO, SimTime::from_secs(20))
            .collect();
        assert_eq!(
            bounds,
            vec![
                SimTime::from_secs(5),
                SimTime::from_secs(10),
                SimTime::from_secs(15),
                SimTime::from_secs(20),
            ]
        );
        // The iterator and flush_window derive from the same Windowing:
        // the MSG rate a flush would emit is bitwise the shared formula.
        let w = g.windowing();
        assert_eq!(w.width(), g.window);
        assert_eq!(w.rate(10).to_bits(), 2.0f64.to_bits()); // 10 / 5 s
    }

    #[test]
    fn gc_removes_stale_entries() {
        let mut g = FeatureGenerator::new(ControllerId::new(0));
        g.ttl = SimDuration::from_secs(10);
        g.ingest(
            Dpid::new(1),
            &stats_msg(vec![flow_entry(ft(), 1, 1, 1)], true),
            SimTime::from_secs(1),
            &app_core,
        );
        assert_eq!(g.tracked_entries(), 1);
        assert_eq!(g.gc(SimTime::from_secs(5)), 0);
        assert_eq!(g.gc(SimTime::from_secs(20)), 1);
        assert_eq!(g.tracked_entries(), 0);
    }
}
