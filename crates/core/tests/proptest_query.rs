//! Property-based tests for the Athena query language: parser totality,
//! parser/builder agreement, and filter-semantics invariants.

use athena_core::{Query, QueryBuilder};
use athena_store::doc;
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("switch".to_owned()),
        Just("tp_dst".to_owned()),
        Just("FLOW_PACKET_COUNT".to_owned()),
        Just("FLOW_BYTE_COUNT".to_owned()),
        Just("PAIR_FLOW".to_owned()),
    ]
}

fn arb_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("=="),
        Just("!="),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
    ]
}

proptest! {
    /// Any well-formed comparison chain parses, and its filter never
    /// panics when evaluated against arbitrary documents.
    #[test]
    fn parser_is_total_on_wellformed_input(
        parts in proptest::collection::vec((arb_field(), arb_op(), -1000i64..1000), 1..5),
        doc_values in proptest::collection::vec((arb_field(), -1000i64..1000), 0..5),
        use_or in any::<bool>(),
    ) {
        let glue = if use_or { " or " } else { " && " };
        let text = parts
            .iter()
            .map(|(f, op, v)| format!("{f} {op} {v}"))
            .collect::<Vec<_>>()
            .join(glue);
        let q = Query::parse(&text).unwrap();
        let mut d = doc!{ "seed" => 0 };
        for (f, v) in doc_values {
            d.set(f, v);
        }
        let _ = q.to_filter().matches(&d); // must not panic
    }

    /// The string parser and the typed builder agree on matching
    /// semantics for conjunctions of equalities and comparisons.
    #[test]
    fn parser_and_builder_agree(
        a in -100i64..100,
        b in -100i64..100,
        probe_a in -100i64..100,
        probe_b in -100i64..100,
    ) {
        let text = format!("switch == {a} && FLOW_PACKET_COUNT >= {b}");
        let parsed = Query::parse(&text).unwrap();
        let built = QueryBuilder::new()
            .eq("switch", a)
            .gte("FLOW_PACKET_COUNT", b)
            .build();
        let d = doc!{ "switch" => probe_a, "FLOW_PACKET_COUNT" => probe_b };
        prop_assert_eq!(
            parsed.to_filter().matches(&d),
            built.to_filter().matches(&d)
        );
    }

    /// A comparison and its negation partition the documents that carry
    /// the field.
    #[test]
    fn eq_and_ne_partition(v in -100i64..100, probe in -100i64..100) {
        let eq = Query::parse(&format!("x == {v}")).unwrap();
        let ne = Query::parse(&format!("x != {v}")).unwrap();
        let d = doc!{ "x" => probe };
        prop_assert_ne!(
            eq.to_filter().matches(&d),
            ne.to_filter().matches(&d)
        );
    }

    /// `<` and `>=` partition documents carrying the field; `<=` and `>`
    /// likewise.
    #[test]
    fn range_operators_partition(v in -100i64..100, probe in -100i64..100) {
        let d = doc!{ "x" => probe };
        let lt = Query::parse(&format!("x < {v}")).unwrap().to_filter().matches(&d);
        let gte = Query::parse(&format!("x >= {v}")).unwrap().to_filter().matches(&d);
        prop_assert_ne!(lt, gte);
        let lte = Query::parse(&format!("x <= {v}")).unwrap().to_filter().matches(&d);
        let gt = Query::parse(&format!("x > {v}")).unwrap().to_filter().matches(&d);
        prop_assert_ne!(lte, gt);
    }

    /// Limit is always honored by find-options application.
    #[test]
    fn limit_truncates(n in 1usize..50, limit in 1usize..50) {
        let q = Query::parse(&format!("limit {limit}")).unwrap();
        let docs: Vec<athena_store::Document> =
            (0..n).map(|i| doc!{ "i" => i as i64 }).collect();
        let out = q.to_find_options().apply(docs);
        prop_assert_eq!(out.len(), n.min(limit));
    }

    /// Sorting by a field always yields a monotone sequence.
    #[test]
    fn sort_is_monotone(values in proptest::collection::vec(-1000i64..1000, 0..40)) {
        let q = Query::parse("sort x asc").unwrap();
        let docs: Vec<athena_store::Document> =
            values.iter().map(|v| doc!{ "x" => *v }).collect();
        let out = q.to_find_options().apply(docs);
        let sorted: Vec<i64> = out.iter().filter_map(|d| d.get_i64("x")).collect();
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }
}
