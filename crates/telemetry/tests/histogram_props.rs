//! Property tests for the log-scale histogram: arbitrary samples must
//! never panic, and reported percentiles must be ordered and bounded by
//! the exact recorded extremes.

use athena_telemetry::Telemetry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn arbitrary_samples_never_panic_and_percentiles_are_monotone(
        samples in proptest::collection::vec(any::<u64>(), 0..256),
    ) {
        let tel = Telemetry::new();
        let hist = tel.metrics().histogram("prop", "samples");
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        let exact_max = samples.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(snap.max, exact_max);
        if let Some(&lo) = samples.iter().min() {
            // Percentile estimates can never dip below the smallest
            // sample's bucket floor.
            prop_assert!(snap.p50 as u128 >= (lo as u128).next_power_of_two() / 2);
        }
        prop_assert_eq!(
            snap.sum,
            samples.iter().fold(0u64, |acc, &s| acc.wrapping_add(s))
        );
    }

    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(any::<u64>(), 1..128),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let tel = Telemetry::new();
        let hist = tel.metrics().histogram("prop", "samples");
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        let values: Vec<u64> = sorted.iter().map(|&q| hist.quantile(q)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles not monotone: {:?}", values);
        }
    }
}
