//! Measures the cost of telemetry instruments in both states.
//!
//! The disabled numbers are the contract: a counter increment or
//! histogram record against a disabled domain must cost roughly one
//! relaxed atomic load, and a disabled timer must never read the wall
//! clock. `scripts/ci.sh` runs this in smoke mode
//! (`ATHENA_BENCH_SMOKE=1`) to keep the gate fast.

use athena_telemetry::Telemetry;
use athena_types::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn smoke_config() -> Criterion {
    if athena_types::env_flag("ATHENA_BENCH_SMOKE") {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(200))
    } else {
        Criterion::default()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let on = Telemetry::new();
    let off = Telemetry::off();

    let c_on = on.metrics().counter("bench", "hits");
    let c_off = off.metrics().counter("bench", "hits");
    c.bench_function("counter_inc_enabled", |b| b.iter(|| c_on.inc()));
    c.bench_function("counter_inc_disabled", |b| b.iter(|| c_off.inc()));

    let h_on = on.metrics().histogram("bench", "lat_ns");
    let h_off = off.metrics().histogram("bench", "lat_ns");
    c.bench_function("histogram_record_enabled", |b| {
        b.iter(|| h_on.record(black_box(12_345)))
    });
    c.bench_function("histogram_record_disabled", |b| {
        b.iter(|| h_off.record(black_box(12_345)))
    });

    c.bench_function("hist_timer_enabled", |b| {
        b.iter(|| h_on.start_timer().observe(&h_on))
    });
    c.bench_function("hist_timer_disabled", |b| {
        b.iter(|| h_off.start_timer().observe(&h_off))
    });

    c.bench_function("span_disabled", |b| {
        b.iter(|| {
            let span = off.tracer().span("bench", "op", SimTime::ZERO);
            off.tracer().end_span(span, SimTime::ZERO, "");
        })
    });
}

criterion_group! {
    name = benches;
    config = smoke_config();
    targets = bench_overhead
}
criterion_main!(benches);
