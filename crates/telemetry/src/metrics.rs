//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Handles are `Arc`-backed and lock-free to record into; the registry's
//! mutex is touched only at registration and snapshot time, never on the
//! hot path. Every handle shares the owning [`Telemetry`]'s enabled flag:
//! a record on a disabled instrument is one relaxed atomic load.
//!
//! [`Telemetry`]: crate::Telemetry

use crate::report::{CounterEntry, GaugeEntry, HistogramEntry, TelemetryReport};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: one for zero plus one per bit position
/// of a `u64` sample.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Identifies one metric: which subsystem owns it, what it measures, and
/// (optionally) which instance of the subsystem it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// The owning subsystem (`"dataplane"`, `"store"`, …).
    pub subsystem: String,
    /// The metric name. By convention a `_ns` suffix marks nanosecond
    /// latencies, which reports render as humanized durations.
    pub name: String,
    /// Distinguishes instances of the same subsystem (`"sw3"`,
    /// `"ctrl-0"`); empty for singleton metrics.
    pub instance: String,
}

impl MetricKey {
    fn new(subsystem: &str, name: &str, instance: &str) -> Self {
        MetricKey {
            subsystem: subsystem.to_owned(),
            name: name.to_owned(),
            instance: instance.to_owned(),
        }
    }

    /// The `subsystem/name[instance]` display form.
    pub fn label(&self) -> String {
        if self.instance.is_empty() {
            format!("{}/{}", self.subsystem, self.name)
        } else {
            format!("{}/{}[{}]", self.subsystem, self.name, self.instance)
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not connected to any registry (records are kept but
    /// never reported; used as the disabled default in subsystems).
    pub fn detached() -> Self {
        Counter {
            enabled: Arc::new(AtomicBool::new(false)),
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    /// Defaults to [`Counter::detached`] so instrumented structs can keep
    /// deriving `Default`.
    fn default() -> Self {
        Counter::detached()
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not connected to any registry.
    pub fn detached() -> Self {
        Gauge {
            enabled: Arc::new(AtomicBool::new(false)),
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    /// Defaults to [`Gauge::detached`].
    fn default() -> Self {
        Gauge::detached()
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket holding `v`: bucket 0 is exactly zero, bucket `i`
/// (1 ≤ i ≤ 64) covers `[2^(i-1), 2^i - 1]`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log-scale histogram over `u64` samples.
///
/// 65 power-of-two buckets cover the whole `u64` range, so recording
/// never allocates, never locks, and never panics. Quantiles interpolate
/// linearly inside the winning bucket and are clamped to the exact
/// recorded maximum, which keeps p50 ≤ p90 ≤ p99 ≤ max by construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A histogram not connected to any registry.
    pub fn detached() -> Self {
        Histogram {
            enabled: Arc::new(AtomicBool::new(false)),
            inner: Arc::new(HistogramInner::new()),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts a wall-clock timer whose elapsed nanoseconds land in this
    /// histogram via [`HistTimer::observe`]. On a disabled histogram the
    /// clock is never read.
    #[inline]
    pub fn start_timer(&self) -> HistTimer {
        HistTimer {
            start: if self.enabled.load(Ordering::Relaxed) {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// The value at quantile `q` (clamped into `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.raw_snapshot().quantile(q)
    }

    /// A consistent-enough snapshot (counters are read individually, so
    /// a concurrent writer may skew totals by a few in-flight samples —
    /// fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw = self.raw_snapshot();
        HistogramSnapshot {
            count: raw.count,
            sum: raw.sum,
            max: raw.max,
            p50: raw.quantile(0.50),
            p90: raw.quantile(0.90),
            p99: raw.quantile(0.99),
        }
    }

    fn raw_snapshot(&self) -> RawSnapshot {
        let inner = &*self.inner;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        RawSnapshot {
            count: buckets.iter().sum(),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    /// Defaults to [`Histogram::detached`].
    fn default() -> Self {
        Histogram::detached()
    }
}

/// An in-flight wall-clock measurement (see [`Histogram::start_timer`]).
#[derive(Debug)]
#[must_use = "a timer that is never observed measures nothing"]
pub struct HistTimer {
    start: Option<Instant>,
}

impl HistTimer {
    /// Records the elapsed nanoseconds into `hist`. No-op if the
    /// histogram was disabled when the timer started.
    #[inline]
    pub fn observe(self, hist: &Histogram) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(ns);
        }
    }
}

struct RawSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl RawSnapshot {
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= below + c {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max);
                let pos = (rank - below) as f64 / c as f64;
                let est = lo as f64 + pos * (hi.saturating_sub(lo)) as f64;
                let est = if est >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    est as u64
                };
                return est.clamp(lo.min(self.max), self.max);
            }
            below += c;
        }
        self.max
    }
}

/// Percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps only after ~5 centuries of nanoseconds).
    pub sum: u64,
    /// Largest sample, exact.
    pub max: u64,
    /// Median (interpolated).
    pub p50: u64,
    /// 90th percentile (interpolated).
    pub p90: u64,
    /// 99th percentile (interpolated).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: hands out instrument handles and snapshots them into a
/// [`TelemetryReport`]. Obtained through [`Telemetry`](crate::Telemetry).
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        MetricsRegistry {
            enabled,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// A counter labeled `subsystem/name` (no instance).
    pub fn counter(&self, subsystem: &str, name: &str) -> Counter {
        self.counter_with(subsystem, name, "")
    }

    /// A counter for one instance of a subsystem.
    ///
    /// Registration is idempotent: the same key always resolves to the
    /// same underlying counter. If the key is already registered as a
    /// different instrument kind, a detached handle is returned instead
    /// (records disappear rather than panicking a hot path).
    pub fn counter_with(&self, subsystem: &str, name: &str, instance: &str) -> Counter {
        let key = MetricKey::new(subsystem, name, instance);
        let mut map = lock(&self.metrics);
        match map.entry(key).or_insert_with(|| {
            Metric::Counter(Counter {
                enabled: Arc::clone(&self.enabled),
                value: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// A gauge labeled `subsystem/name`.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Gauge {
        self.gauge_with(subsystem, name, "")
    }

    /// A gauge for one instance of a subsystem (idempotent; see
    /// [`MetricsRegistry::counter_with`]).
    pub fn gauge_with(&self, subsystem: &str, name: &str, instance: &str) -> Gauge {
        let key = MetricKey::new(subsystem, name, instance);
        let mut map = lock(&self.metrics);
        match map.entry(key).or_insert_with(|| {
            Metric::Gauge(Gauge {
                enabled: Arc::clone(&self.enabled),
                value: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// A histogram labeled `subsystem/name`.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Histogram {
        self.histogram_with(subsystem, name, "")
    }

    /// A histogram for one instance of a subsystem (idempotent; see
    /// [`MetricsRegistry::counter_with`]).
    pub fn histogram_with(&self, subsystem: &str, name: &str, instance: &str) -> Histogram {
        let key = MetricKey::new(subsystem, name, instance);
        let mut map = lock(&self.metrics);
        match map.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram {
                enabled: Arc::clone(&self.enabled),
                inner: Arc::new(HistogramInner::new()),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::detached(),
        }
    }

    /// Snapshots every registered metric, sorted by key.
    pub fn report(&self) -> TelemetryReport {
        let map = lock(&self.metrics);
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push(CounterEntry {
                    key: key.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => gauges.push(GaugeEntry {
                    key: key.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => histograms.push(HistogramEntry {
                    key: key.clone(),
                    snapshot: h.snapshot(),
                }),
            }
        }
        TelemetryReport {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &lock(&self.metrics).len())
            .finish()
    }
}

/// Locks the registry map, recovering from poisoning (an instrument
/// snapshot must never propagate a panic from an unrelated thread) and
/// reporting the acquisition to the lock-order sentinel.
fn lock<T>(m: &Mutex<T>) -> athena_types::sentinel::StdMutexGuard<'_, T> {
    athena_types::sentinel::lock_std(m, "telemetry/metrics")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_registry() -> MetricsRegistry {
        MetricsRegistry::with_flag(Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        // 100 samples spread across bucket 11 ([1024, 2047]).
        for _ in 0..100 {
            h.record(1500);
        }
        let p50 = h.quantile(0.50);
        // Interpolation assumes uniform occupancy of [1024, 1500] (hi is
        // clamped to the recorded max): the median lands mid-range.
        assert!((1024..=1500).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 1500);
        assert_eq!(h.snapshot().max, 1500);
    }

    #[test]
    fn quantiles_separate_well_spread_samples() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        // 90 fast samples, 10 slow ones, different buckets.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50 < 128, "p50={}", s.p50);
        assert!(s.p99 > 500_000, "p99={}", s.p99);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn empty_and_single_sample_quantiles() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        assert_eq!(h.quantile(0.5), 0);
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.max, s.p50), (2, 0, 0));
    }

    #[test]
    fn extreme_samples_do_not_overflow_quantiles() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.max, u64::MAX);
        assert!(s.p50 >= 1u64 << 63);
    }

    #[test]
    fn registration_is_idempotent_and_type_checked() {
        let reg = enabled_registry();
        let a = reg.counter("s", "n");
        let b = reg.counter("s", "n");
        a.inc();
        assert_eq!(b.get(), 1);
        // Same key, different kind: detached, not shared, no panic.
        let g = reg.gauge("s", "n");
        g.set(7);
        assert_eq!(reg.counter("s", "n").get(), 1);
    }

    #[test]
    fn instance_labels_separate_metrics() {
        let reg = enabled_registry();
        reg.counter_with("dp", "lookups", "sw1").add(5);
        reg.counter_with("dp", "lookups", "sw2").add(9);
        let report = reg.report();
        assert_eq!(report.counters.len(), 2);
        assert_eq!(report.counters[0].key.instance, "sw1");
        assert_eq!(report.counters[0].value, 5);
        assert_eq!(report.counters[1].value, 9);
    }

    #[test]
    fn timer_measures_only_when_enabled() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "lat_ns");
        let t = h.start_timer();
        t.observe(&h);
        assert_eq!(h.snapshot().count, 1);
        let off = Histogram::detached();
        let t = off.start_timer();
        t.observe(&off);
        assert_eq!(off.snapshot().count, 0);
    }

    #[test]
    fn mean_is_sum_over_count() {
        let reg = enabled_registry();
        let h = reg.histogram("t", "h");
        h.record(10);
        h.record(30);
        assert_eq!(h.snapshot().mean(), 20);
    }
}
