//! Structured tracing: spans and events stamped with virtual and wall
//! time, kept in a bounded ring buffer.
//!
//! The simulation runs on virtual [`SimTime`]; the CPU work that drives
//! it runs on the wall clock. A trace entry carries both so a report can
//! answer "what happened at t=12 s of simulated time" *and* "what did it
//! cost to compute". Wall stamps are nanoseconds since the recorder's
//! creation, which keeps the text/JSON exports small and stable.

use crate::json;
use athena_types::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What kind of entry a [`TraceEntry`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration: entered and finished, with both timestamps.
    Span,
    /// An instantaneous occurrence.
    Event,
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Monotone sequence number (survives ring-buffer eviction, so gaps
    /// reveal drops).
    pub seq: u64,
    /// Span or event.
    pub kind: TraceKind,
    /// The owning subsystem.
    pub subsystem: &'static str,
    /// The operation name.
    pub name: &'static str,
    /// Virtual time when the span opened (or the event fired).
    pub sim_start: SimTime,
    /// Virtual time when the span closed (equals `sim_start` for events).
    pub sim_end: SimTime,
    /// Wall nanoseconds since recorder creation when the entry started.
    pub wall_start_ns: u64,
    /// Wall nanoseconds the span covered (0 for events).
    pub wall_dur_ns: u64,
    /// Free-form detail text.
    pub detail: String,
}

/// An open span returned by [`TraceRecorder::span`]; close it with
/// [`TraceRecorder::end_span`].
#[derive(Debug)]
#[must_use = "an unfinished span is never recorded"]
pub struct Span {
    subsystem: &'static str,
    name: &'static str,
    sim_start: SimTime,
    wall_start: Option<Instant>,
}

#[derive(Debug, Default)]
struct TraceState {
    ring: VecDeque<TraceEntry>,
    seq: u64,
    dropped: u64,
}

/// The bounded trace recorder. Obtained through
/// [`Telemetry`](crate::Telemetry).
pub struct TraceRecorder {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    capacity: usize,
    state: Mutex<TraceState>,
}

impl TraceRecorder {
    pub(crate) fn with_flag(enabled: Arc<AtomicBool>, capacity: usize) -> Self {
        TraceRecorder {
            enabled,
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(TraceState::default()),
        }
    }

    fn wall_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records an instantaneous event at virtual time `at`.
    pub fn event(
        &self,
        subsystem: &'static str,
        name: &'static str,
        at: SimTime,
        detail: impl Into<String>,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let wall = self.wall_ns();
        self.push(TraceEntry {
            seq: 0,
            kind: TraceKind::Event,
            subsystem,
            name,
            sim_start: at,
            sim_end: at,
            wall_start_ns: wall,
            wall_dur_ns: 0,
            detail: detail.into(),
        });
    }

    /// Opens a span at virtual time `sim_start`. When disabled, the wall
    /// clock is not read and the eventual [`TraceRecorder::end_span`] is
    /// a no-op.
    pub fn span(&self, subsystem: &'static str, name: &'static str, sim_start: SimTime) -> Span {
        Span {
            subsystem,
            name,
            sim_start,
            wall_start: if self.enabled.load(Ordering::Relaxed) {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Closes a span at virtual time `sim_end` and records it.
    pub fn end_span(&self, span: Span, sim_end: SimTime, detail: impl Into<String>) {
        let Some(wall_start) = span.wall_start else {
            return;
        };
        let wall_dur_ns = u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let wall_start_ns =
            u64::try_from(wall_start.saturating_duration_since(self.epoch).as_nanos())
                .unwrap_or(u64::MAX);
        self.push(TraceEntry {
            seq: 0,
            kind: TraceKind::Span,
            subsystem: span.subsystem,
            name: span.name,
            sim_start: span.sim_start,
            sim_end,
            wall_start_ns,
            wall_dur_ns,
            detail: detail.into(),
        });
    }

    fn push(&self, mut entry: TraceEntry) {
        let mut state = lock(&self.state);
        entry.seq = state.seq;
        state.seq += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(entry);
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.state).ring.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }

    /// A copy of the buffered entries, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        lock(&self.state).ring.iter().cloned().collect()
    }

    /// Clears the buffer (the drop counter is kept).
    pub fn clear(&self) {
        lock(&self.state).ring.clear();
    }

    /// One line per entry:
    /// `seq kind subsystem/name sim=[start..end] wall=[start+dur] detail`.
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            let kind = match e.kind {
                TraceKind::Span => "span ",
                TraceKind::Event => "event",
            };
            out.push_str(&format!(
                "#{:<6} {kind} {}/{} sim=[{}..{}] wall=[{}ns +{}ns]",
                e.seq, e.subsystem, e.name, e.sim_start, e.sim_end, e.wall_start_ns, e.wall_dur_ns,
            ));
            if !e.detail.is_empty() {
                out.push_str(" : ");
                out.push_str(&e.detail);
            }
            out.push('\n');
        }
        out
    }

    /// A JSON array of entries (virtual times in integer microseconds,
    /// wall times in integer nanoseconds).
    pub fn export_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::key_into(&mut out, "seq");
            out.push_str(&e.seq.to_string());
            out.push(',');
            json::key_into(&mut out, "kind");
            json::string_into(
                &mut out,
                match e.kind {
                    TraceKind::Span => "span",
                    TraceKind::Event => "event",
                },
            );
            out.push(',');
            json::key_into(&mut out, "subsystem");
            json::string_into(&mut out, e.subsystem);
            out.push(',');
            json::key_into(&mut out, "name");
            json::string_into(&mut out, e.name);
            out.push(',');
            json::key_into(&mut out, "sim_start_us");
            out.push_str(&e.sim_start.as_micros().to_string());
            out.push(',');
            json::key_into(&mut out, "sim_end_us");
            out.push_str(&e.sim_end.as_micros().to_string());
            out.push(',');
            json::key_into(&mut out, "wall_start_ns");
            out.push_str(&e.wall_start_ns.to_string());
            out.push(',');
            json::key_into(&mut out, "wall_dur_ns");
            out.push_str(&e.wall_dur_ns.to_string());
            out.push(',');
            json::key_into(&mut out, "detail");
            json::string_into(&mut out, &e.detail);
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Locks the trace state, recovering from poisoning (tracing must never
/// turn a panic on another thread into a second panic here) and
/// reporting the acquisition to the lock-order sentinel.
fn lock<T>(m: &Mutex<T>) -> athena_types::sentinel::StdMutexGuard<'_, T> {
    athena_types::sentinel::lock_std(m, "telemetry/state")
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimDuration;

    fn recorder(capacity: usize) -> TraceRecorder {
        TraceRecorder::with_flag(Arc::new(AtomicBool::new(true)), capacity)
    }

    #[test]
    fn spans_carry_virtual_and_wall_stamps() {
        let rec = recorder(16);
        let t0 = SimTime::from_secs(5);
        let span = rec.span("dataplane", "step", t0);
        let t1 = t0 + SimDuration::from_millis(10);
        rec.end_span(span, t1, "tick");
        let entries = rec.entries();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.kind, TraceKind::Span);
        assert_eq!(e.sim_start, t0);
        assert_eq!(e.sim_end, t1);
        assert_eq!(e.detail, "tick");
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let rec = recorder(3);
        for i in 0..5 {
            rec.event("t", "e", SimTime::from_secs(i), "");
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let seqs: Vec<u64> = rec.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn exports_render_both_clocks() {
        let rec = recorder(8);
        rec.event("store", "flush", SimTime::from_secs(2), "42 docs");
        let text = rec.export_text();
        assert!(text.contains("store/flush"));
        assert!(text.contains("t=2.000000s"));
        assert!(text.contains("42 docs"));
        let json = rec.export_json();
        assert!(json.contains("\"sim_start_us\":2000000"));
        assert!(json.contains("\"detail\":\"42 docs\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = TraceRecorder::with_flag(Arc::new(AtomicBool::new(false)), 8);
        rec.event("t", "e", SimTime::ZERO, "");
        let span = rec.span("t", "s", SimTime::ZERO);
        rec.end_span(span, SimTime::ZERO, "");
        assert!(rec.is_empty());
        assert_eq!(rec.export_json(), "[]");
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let rec = recorder(1);
        rec.event("t", "a", SimTime::ZERO, "");
        rec.event("t", "b", SimTime::ZERO, "");
        assert_eq!(rec.dropped(), 1);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 1);
    }
}
