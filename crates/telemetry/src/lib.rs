//! Observability for the Athena reproduction: metrics + virtual-time
//! tracing, with no dependencies beyond `athena-types` and `std`.
//!
//! The paper's whole evaluation is observational (Cbench throughput,
//! per-stage feature-generation and query latencies, detection-app
//! overhead), so every subsystem in this workspace reports into one
//! shared substrate:
//!
//! - [`MetricsRegistry`] — lock-cheap counters, gauges, and fixed-bucket
//!   log-scale histograms (p50/p90/p99/max), keyed by subsystem, metric
//!   name, and an optional instance label ([`metrics`] module),
//! - [`TraceRecorder`] — structured [`Span`]s and events stamped with
//!   both **virtual** [`SimTime`](athena_types::SimTime) and wall clock,
//!   kept in a bounded ring buffer with text/JSON exporters ([`trace`]
//!   module),
//! - [`TelemetryReport`] — the per-subsystem summary the bench binaries
//!   and the e2e harness print at exit ([`report`] module).
//!
//! A [`Telemetry`] handle bundles one registry and one recorder; cloning
//! yields another handle to the same instruments. Telemetry is **off by
//! default** ([`Telemetry::off`], also `Default`): a disabled instrument
//! costs one relaxed atomic load per record and never touches the wall
//! clock, so instrumented hot paths stay deterministic and essentially
//! free until a harness opts in with [`Telemetry::new`]. The
//! `e2e_overhead` gate and the `overhead` criterion bench in this crate
//! hold both ends of that contract.
//!
//! # Examples
//!
//! ```
//! use athena_telemetry::Telemetry;
//! use athena_types::SimTime;
//!
//! let tel = Telemetry::new();
//! let polls = tel.metrics().counter("controller", "stats_polls");
//! let latency = tel.metrics().histogram("store", "find_ns");
//!
//! polls.inc();
//! latency.record(12_500);
//! let span = tel.tracer().span("store", "find", SimTime::from_secs(1));
//! tel.tracer().end_span(span, SimTime::from_secs(1), "filter=swept");
//!
//! let report = tel.report();
//! assert!(report.render().contains("stats_polls"));
//! assert!(report.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod metrics;
pub mod names;
pub mod report;
pub mod trace;

pub(crate) mod json;

pub use metrics::{
    Counter, Gauge, HistTimer, Histogram, HistogramSnapshot, MetricKey, MetricsRegistry,
};
pub use report::{CounterEntry, GaugeEntry, HistogramEntry, TelemetryReport};
pub use trace::{Span, TraceEntry, TraceKind, TraceRecorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct TelemetryInner {
    enabled: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    tracer: TraceRecorder,
}

/// One observability domain: a metrics registry plus a trace recorder
/// sharing a single on/off switch.
///
/// Cloning is cheap and yields a handle to the *same* instruments — a
/// deployment creates one `Telemetry` and binds it into every subsystem
/// (`bind_telemetry` methods across the workspace).
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// Default ring-buffer capacity of the trace recorder.
    pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

    /// Creates an **enabled** telemetry domain.
    pub fn new() -> Self {
        Self::with_options(true, Self::DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a **disabled** telemetry domain (the default everywhere):
    /// every record is a single relaxed atomic load, no wall-clock reads.
    pub fn off() -> Self {
        Self::with_options(false, Self::DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a domain with an explicit enabled state and trace ring
    /// capacity.
    pub fn with_options(enabled: bool, trace_capacity: usize) -> Self {
        let flag = Arc::new(AtomicBool::new(enabled));
        Telemetry {
            inner: Arc::new(TelemetryInner {
                metrics: MetricsRegistry::with_flag(Arc::clone(&flag)),
                tracer: TraceRecorder::with_flag(Arc::clone(&flag), trace_capacity),
                enabled: flag,
            }),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The trace recorder.
    pub fn tracer(&self) -> &TraceRecorder {
        &self.inner.tracer
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off for every instrument already handed out.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Snapshots every metric into a printable/exportable report.
    pub fn report(&self) -> TelemetryReport {
        self.inner.metrics.report()
    }
}

impl Default for Telemetry {
    /// The default domain is **disabled** so instrumented subsystems pay
    /// only the atomic-load guard unless a harness opts in.
    fn default() -> Self {
        Telemetry::off()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("trace_len", &self.tracer().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::SimTime;

    #[test]
    fn handles_share_state_across_clones() {
        let tel = Telemetry::new();
        let other = tel.clone();
        tel.metrics().counter("a", "hits").add(3);
        assert_eq!(other.metrics().counter("a", "hits").get(), 3);
    }

    #[test]
    fn disabled_domain_records_nothing() {
        let tel = Telemetry::off();
        let c = tel.metrics().counter("a", "hits");
        let h = tel.metrics().histogram("a", "lat_ns");
        c.inc();
        h.record(99);
        let span = tel.tracer().span("a", "s", SimTime::ZERO);
        tel.tracer().end_span(span, SimTime::ZERO, "");
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(tel.tracer().len(), 0);
    }

    #[test]
    fn set_enabled_flips_existing_handles() {
        let tel = Telemetry::off();
        let c = tel.metrics().counter("a", "hits");
        c.inc();
        assert_eq!(c.get(), 0);
        tel.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
        tel.set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn default_is_off() {
        assert!(!Telemetry::default().is_enabled());
        assert!(Telemetry::new().is_enabled());
    }
}
