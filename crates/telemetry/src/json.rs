//! A tiny hand-rolled JSON writer.
//!
//! The telemetry crate sits below every other production crate and must
//! not pull in the serde shims, so exporters assemble their JSON with
//! these helpers instead. Only the forms telemetry emits are supported:
//! objects, arrays, strings, and integers.

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn string_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` onto `out`.
pub(crate) fn key_into(out: &mut String, key: &str) {
    string_into(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        string_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn key_has_colon() {
        let mut out = String::new();
        key_into(&mut out, "k");
        assert_eq!(out, "\"k\":");
    }
}
