//! The `TelemetryReport`: a point-in-time snapshot of every registered
//! metric, printable as a grouped text table or exportable as JSON.
//!
//! Bench binaries and the e2e harness print one of these at exit in
//! place of ad-hoc timing printouts. Metric names ending in `_ns` hold
//! nanosecond samples by convention and are humanized in the text
//! rendering (`12.5µs` instead of `12500`).

use crate::json;
use crate::metrics::{HistogramSnapshot, MetricKey};
use std::fmt::Write as _;

/// One counter in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Full metric key.
    pub key: MetricKey,
    /// Current count.
    pub value: u64,
}

/// One gauge in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeEntry {
    /// Full metric key.
    pub key: MetricKey,
    /// Current level.
    pub value: i64,
}

/// One histogram in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Full metric key.
    pub key: MetricKey,
    /// Count/sum/max and interpolated percentiles at snapshot time.
    pub snapshot: HistogramSnapshot,
}

/// A snapshot of every metric in a [`MetricsRegistry`](crate::MetricsRegistry),
/// sorted by key (subsystem, then name, then instance).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// All counters.
    pub counters: Vec<CounterEntry>,
    /// All gauges.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms.
    pub histograms: Vec<HistogramEntry>,
}

impl TelemetryReport {
    /// Whether the report carries no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the report as a text table grouped by subsystem.
    ///
    /// Histogram metrics whose name ends in `_ns` are printed with
    /// humanized durations; everything else prints raw numbers.
    pub fn render(&self) -> String {
        let mut out = String::from("== telemetry report ==\n");
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let mut subsystems: Vec<&str> = self
            .counters
            .iter()
            .map(|e| e.key.subsystem.as_str())
            .chain(self.gauges.iter().map(|e| e.key.subsystem.as_str()))
            .chain(self.histograms.iter().map(|e| e.key.subsystem.as_str()))
            .collect();
        subsystems.sort_unstable();
        subsystems.dedup();
        for subsystem in subsystems {
            let _ = writeln!(out, "[{subsystem}]");
            for e in self
                .counters
                .iter()
                .filter(|e| e.key.subsystem == subsystem)
            {
                let _ = writeln!(out, "  {:<42} {}", display_name(&e.key), e.value);
            }
            for e in self.gauges.iter().filter(|e| e.key.subsystem == subsystem) {
                let _ = writeln!(out, "  {:<42} {}", display_name(&e.key), e.value);
            }
            for e in self
                .histograms
                .iter()
                .filter(|e| e.key.subsystem == subsystem)
            {
                let s = &e.snapshot;
                let in_ns = e.key.name.ends_with("_ns");
                let fmt = |v: u64| {
                    if in_ns {
                        humanize_ns(v)
                    } else {
                        v.to_string()
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:<42} n={} p50={} p90={} p99={} max={} mean={}",
                    display_name(&e.key),
                    s.count,
                    fmt(s.p50),
                    fmt(s.p90),
                    fmt(s.p99),
                    fmt(s.max),
                    fmt(s.mean()),
                );
            }
        }
        out
    }

    /// Serializes the report as a JSON object with `counters`, `gauges`,
    /// and `histograms` arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::key_into(&mut out, "counters");
        out.push('[');
        for (i, e) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            key_fields(&mut out, &e.key);
            json::key_into(&mut out, "value");
            out.push_str(&e.value.to_string());
            out.push('}');
        }
        out.push_str("],");
        json::key_into(&mut out, "gauges");
        out.push('[');
        for (i, e) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            key_fields(&mut out, &e.key);
            json::key_into(&mut out, "value");
            out.push_str(&e.value.to_string());
            out.push('}');
        }
        out.push_str("],");
        json::key_into(&mut out, "histograms");
        out.push('[');
        for (i, e) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &e.snapshot;
            out.push('{');
            key_fields(&mut out, &e.key);
            for (field, v) in [
                ("count", s.count),
                ("sum", s.sum),
                ("max", s.max),
                ("p50", s.p50),
                ("p90", s.p90),
                ("p99", s.p99),
            ] {
                json::key_into(&mut out, field);
                out.push_str(&v.to_string());
                out.push(',');
            }
            out.pop();
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`TelemetryReport::to_json`] to `path`.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The part of the key shown inside a subsystem group: `name` or
/// `name[instance]`.
fn display_name(key: &MetricKey) -> String {
    if key.instance.is_empty() {
        key.name.clone()
    } else {
        format!("{}[{}]", key.name, key.instance)
    }
}

fn key_fields(out: &mut String, key: &MetricKey) {
    json::key_into(out, "subsystem");
    json::string_into(out, &key.subsystem);
    out.push(',');
    json::key_into(out, "name");
    json::string_into(out, &key.name);
    out.push(',');
    json::key_into(out, "instance");
    json::string_into(out, &key.instance);
    out.push(',');
}

/// Formats a nanosecond quantity at a readable scale.
fn humanize_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}\u{b5}s", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_report() -> TelemetryReport {
        let tel = Telemetry::new();
        tel.metrics().counter("controller", "stats_polls").add(7);
        tel.metrics()
            .counter_with("dataplane", "lookups", "s1")
            .add(3);
        tel.metrics().gauge("store", "docs").set(42);
        let h = tel.metrics().histogram("store", "find_ns");
        h.record(1_500);
        h.record(2_500_000);
        tel.report()
    }

    #[test]
    fn render_groups_by_subsystem_and_humanizes_ns() {
        let text = sample_report().render();
        assert!(text.contains("[controller]"));
        assert!(text.contains("stats_polls"));
        assert!(text.contains("lookups[s1]"));
        assert!(text.contains("[store]"));
        // max of find_ns is 2.5 ms; the _ns suffix triggers humanizing.
        assert!(text.contains("max=2.50ms"), "got:\n{text}");
    }

    #[test]
    fn json_round_trips_the_shape() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":["));
        assert!(json.contains("\"name\":\"stats_polls\",\"instance\":\"\",\"value\":7"));
        assert!(json.contains("\"histograms\":["));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = TelemetryReport::default();
        assert!(report.is_empty());
        assert!(report.render().contains("no metrics recorded"));
        assert_eq!(
            report.to_json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
    }

    #[test]
    fn humanize_scales() {
        assert_eq!(humanize_ns(999), "999ns");
        assert_eq!(humanize_ns(1_500), "1.50\u{b5}s");
        assert_eq!(humanize_ns(2_500_000), "2.50ms");
        assert_eq!(humanize_ns(3_000_000_000), "3.00s");
    }
}
