//! The metric-name registry: every subsystem/name pair a production
//! crate emits, declared as constants in one place.
//!
//! Call sites register instruments through these constants
//! (`m.counter(names::controller::SUBSYSTEM, names::controller::PACKET_INS)`),
//! and the observe layer's series and alert keys reference the same
//! strings — so a renamed counter cannot silently detach an alert rule.
//! The e2e observability gate asserts that every pair a full-stack run
//! emits satisfies [`is_declared`].

/// `controller/*` — the ONOS-like cluster pipeline.
pub mod controller {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "controller";
    /// Packet-ins handled by the cluster.
    pub const PACKET_INS: &str = "packet_ins";
    /// Flow-mods emitted southbound.
    pub const FLOW_MODS: &str = "flow_mods";
    /// Statistics replies settled.
    pub const STATS_REPLIES: &str = "stats_replies";
    /// Flow-removed notifications handled.
    pub const FLOW_REMOVEDS: &str = "flow_removeds";
    /// Packet-in service latency (wall nanoseconds).
    pub const PACKET_IN_NS: &str = "packet_in_ns";
    /// Poll requests issued by the statistics poller.
    pub const STATS_POLLS_ISSUED: &str = "stats_polls_issued";
    /// Rules registered with the flow-rule service.
    pub const RULES_INSTALLED: &str = "rules_installed";
    /// Rules removed from the flow-rule service.
    pub const RULES_REMOVED: &str = "rules_removed";
}

/// `failover/*` — mastership re-election under instance faults.
pub mod failover {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "failover";
    /// Re-election rounds run.
    pub const ELECTIONS: &str = "elections";
    /// Switch masterships moved across instances.
    pub const SWITCHES_MOVED: &str = "switches_moved";
    /// Controller instances currently crashed (gauge).
    pub const INSTANCES_DOWN: &str = "instances_down";
}

/// `retry/*` — timeout/retry/degraded-mode accounting.
pub mod retry {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "retry";
    /// Poller stats requests retried.
    pub const STATS_RETRIES: &str = "stats_retries";
    /// Poller stats requests timed out.
    pub const STATS_TIMEOUTS: &str = "stats_timeouts";
    /// Poller stats requests abandoned.
    pub const STATS_GAVE_UP: &str = "stats_gave_up";
    /// Athena SB stats requests timed out.
    pub const SB_STATS_TIMEOUTS: &str = "sb_stats_timeouts";
    /// Athena SB stats requests retried.
    pub const SB_STATS_RETRIES: &str = "sb_stats_retries";
    /// Athena SB stats requests abandoned.
    pub const SB_STATS_GAVE_UP: &str = "sb_stats_gave_up";
    /// Store writes handed off to a non-preferred replica.
    pub const STORE_WRITE_HANDOFFS: &str = "store_write_handoffs";
    /// Store writes that failed to reach quorum.
    pub const STORE_QUORUM_FAILURES: &str = "store_quorum_failures";
    /// Store reads served below full replication.
    pub const STORE_DEGRADED_READS: &str = "store_degraded_reads";
}

/// `store/*` — the replicated document store.
pub mod store {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "store";
    /// Insert latency (wall nanoseconds).
    pub const INSERT_NS: &str = "insert_ns";
    /// Find latency (wall nanoseconds).
    pub const FIND_NS: &str = "find_ns";
    /// Aggregate latency (wall nanoseconds).
    pub const AGGREGATE_NS: &str = "aggregate_ns";
    /// Per-replica write operations.
    pub const REPLICA_WRITES: &str = "replica_writes";
    /// Document deletions.
    pub const DELETES: &str = "deletes";
    /// Store nodes currently down (gauge).
    pub const NODES_DOWN: &str = "nodes_down";
}

/// `core/*` — Athena's northbound/southbound elements.
pub mod core {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "core";
    /// Feature-generation latency per SB instance (wall nanoseconds).
    pub const FEATURE_GEN_NS: &str = "feature_gen_ns";
    /// Record-dispatch latency per SB instance (wall nanoseconds).
    pub const DISPATCH_NS: &str = "dispatch_ns";
    /// Feature records dispatched.
    pub const FEATURE_RECORDS: &str = "feature_records";
    /// Model fit latency (wall nanoseconds).
    pub const FIT_NS: &str = "fit_ns";
    /// Detection models trained.
    pub const MODELS_TRAINED: &str = "models_trained";
}

/// `compute/*` — the Spark-like compute cluster.
pub mod compute {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "compute";
    /// Per-task latency (wall nanoseconds).
    pub const TASK_NS: &str = "task_ns";
    /// Per-job latency (wall nanoseconds).
    pub const JOB_NS: &str = "job_ns";
    /// Tasks executed.
    pub const TASKS: &str = "tasks";
}

/// `dataplane/*` — the simulated network.
pub mod dataplane {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "dataplane";
    /// Per-step latency (wall nanoseconds).
    pub const STEP_NS: &str = "step_ns";
    /// Packet-ins punted to the control plane.
    pub const PACKET_INS: &str = "packet_ins";
    /// Flow-removed notifications generated.
    pub const FLOW_REMOVEDS: &str = "flow_removeds";
    /// Bytes delivered by links.
    pub const DELIVERED_BYTES: &str = "delivered_bytes";
    /// Bytes dropped by contention or downed links.
    pub const DROPPED_BYTES: &str = "dropped_bytes";
    /// Per-switch flow-table lookups (gauge, mirrored per tick).
    pub const TABLE_LOOKUPS: &str = "table_lookups";
    /// Per-switch flow-table matches (gauge, mirrored per tick).
    pub const TABLE_MATCHES: &str = "table_matches";
    /// Flow-lookup cache hits.
    pub const CACHE_HITS: &str = "cache/hits";
    /// Flow-lookup cache misses.
    pub const CACHE_MISSES: &str = "cache/misses";
    /// Flow-lookup cache insertions.
    pub const CACHE_INSERTIONS: &str = "cache/insertions";
    /// Flow-lookup cache invalidations.
    pub const CACHE_INVALIDATIONS: &str = "cache/invalidations";
    /// Links whose effective capacity is currently below 1.0 (gauge).
    pub const LINKS_DEGRADED: &str = "links_degraded";
    /// Switch reboots observed by the dataplane.
    pub const SWITCH_REBOOTS: &str = "switch_reboots";
    /// Bytes tail-dropped by stochastic link-model queue drops.
    pub const LINK_QUEUE_DROPS: &str = "link_queue_drops";
    /// Per-tick link latency draws (microseconds, histogram).
    pub const LINK_LATENCY_US: &str = "link_latency_us";
    /// Expiry wake-ups armed on the timing wheel.
    pub const WHEEL_ARMED: &str = "wheel_armed";
    /// Wheel wake-ups that found a due flow entry.
    pub const WHEEL_FIRED: &str = "wheel_fired";
    /// Wheel wake-ups whose deadline had moved later (lazy cancellation).
    pub const WHEEL_SPURIOUS: &str = "wheel_spurious";
}

/// `scale/*` — the sharded event engine.
pub mod scale {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "scale";
    /// Shard count the engine partitioned the topology into (gauge).
    pub const SHARDS: &str = "shards";
    /// Sharded-engine ticks executed.
    pub const TICKS: &str = "ticks";
    /// Per-tick wall latency of the sharded engine (nanoseconds).
    pub const STEP_NS: &str = "step_ns";
    /// Packet-in batches handed to the controller (one per punt round).
    pub const PUNT_BATCHES: &str = "punt_batches";
    /// Packet-ins delivered inside batches.
    pub const BATCHED_PACKET_INS: &str = "batched_packet_ins";
    /// Packets handed across a shard boundary between routing rounds.
    pub const CROSS_SHARD_HANDOFFS: &str = "cross_shard_handoffs";
    /// Routing rounds run (per tick, summed).
    pub const ROUTING_ROUNDS: &str = "routing_rounds";
}

/// `workloads/*` — the unseen-attack generator family.
pub mod workloads {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "workloads";
    /// Attack traces generated.
    pub const ATTACKS_GENERATED: &str = "attacks_generated";
    /// Flows emitted across all generated traces.
    pub const FLOWS_GENERATED: &str = "flows_generated";
    /// Held-out (unseen-family) traces generated.
    pub const HELD_OUT_GENERATED: &str = "held_out_generated";
    /// Traces that carried a non-identity mutation draw.
    pub const MUTATIONS_APPLIED: &str = "mutations_applied";
}

/// `faults/*` — the chaos injector and channel.
pub mod faults {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "faults";
    /// Fault events injected.
    pub const INJECTED: &str = "injected";
    /// Link state changes injected.
    pub const LINK_EVENTS: &str = "link_events";
    /// Switch reboots injected.
    pub const SWITCH_REBOOTS: &str = "switch_reboots";
    /// Controller crash/rejoin events injected.
    pub const CONTROLLER_EVENTS: &str = "controller_events";
    /// Store node up/down events injected.
    pub const STORE_EVENTS: &str = "store_events";
    /// Message-fault profile changes applied.
    pub const MESSAGE_PROFILE_CHANGES: &str = "message_profile_changes";
    /// Southbound messages dropped by the chaos channel.
    pub const MSGS_DROPPED: &str = "msgs_dropped";
    /// Southbound messages duplicated by the chaos channel.
    pub const MSGS_DUPLICATED: &str = "msgs_duplicated";
    /// Southbound messages delayed by the chaos channel.
    pub const MSGS_DELAYED: &str = "msgs_delayed";
}

/// `parallel/*` — the work-stealing pool.
pub mod parallel {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "parallel";
    /// Tasks spawned onto the pool.
    pub const TASKS_SPAWNED: &str = "tasks_spawned";
    /// Items processed by parallel iterators.
    pub const ITEMS: &str = "items";
    /// Jobs submitted.
    pub const JOBS: &str = "jobs";
    /// Successful steals.
    pub const STEALS: &str = "steals";
    /// Worker park events.
    pub const PARKS: &str = "parks";
    /// Injector queue depth samples (histogram).
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Configured worker count (gauge).
    pub const WORKERS: &str = "workers";
    /// Per-worker task counts (instanced counter).
    pub const WORKER_TASKS: &str = "worker_tasks";
}

/// `persist/*` — WAL/checkpoint durability. Metric names here are
/// `<journal>_<suffix>`, one set per journal prefix.
pub mod persist {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "persist";
    /// Journal prefixes production code opens.
    pub const PREFIXES: &[&str] = &["store", "controller", "model"];
    /// Per-journal metric suffixes (appended to the prefix).
    pub const SUFFIXES: &[&str] = &[
        APPEND_NS_SUFFIX,
        CHECKPOINT_NS_SUFFIX,
        CHECKPOINT_BYTES_SUFFIX,
        WAL_RECORDS_SUFFIX,
        WAL_BYTES_SUFFIX,
        CHECKPOINTS_SUFFIX,
        RECORDS_REPLAYED_SUFFIX,
        TAILS_TRUNCATED_SUFFIX,
    ];
    /// WAL append latency (wall nanoseconds).
    pub const APPEND_NS_SUFFIX: &str = "_append_ns";
    /// Checkpoint write latency (wall nanoseconds).
    pub const CHECKPOINT_NS_SUFFIX: &str = "_checkpoint_ns";
    /// Checkpoint sizes (bytes).
    pub const CHECKPOINT_BYTES_SUFFIX: &str = "_checkpoint_bytes";
    /// WAL records appended.
    pub const WAL_RECORDS_SUFFIX: &str = "_wal_records";
    /// WAL bytes appended.
    pub const WAL_BYTES_SUFFIX: &str = "_wal_bytes";
    /// Checkpoints written.
    pub const CHECKPOINTS_SUFFIX: &str = "_checkpoints";
    /// Records replayed during recovery.
    pub const RECORDS_REPLAYED_SUFFIX: &str = "_records_replayed";
    /// Torn/corrupt WAL tails truncated during recovery.
    pub const TAILS_TRUNCATED_SUFFIX: &str = "_tails_truncated";
}

/// `apps/*` — the detection applications.
pub mod apps {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "apps";
    /// DDoS app training latency (wall nanoseconds).
    pub const DDOS_TRAIN_NS: &str = "ddos_train_ns";
    /// DDoS app test latency (wall nanoseconds).
    pub const DDOS_TEST_NS: &str = "ddos_test_ns";
}

/// `ml/*` — the algorithm library.
pub mod ml {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "ml";
    /// Per-algorithm fit latency (wall nanoseconds).
    pub const FIT_NS: &str = "fit_ns";
}

/// `stream/*` — the online learning pipeline (incremental windows,
/// retrain loop, model hot-swap).
pub mod stream {
    /// Subsystem label.
    pub const SUBSYSTEM: &str = "stream";
    /// Samples pushed into ring-buffer feature windows.
    pub const WINDOW_UPDATES: &str = "window_updates";
    /// Samples evicted as windows slid past them.
    pub const WINDOW_EVICTIONS: &str = "window_evictions";
    /// Online `partial_fit` steps applied to the candidate model.
    pub const PARTIAL_FITS: &str = "partial_fits";
    /// Background retrain latency (wall nanoseconds).
    pub const RETRAIN_NS: &str = "retrain_ns";
    /// Candidate models retrained on the live window.
    pub const RETRAINS: &str = "retrains";
    /// Candidate models hot-swapped into the detector.
    pub const SWAPS: &str = "swaps";
    /// Retrain/swap attempts abandoned (snapshot round-trip failures).
    pub const SWAP_FAILURES: &str = "swap_failures";
    /// Gap between consecutive detections (virtual microseconds) —
    /// the continuity signal the ≤ 15 s miss-window gate watches.
    pub const DETECTION_GAP_US: &str = "detection_gap_us";
    /// Labeled points currently held in the live window.
    pub const LIVE_POINTS: &str = "live_points";
}

/// Every fixed subsystem/name pair production code emits (persist's
/// per-journal names are declared by prefix/suffix instead — see
/// [`is_declared`]).
pub const DECLARED: &[(&str, &str)] = &[
    (controller::SUBSYSTEM, controller::PACKET_INS),
    (controller::SUBSYSTEM, controller::FLOW_MODS),
    (controller::SUBSYSTEM, controller::STATS_REPLIES),
    (controller::SUBSYSTEM, controller::FLOW_REMOVEDS),
    (controller::SUBSYSTEM, controller::PACKET_IN_NS),
    (controller::SUBSYSTEM, controller::STATS_POLLS_ISSUED),
    (controller::SUBSYSTEM, controller::RULES_INSTALLED),
    (controller::SUBSYSTEM, controller::RULES_REMOVED),
    (failover::SUBSYSTEM, failover::ELECTIONS),
    (failover::SUBSYSTEM, failover::SWITCHES_MOVED),
    (failover::SUBSYSTEM, failover::INSTANCES_DOWN),
    (retry::SUBSYSTEM, retry::STATS_RETRIES),
    (retry::SUBSYSTEM, retry::STATS_TIMEOUTS),
    (retry::SUBSYSTEM, retry::STATS_GAVE_UP),
    (retry::SUBSYSTEM, retry::SB_STATS_TIMEOUTS),
    (retry::SUBSYSTEM, retry::SB_STATS_RETRIES),
    (retry::SUBSYSTEM, retry::SB_STATS_GAVE_UP),
    (retry::SUBSYSTEM, retry::STORE_WRITE_HANDOFFS),
    (retry::SUBSYSTEM, retry::STORE_QUORUM_FAILURES),
    (retry::SUBSYSTEM, retry::STORE_DEGRADED_READS),
    (store::SUBSYSTEM, store::INSERT_NS),
    (store::SUBSYSTEM, store::FIND_NS),
    (store::SUBSYSTEM, store::AGGREGATE_NS),
    (store::SUBSYSTEM, store::REPLICA_WRITES),
    (store::SUBSYSTEM, store::DELETES),
    (store::SUBSYSTEM, store::NODES_DOWN),
    (core::SUBSYSTEM, core::FEATURE_GEN_NS),
    (core::SUBSYSTEM, core::DISPATCH_NS),
    (core::SUBSYSTEM, core::FEATURE_RECORDS),
    (core::SUBSYSTEM, core::FIT_NS),
    (core::SUBSYSTEM, core::MODELS_TRAINED),
    (compute::SUBSYSTEM, compute::TASK_NS),
    (compute::SUBSYSTEM, compute::JOB_NS),
    (compute::SUBSYSTEM, compute::TASKS),
    (dataplane::SUBSYSTEM, dataplane::STEP_NS),
    (dataplane::SUBSYSTEM, dataplane::PACKET_INS),
    (dataplane::SUBSYSTEM, dataplane::FLOW_REMOVEDS),
    (dataplane::SUBSYSTEM, dataplane::DELIVERED_BYTES),
    (dataplane::SUBSYSTEM, dataplane::DROPPED_BYTES),
    (dataplane::SUBSYSTEM, dataplane::TABLE_LOOKUPS),
    (dataplane::SUBSYSTEM, dataplane::TABLE_MATCHES),
    (dataplane::SUBSYSTEM, dataplane::CACHE_HITS),
    (dataplane::SUBSYSTEM, dataplane::CACHE_MISSES),
    (dataplane::SUBSYSTEM, dataplane::CACHE_INSERTIONS),
    (dataplane::SUBSYSTEM, dataplane::CACHE_INVALIDATIONS),
    (dataplane::SUBSYSTEM, dataplane::LINKS_DEGRADED),
    (dataplane::SUBSYSTEM, dataplane::SWITCH_REBOOTS),
    (dataplane::SUBSYSTEM, dataplane::LINK_QUEUE_DROPS),
    (dataplane::SUBSYSTEM, dataplane::LINK_LATENCY_US),
    (dataplane::SUBSYSTEM, dataplane::WHEEL_ARMED),
    (dataplane::SUBSYSTEM, dataplane::WHEEL_FIRED),
    (dataplane::SUBSYSTEM, dataplane::WHEEL_SPURIOUS),
    (scale::SUBSYSTEM, scale::SHARDS),
    (scale::SUBSYSTEM, scale::TICKS),
    (scale::SUBSYSTEM, scale::STEP_NS),
    (scale::SUBSYSTEM, scale::PUNT_BATCHES),
    (scale::SUBSYSTEM, scale::BATCHED_PACKET_INS),
    (scale::SUBSYSTEM, scale::CROSS_SHARD_HANDOFFS),
    (scale::SUBSYSTEM, scale::ROUTING_ROUNDS),
    (workloads::SUBSYSTEM, workloads::ATTACKS_GENERATED),
    (workloads::SUBSYSTEM, workloads::FLOWS_GENERATED),
    (workloads::SUBSYSTEM, workloads::HELD_OUT_GENERATED),
    (workloads::SUBSYSTEM, workloads::MUTATIONS_APPLIED),
    (faults::SUBSYSTEM, faults::INJECTED),
    (faults::SUBSYSTEM, faults::LINK_EVENTS),
    (faults::SUBSYSTEM, faults::SWITCH_REBOOTS),
    (faults::SUBSYSTEM, faults::CONTROLLER_EVENTS),
    (faults::SUBSYSTEM, faults::STORE_EVENTS),
    (faults::SUBSYSTEM, faults::MESSAGE_PROFILE_CHANGES),
    (faults::SUBSYSTEM, faults::MSGS_DROPPED),
    (faults::SUBSYSTEM, faults::MSGS_DUPLICATED),
    (faults::SUBSYSTEM, faults::MSGS_DELAYED),
    (parallel::SUBSYSTEM, parallel::TASKS_SPAWNED),
    (parallel::SUBSYSTEM, parallel::ITEMS),
    (parallel::SUBSYSTEM, parallel::JOBS),
    (parallel::SUBSYSTEM, parallel::STEALS),
    (parallel::SUBSYSTEM, parallel::PARKS),
    (parallel::SUBSYSTEM, parallel::QUEUE_DEPTH),
    (parallel::SUBSYSTEM, parallel::WORKERS),
    (parallel::SUBSYSTEM, parallel::WORKER_TASKS),
    (apps::SUBSYSTEM, apps::DDOS_TRAIN_NS),
    (apps::SUBSYSTEM, apps::DDOS_TEST_NS),
    (ml::SUBSYSTEM, ml::FIT_NS),
    (stream::SUBSYSTEM, stream::WINDOW_UPDATES),
    (stream::SUBSYSTEM, stream::WINDOW_EVICTIONS),
    (stream::SUBSYSTEM, stream::PARTIAL_FITS),
    (stream::SUBSYSTEM, stream::RETRAIN_NS),
    (stream::SUBSYSTEM, stream::RETRAINS),
    (stream::SUBSYSTEM, stream::SWAPS),
    (stream::SUBSYSTEM, stream::SWAP_FAILURES),
    (stream::SUBSYSTEM, stream::DETECTION_GAP_US),
    (stream::SUBSYSTEM, stream::LIVE_POINTS),
];

/// Whether production code declares the `subsystem/name` pair.
/// Instances are not part of the key — strip them before calling.
pub fn is_declared(subsystem: &str, name: &str) -> bool {
    if subsystem == persist::SUBSYSTEM {
        return persist::PREFIXES.iter().any(|p| {
            name.strip_prefix(p)
                .is_some_and(|rest| persist::SUFFIXES.contains(&rest))
        });
    }
    DECLARED.iter().any(|&(s, n)| s == subsystem && n == name)
}

/// The declared pairs a report's keys violate (empty when every key is
/// declared). The registry test in the observability gate asserts this
/// is empty after a full-stack run.
pub fn undeclared(report: &crate::TelemetryReport) -> Vec<String> {
    let mut out: Vec<String> = report
        .counters
        .iter()
        .map(|e| &e.key)
        .chain(report.gauges.iter().map(|e| &e.key))
        .chain(report.histograms.iter().map(|e| &e.key))
        .filter(|k| !is_declared(&k.subsystem, &k.name))
        .map(|k| k.label())
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn declared_pairs_are_unique() {
        let mut pairs: Vec<_> = DECLARED.to_vec();
        pairs.sort_unstable();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(pairs.len(), before, "duplicate declared metric pair");
    }

    #[test]
    fn persist_names_are_declared_by_prefix_and_suffix() {
        assert!(is_declared("persist", "store_wal_records"));
        assert!(is_declared("persist", "controller_append_ns"));
        assert!(!is_declared("persist", "rogue_wal_records"));
        assert!(!is_declared("persist", "store_rogue"));
    }

    #[test]
    fn undeclared_flags_rogue_keys_only() {
        let tel = Telemetry::new();
        let m = tel.metrics();
        m.counter(dataplane::SUBSYSTEM, dataplane::PACKET_INS).inc();
        m.counter("rogue", "metric").inc();
        let bad = undeclared(&tel.report());
        assert_eq!(bad, vec!["rogue/metric".to_string()]);
    }
}
