//! A from-scratch, dependency-free work-stealing thread pool with
//! **deterministic ordered reduction**.
//!
//! The paper's prototype inherits parallelism from its substrates (Spark
//! executors, MongoDB shards); this crate gives the reproduction the
//! same property without giving up the byte-identical determinism the
//! repo's chaos and recovery gates enforce:
//!
//! - [`par_map`] / [`par_map_arc`] / [`par_map_indexed`] — map a
//!   function over items on the pool, returning results **in submission
//!   index order** regardless of worker count or steal interleaving,
//! - [`par_map_take`] — the same, but each item is moved into its
//!   runner (for mutating owned shards and handing them back),
//! - [`par_map_reduce`] — ordered map + in-order fold, so floating-point
//!   and order-sensitive reductions are byte-identical at any width,
//! - [`scope`] — structured fork/join over arbitrary `'static` tasks,
//! - [`threads`] — the configured width: `ATHENA_THREADS` (default =
//!   available cores; `1` selects an in-place sequential fast path that
//!   never touches the pool).
//!
//! # How determinism survives work stealing
//!
//! A job of `n` items is split into fixed chunks (a pure function of `n`
//! and the width). `width - 1` *runner* tasks go into the pool and the
//! **caller participates as the last runner**, so a job always makes
//! progress even if every pool worker is busy or blocked — nested jobs
//! cannot deadlock. Runners claim chunks from a shared atomic cursor and
//! write each item's result into its own index slot; which runner
//! computes which chunk is racy, *where the result lands* is not. After
//! the last slot fills, the caller assembles `Vec<R>` by index — the
//! same bytes as the `width == 1` run.
//!
//! # Examples
//!
//! ```
//! let squares = athena_parallel::par_map((0..64u64).collect(), |x| x * x);
//! assert_eq!(squares[5], 25);
//! let sum = athena_parallel::par_map_reduce((0..100u64).collect(), |x| x * 2, 0u64, |a, b| a + b);
//! assert_eq!(sum, 9900);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod accounting;
mod pool;
mod telemetry;

pub use accounting::{makespan_ns, modeled_makespan_ns, set_accounting, take_jobs, JobStats};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use pool::{lock, pool};

/// The configured job width: `ATHENA_THREADS` if set to a positive
/// integer, otherwise the host's available parallelism. Read per job, so
/// tests and benches can flip it at runtime.
pub fn threads() -> usize {
    athena_types::env_usize(
        "ATHENA_THREADS",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
}

/// Binds the pool's `parallel/*` instruments to a telemetry registry.
/// Only metrics are recorded, never trace events, so trace streams stay
/// byte-identical across `ATHENA_THREADS` settings.
pub fn bind_telemetry(tel: &athena_telemetry::Telemetry) {
    let p = pool();
    let bound = telemetry::Instruments::bound(tel, p.workers());
    *p.tel
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = bound;
}

/// Shared state of one in-flight ordered job.
struct JobState<R> {
    /// Next unclaimed item index; runners claim `chunk` items at a time.
    cursor: AtomicUsize,
    /// One slot per item, written by whichever runner claims it.
    slots: Vec<Mutex<Option<R>>>,
    /// Count of finished items, guarded so the caller can wait on it.
    done: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
    chunk: usize,
    n: usize,
    /// Measured chunk costs `(start_index, ns)`, kept only while
    /// accounting is enabled.
    costs: Mutex<Vec<(usize, u64)>>,
}

/// Items claimed per cursor bump. See [`JobState::new`] for rationale.
const MIN_CHUNK: usize = 32;

/// The fixed chunk size of an `n`-item job at `width` — a pure function
/// of its inputs, so chunk boundaries (and thus accounting rows) are
/// identical run-to-run.
fn chunk_size(n: usize, width: usize) -> usize {
    (n / (width * 8))
        .max(MIN_CHUNK)
        .min(n.div_ceil(width.max(1)))
        .max(1)
}

impl<R: Send + 'static> JobState<R> {
    fn new(n: usize, width: usize) -> Self {
        JobState {
            cursor: AtomicUsize::new(0),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
            // ~8 chunks per runner: fine-grained enough for stealing to
            // balance, coarse enough to amortize slot writes — with a
            // floor of MIN_CHUNK items so cheap-item jobs at high width
            // are not shredded into lock-dominated confetti (the
            // BENCH_parallel feature-extraction row regressed at width
            // 8 exactly this way), capped at ceil(n/width) so every
            // runner still gets a chunk when items are few and heavy.
            // A pure function of (n, width) — results never depend on it.
            chunk: chunk_size(n, width),
            n,
            costs: Mutex::new(Vec::new()),
        }
    }

    /// Runner body: claim chunks until the cursor passes the end.
    fn run(&self, f: &(impl Fn(usize) -> R + Sync)) {
        let account = accounting::accounting_enabled();
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            let t0 = account.then(accounting::ChunkTimer::start);
            for i in start..end {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *lock(&self.slots[i], "parallel/slots") = Some(r),
                    Err(_) => self.panicked.store(true, Ordering::SeqCst),
                }
            }
            if let Some(t0) = t0 {
                lock(&self.costs, "parallel/costs").push((start, t0.elapsed_ns()));
            }
            let mut d = lock(&self.done, "parallel/done");
            *d += end - start;
            if *d >= self.n {
                self.all_done.notify_all();
            }
        }
    }

    fn record_accounting(&self, width: usize) {
        if !accounting::accounting_enabled() {
            return;
        }
        let mut costs = lock(&self.costs, "parallel/costs").clone();
        costs.sort_unstable_by_key(|&(start, _)| start);
        accounting::record_job(JobStats {
            items: self.n,
            width,
            chunk_costs_ns: costs.into_iter().map(|(_, ns)| ns).collect(),
        });
    }
}

/// Maps `f` over `0..n` at `width`, returning results in index order.
/// The deterministic core every `par_map` variant lowers to.
fn run_ordered<R, F>(n: usize, width: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    let width = width.clamp(1, n);
    if width == 1 {
        return run_sequential(n, f);
    }
    let p = pool();
    let width = width.min(p.workers() + 1);
    p.with_tel(|t| {
        t.jobs.inc();
        t.items.add(n as u64);
    });
    let state = Arc::new(JobState::new(n, width));
    let f = Arc::new(f);
    for _ in 1..width {
        let st = Arc::clone(&state);
        let g = Arc::clone(&f);
        p.spawn_task(Box::new(move || st.run(&*g)));
    }
    // The caller is the last runner: the job progresses even if no pool
    // worker ever picks up a task.
    state.run(&*f);
    let mut finished = lock(&state.done, "parallel/done");
    while *finished < n {
        finished = finished.wait(&state.all_done);
    }
    drop(finished);
    if state.panicked.load(Ordering::SeqCst) {
        panic!("athena-parallel: a parallel task panicked");
    }
    state.record_accounting(width);
    (0..state.slots.len())
        .map(|s| {
            lock(&state.slots[s], "parallel/slots")
                .take()
                .expect("all slots filled before wait returned")
        })
        .collect()
}

/// The `width == 1` fast path: runs in place on the caller, touching
/// neither the pool nor any synchronization.
fn run_sequential<R>(n: usize, f: impl Fn(usize) -> R) -> Vec<R> {
    if !accounting::accounting_enabled() {
        return (0..n).map(f).collect();
    }
    // Per-item costs: the width-1 run is the only uncontended timing a
    // single-core host can produce, so record item-level granularity for
    // the LPT model to place on virtual workers at any width.
    let mut costs = Vec::with_capacity(n);
    let out: Vec<R> = (0..n)
        .map(|i| {
            let t0 = accounting::ChunkTimer::start();
            let r = f(i);
            costs.push(t0.elapsed_ns());
            r
        })
        .collect();
    accounting::record_job(JobStats {
        items: n,
        width: 1,
        chunk_costs_ns: costs,
    });
    out
}

/// Maps `f` over `0..n` in parallel at the configured width, returning
/// results in index order.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    run_ordered(n, threads(), f)
}

/// Maps `f` over a shared vector in parallel, returning results in item
/// order. Use when the caller already holds the data in an `Arc` (e.g.
/// `compute::Dataset` partitions) — no copy is made.
pub fn par_map_arc<T, R, F>(items: &Arc<Vec<T>>, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    let items = Arc::clone(items);
    run_ordered(items.len(), threads(), move |i| f(&items[i]))
}

/// Maps `f` over an owned vector in parallel, returning results in item
/// order: the parallel, order-preserving `items.iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    par_map_arc(&Arc::new(items), f)
}

/// Maps `f` over an owned vector in parallel, **moving** each item into
/// the call that maps it, returning results in item order. The parallel
/// engine for owned stateful partitions (the sharded dataplane's tick
/// phases): move each shard in, mutate it, and hand it back inside `R`.
pub fn par_map_take<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let slots: Arc<Vec<Mutex<Option<T>>>> =
        Arc::new(items.into_iter().map(|t| Mutex::new(Some(t))).collect());
    run_ordered(slots.len(), threads(), move |i| {
        let item = lock(&slots[i], "parallel/slots")
            .take()
            .expect("run_ordered hands each index to exactly one runner");
        f(item)
    })
}

/// Parallel map followed by an **ordered** in-order fold on the caller:
/// `fold(.. fold(fold(init, f(items[0])), f(items[1])) ..)`. Because the
/// fold order is fixed, non-commutative and floating-point reductions
/// are byte-identical at any width.
pub fn par_map_reduce<T, R, A, F, G>(items: Vec<T>, map: F, init: A, fold: G) -> A
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
    G: FnMut(A, R) -> A,
{
    par_map(items, map).into_iter().fold(init, fold)
}

/// A structured fork/join scope: tasks spawned on it are guaranteed
/// finished when [`scope`] returns.
pub struct Scope {
    pending: Arc<(Mutex<usize>, Condvar)>,
    panicked: Arc<AtomicBool>,
}

impl Scope {
    /// Spawns a task into the pool. The task must be `'static`; share
    /// data with the caller through `Arc`.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        *lock(&self.pending.0, "parallel/pending") += 1;
        let pending = Arc::clone(&self.pending);
        let panicked = Arc::clone(&self.panicked);
        pool().spawn_task(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                panicked.store(true, Ordering::SeqCst);
            }
            let mut p = lock(&pending.0, "parallel/pending");
            *p -= 1;
            if *p == 0 {
                pending.1.notify_all();
            }
        }));
    }
}

/// Runs `f` with a [`Scope`], then blocks until every task spawned on it
/// has finished. While waiting, the caller helps drain the pool, so
/// scopes nested inside pool tasks cannot starve. Panics if any task
/// panicked.
pub fn scope(f: impl FnOnce(&Scope)) {
    let s = Scope {
        pending: Arc::new((Mutex::new(0), Condvar::new())),
        panicked: Arc::new(AtomicBool::new(false)),
    };
    f(&s);
    let p = pool();
    loop {
        if *lock(&s.pending.0, "parallel/pending") == 0 {
            break;
        }
        // Help: run queued tasks (ours or anyone's) instead of blocking.
        if let Some(task) = p.find_task_external() {
            let _ = catch_unwind(AssertUnwindSafe(task));
            continue;
        }
        let guard = lock(&s.pending.0, "parallel/pending");
        if *guard == 0 {
            break;
        }
        let _ = guard.wait_timeout(&s.pending.1, std::time::Duration::from_millis(1));
    }
    if s.panicked.load(Ordering::SeqCst) {
        panic!("athena-parallel: a scoped task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        // Env vars are process-global; serialize the tests that set one.
        static ENV: Mutex<()> = Mutex::new(());
        let _guard = lock(&ENV, "parallel/ENV");
        std::env::set_var("ATHENA_THREADS", n.to_string());
        let out = f();
        std::env::remove_var("ATHENA_THREADS");
        out
    }

    #[test]
    fn par_map_preserves_order_at_every_width() {
        let expect: Vec<u64> = (0..500u64).map(|x| x * 3 + 1).collect();
        for width in [1, 2, 3, 8, 64] {
            let got = with_threads(width, || par_map((0..500u64).collect(), |x| x * 3 + 1));
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn ordered_reduce_is_byte_identical_across_widths() {
        // Floating-point addition is not associative: only an ordered
        // fold gives bit-equal sums at different widths.
        let items: Vec<f64> = (0..2000).map(|i| 1.0 / f64::from(i + 1)).collect();
        let seq = with_threads(1, || {
            par_map_reduce(items.clone(), |x| x.sin(), 0.0f64, |a, b| a + b)
        });
        let par = with_threads(8, || {
            par_map_reduce(items.clone(), |x| x.sin(), 0.0f64, |a, b| a + b)
        });
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn sequential_fast_path_handles_edge_sizes() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| *x), Vec::<u32>::new());
        let one = with_threads(8, || par_map(vec![41u32], |x| x + 1));
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn nested_jobs_complete() {
        let got = with_threads(4, || {
            par_map_indexed(6, |i| par_map_indexed(5, move |j| i * 10 + j))
        });
        assert_eq!(got[3], vec![30, 31, 32, 33, 34]);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn scope_joins_all_tasks() {
        let hits = Arc::new(AtomicU64::new(0));
        scope(|s| {
            for i in 0..32u64 {
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    hits.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), (0..32).sum());
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(64, |i| {
                    assert!(i != 17, "boom");
                    i
                })
            })
        });
        assert!(result.is_err());
        // The pool survives for subsequent jobs.
        let after = with_threads(4, || par_map_indexed(16, |i| i + 1));
        assert_eq!(after[0], 1);
    }

    #[test]
    fn accounting_records_costs_and_models_makespan() {
        set_accounting(true);
        let _ = with_threads(4, || par_map_indexed(256, |i| i * 2));
        let jobs = take_jobs();
        set_accounting(false);
        let job = jobs.iter().find(|j| j.items == 256).expect("job recorded");
        assert!(job.width > 1);
        assert_eq!(
            job.chunk_costs_ns.len(),
            job.items.div_ceil(job.chunk_size())
        );
        assert!(job.makespan_ns(4) <= job.serial_ns());
    }

    impl JobStats {
        fn chunk_size(&self) -> usize {
            super::chunk_size(self.items, self.width)
        }
    }

    #[test]
    fn chunk_size_floors_and_caps() {
        // Floor: cheap-item jobs are not shredded at high width.
        assert_eq!(chunk_size(256, 8), 32);
        // Cap: few heavy items still spread across every runner.
        assert_eq!(chunk_size(8, 8), 1);
        assert_eq!(chunk_size(200, 8), 25);
        // Above the floor the ~8-chunks-per-runner rule is unchanged.
        assert_eq!(chunk_size(3000, 8), 46);
        assert_eq!(chunk_size(0, 4), 1);
    }

    #[test]
    fn par_map_take_moves_items_and_preserves_order() {
        #[derive(Debug, PartialEq)]
        struct Owned(Vec<u64>);
        for width in [1, 4, 8] {
            let items: Vec<Owned> = (0..100u64).map(|i| Owned(vec![i; 3])).collect();
            let got = with_threads(width, || {
                par_map_take(items, |mut o| {
                    o.0.push(o.0[0] * 2);
                    o
                })
            });
            assert_eq!(got.len(), 100, "width {width}");
            assert_eq!(got[7], Owned(vec![7, 7, 7, 14]), "width {width}");
        }
    }

    #[test]
    fn makespan_model_is_lpt() {
        assert_eq!(makespan_ns(&[4, 3, 3, 2], 2), 6);
        assert_eq!(makespan_ns(&[10], 4), 10);
        assert_eq!(makespan_ns(&[], 4), 0);
        assert_eq!(makespan_ns(&[1, 1, 1, 1], 1), 4);
    }

    #[test]
    fn threads_reads_env_per_call() {
        let n = with_threads(3, threads);
        assert_eq!(n, 3);
    }
}
