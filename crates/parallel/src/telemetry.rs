//! `parallel/*` instruments: spawned tasks, steals, parks, queue depth,
//! and a per-worker execution counter (the utilization signal).
//!
//! Instruments start detached (recording is a relaxed atomic no-op) and
//! are swapped for registry-backed handles by [`crate::bind_telemetry`].
//! Only *metrics* are emitted — never trace events — so the trace event
//! stream stays byte-identical across `ATHENA_THREADS` settings, which
//! `tests/e2e_determinism.rs` asserts.

use athena_telemetry::{Counter, Gauge, Histogram, Telemetry};

pub(crate) struct Instruments {
    /// Runner tasks pushed into the pool (`parallel/tasks_spawned`).
    pub tasks_spawned: Counter,
    /// Items mapped across all jobs (`parallel/items`).
    pub items: Counter,
    /// Parallel jobs executed, including sequential fast-path runs
    /// (`parallel/jobs`).
    pub jobs: Counter,
    /// Tasks taken from a sibling worker's deque (`parallel/steals`).
    pub steals: Counter,
    /// Times a worker parked on the condvar (`parallel/parks`).
    pub parks: Counter,
    /// Queue length observed at each spawn (`parallel/queue_depth`).
    pub queue_depth: Histogram,
    /// Pool width (`parallel/workers`).
    pub workers: Gauge,
    /// Per-worker executed-task counters
    /// (`parallel/worker_tasks[w0..]`): relative counts show how evenly
    /// work spread — the utilization signal.
    pub worker_tasks: Vec<Counter>,
}

impl Instruments {
    pub(crate) fn detached() -> Self {
        Instruments {
            tasks_spawned: Counter::detached(),
            items: Counter::detached(),
            jobs: Counter::detached(),
            steals: Counter::detached(),
            parks: Counter::detached(),
            queue_depth: Histogram::detached(),
            workers: Gauge::detached(),
            worker_tasks: Vec::new(),
        }
    }

    pub(crate) fn bound(tel: &Telemetry, workers: usize) -> Self {
        let m = tel.metrics();
        let instruments = Instruments {
            tasks_spawned: m.counter("parallel", "tasks_spawned"),
            items: m.counter("parallel", "items"),
            jobs: m.counter("parallel", "jobs"),
            steals: m.counter("parallel", "steals"),
            parks: m.counter("parallel", "parks"),
            queue_depth: m.histogram("parallel", "queue_depth"),
            workers: m.gauge("parallel", "workers"),
            worker_tasks: (0..workers)
                .map(|i| m.counter_with("parallel", "worker_tasks", &format!("w{i}")))
                .collect(),
        };
        instruments.workers.set(workers as i64);
        instruments
    }

    /// Credits one executed task to worker `id` (no-op when detached:
    /// the per-worker vector is empty then).
    pub(crate) fn task_executed(&self, id: usize) {
        if let Some(c) = self.worker_tasks.get(id) {
            c.inc();
        }
    }
}
