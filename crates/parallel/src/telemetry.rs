//! `parallel/*` instruments: spawned tasks, steals, parks, queue depth,
//! and a per-worker execution counter (the utilization signal).
//!
//! Instruments start detached (recording is a relaxed atomic no-op) and
//! are swapped for registry-backed handles by [`crate::bind_telemetry`].
//! Only *metrics* are emitted — never trace events — so the trace event
//! stream stays byte-identical across `ATHENA_THREADS` settings, which
//! `tests/e2e_determinism.rs` asserts.

use athena_telemetry::{Counter, Gauge, Histogram, Telemetry};

pub(crate) struct Instruments {
    /// Runner tasks pushed into the pool (`parallel/tasks_spawned`).
    pub tasks_spawned: Counter,
    /// Items mapped across all jobs (`parallel/items`).
    pub items: Counter,
    /// Parallel jobs executed, including sequential fast-path runs
    /// (`parallel/jobs`).
    pub jobs: Counter,
    /// Tasks taken from a sibling worker's deque (`parallel/steals`).
    pub steals: Counter,
    /// Times a worker parked on the condvar (`parallel/parks`).
    pub parks: Counter,
    /// Queue length observed at each spawn (`parallel/queue_depth`).
    pub queue_depth: Histogram,
    /// Pool width (`parallel/workers`).
    pub workers: Gauge,
    /// Per-worker executed-task counters
    /// (`parallel/worker_tasks[w0..]`): relative counts show how evenly
    /// work spread — the utilization signal.
    pub worker_tasks: Vec<Counter>,
}

impl Instruments {
    pub(crate) fn detached() -> Self {
        Instruments {
            tasks_spawned: Counter::detached(),
            items: Counter::detached(),
            jobs: Counter::detached(),
            steals: Counter::detached(),
            parks: Counter::detached(),
            queue_depth: Histogram::detached(),
            workers: Gauge::detached(),
            worker_tasks: Vec::new(),
        }
    }

    pub(crate) fn bound(tel: &Telemetry, workers: usize) -> Self {
        use athena_telemetry::names;
        let m = tel.metrics();
        let sub = names::parallel::SUBSYSTEM;
        let instruments = Instruments {
            tasks_spawned: m.counter(sub, names::parallel::TASKS_SPAWNED),
            items: m.counter(sub, names::parallel::ITEMS),
            jobs: m.counter(sub, names::parallel::JOBS),
            steals: m.counter(sub, names::parallel::STEALS),
            parks: m.counter(sub, names::parallel::PARKS),
            queue_depth: m.histogram(sub, names::parallel::QUEUE_DEPTH),
            workers: m.gauge(sub, names::parallel::WORKERS),
            worker_tasks: (0..workers)
                .map(|i| m.counter_with(sub, names::parallel::WORKER_TASKS, &format!("w{i}")))
                .collect(),
        };
        instruments.workers.set(workers as i64);
        instruments
    }

    /// Credits one executed task to worker `id` (no-op when detached:
    /// the per-worker vector is empty then).
    pub(crate) fn task_executed(&self, id: usize) {
        if let Some(c) = self.worker_tasks.get(id) {
            c.inc();
        }
    }
}
