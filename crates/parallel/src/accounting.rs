//! Per-job cost accounting and the modeled-makespan speedup figure.
//!
//! The reproduction host may have a single CPU core (the seed repo's
//! compute crate was built around exactly that constraint), so wall-clock
//! speedup cannot demonstrate scaling there. Instead — mirroring the
//! Figure-10 methodology in `athena-compute` — every chunk a job executes
//! is timed for real, and the job's makespan at width *W* is *modeled* by
//! placing the measured chunk costs on *W* workers
//! longest-processing-time first. On a multi-core host the modeled and
//! measured wall times converge; on a single-core host the model is the
//! reported scalability figure. `bench/src/bin/table_parallel.rs`
//! consumes this via [`take_jobs`].
//!
//! Accounting is off by default ([`set_accounting`]); when off, jobs skip
//! the log entirely.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::pool::lock;

/// Measured cost profile of one parallel job.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Number of items mapped.
    pub items: usize,
    /// Effective width the job ran at (1 = sequential fast path).
    pub width: usize,
    /// Measured wall cost of each executed chunk, in submission order.
    /// Width-1 runs record *item*-level granularity — the uncontended
    /// costs [`modeled_makespan_ns`] re-chunks for any modeled width.
    pub chunk_costs_ns: Vec<u64>,
}

impl JobStats {
    /// Total serial work: the sum of all chunk costs.
    pub fn serial_ns(&self) -> u64 {
        self.chunk_costs_ns.iter().sum()
    }

    /// Modeled makespan of this job's measured chunks on `width`
    /// workers (longest-processing-time placement).
    pub fn makespan_ns(&self, width: usize) -> u64 {
        makespan_ns(&self.chunk_costs_ns, width)
    }
}

/// Places `costs` on `width` workers longest-first and returns the
/// maximum worker load — the classic LPT makespan bound, and the same
/// shape `athena_compute::VirtualScheduler` models for Figure 10.
pub fn makespan_ns(costs: &[u64], width: usize) -> u64 {
    let width = width.max(1);
    let mut sorted: Vec<u64> = costs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; width];
    for c in sorted {
        if let Some(min) = loads.iter_mut().min() {
            *min += c;
        }
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Models a width-`width` run of a job from the *width-1* run's
/// per-item costs: items are first grouped into the same fixed chunks a
/// real width-`width` run would claim (`chunk_size` is a pure function
/// of `(n, width)`), then the chunk sums are placed LPT. Grouping
/// first matters — chunk granularity is part of the contract, and
/// placing raw items would model a scheduler the pool does not have.
pub fn modeled_makespan_ns(item_costs: &[u64], width: usize) -> u64 {
    if item_costs.is_empty() {
        return 0;
    }
    let chunk = crate::chunk_size(item_costs.len(), width);
    let sums: Vec<u64> = item_costs
        .chunks(chunk.max(1))
        .map(|c| c.iter().sum())
        .collect();
    makespan_ns(&sums, width)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static JOBS: Mutex<Vec<JobStats>> = Mutex::new(Vec::new());

/// Wall timer for one executed chunk. On a genuinely multi-core host
/// these costs converge on real per-chunk work; on the oversubscribed
/// single-core reproduction box they are contaminated by preemption
/// (a chunk is charged for time its worker spent descheduled), which is
/// why the speedup tables model every width from the *width-1* run via
/// [`modeled_makespan_ns`] instead of per-width measurements.
pub(crate) struct ChunkTimer(std::time::Instant);

impl ChunkTimer {
    pub(crate) fn start() -> Self {
        ChunkTimer(std::time::Instant::now())
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Turns job-cost accounting on or off (off by default). Turning it on
/// clears any previously recorded jobs.
pub fn set_accounting(on: bool) {
    lock(&JOBS, "parallel/JOBS").clear();
    ENABLED.store(on, Ordering::SeqCst);
}

/// Drains and returns the jobs recorded since accounting was enabled.
pub fn take_jobs() -> Vec<JobStats> {
    std::mem::take(&mut *lock(&JOBS, "parallel/JOBS"))
}

pub(crate) fn accounting_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

pub(crate) fn record_job(stats: JobStats) {
    lock(&JOBS, "parallel/JOBS").push(stats);
}
