//! The work-stealing pool: per-worker deques, a global injector, and
//! parked idle workers.
//!
//! Workers are spawned lazily on the first parallel job and live for the
//! process lifetime. Each worker owns a deque; tasks spawned *from* a
//! worker land on its own deque (LIFO pop for locality), tasks spawned
//! from outside the pool land on the shared injector (FIFO). An idle
//! worker drains its own deque, then the injector, then steals from the
//! front of sibling deques; when everything is empty it parks on a
//! condvar and is woken by the next spawn.
//!
//! The pool itself is *unordered* — determinism is the job layer's
//! problem ([`crate::run_ordered`] writes results into per-index slots),
//! which is exactly why stealing order, park timing, and worker count
//! never show up in observable output.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::telemetry::Instruments;

/// A unit of pool work. Tasks are `'static`: jobs share state with their
/// runners through `Arc`, never through borrows.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Lock helper that survives a poisoned mutex: pool state stays valid
/// even if a task panicked while a guard was held elsewhere. `name` is
/// the lock's crate-qualified sentinel name (`"parallel/<field>"`),
/// reported to the runtime lock-order sentinel.
pub(crate) fn lock<'a, T>(
    m: &'a Mutex<T>,
    name: &'static str,
) -> athena_types::sentinel::StdMutexGuard<'a, T> {
    athena_types::sentinel::lock_std(m, name)
}

thread_local! {
    /// Which pool worker the current thread is, if any. Lets nested
    /// spawns go to the local deque (stealable by siblings) instead of
    /// the injector.
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The minimum number of workers the pool starts, regardless of host
/// core count. Parked workers cost nothing, and a pool wider than the
/// host lets `ATHENA_THREADS=8` exercise real cross-thread stealing (and
/// the determinism gate) even on a single-core machine.
const MIN_WORKERS: usize = 8;

pub(crate) struct Pool {
    /// FIFO queue for tasks spawned from outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker: owner pushes/pops the back, thieves pop the
    /// front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Mutex + condvar pair idle workers park on.
    park: Mutex<()>,
    wake: Condvar,
    /// Number of workers currently parked (or about to park); spawns
    /// skip the park lock entirely when it is zero.
    idle: AtomicUsize,
    /// Telemetry instruments, swapped in by [`crate::bind_telemetry`].
    pub(crate) tel: std::sync::RwLock<Instruments>,
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

/// The process-wide pool, spawning its workers on first use.
pub(crate) fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = cores.max(MIN_WORKERS);
        let pool = Arc::new(Pool {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(()),
            wake: Condvar::new(),
            idle: AtomicUsize::new(0),
            tel: std::sync::RwLock::new(Instruments::detached()),
        });
        for id in 0..workers {
            let p = Arc::clone(&pool);
            // A failed spawn degrades capacity but never correctness:
            // the missing worker's deque only receives work from the
            // worker itself, and callers always run their own job.
            let _ = std::thread::Builder::new()
                .name(format!("athena-par-{id}"))
                .spawn(move || p.worker_loop(id));
        }
        pool
    })
}

impl Pool {
    /// Number of worker threads (the max useful job width is one more:
    /// the caller participates in its own job).
    pub(crate) fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Enqueues a task and wakes a parked worker if there is one.
    pub(crate) fn spawn_task(&self, task: Task) {
        let depth = match WORKER_ID.with(Cell::get) {
            Some(id) => {
                let mut d = lock(&self.deques[id], "parallel/deques");
                d.push_back(task);
                d.len()
            }
            None => {
                let mut q = lock(&self.injector, "parallel/injector");
                q.push_back(task);
                q.len()
            }
        };
        self.with_tel(|t| {
            t.tasks_spawned.inc();
            t.queue_depth.record(depth as u64);
        });
        if self.idle.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.park, "parallel/park");
            self.wake.notify_one();
        }
    }

    /// Runs `f` against the bound instruments without holding the read
    /// guard across anything that can block.
    pub(crate) fn with_tel(&self, f: impl FnOnce(&Instruments)) {
        let guard = athena_types::sentinel::read_std(&self.tel, "parallel/tel");
        f(&guard);
    }

    fn worker_loop(&self, id: usize) {
        WORKER_ID.with(|w| w.set(Some(id)));
        loop {
            match self.find_task(id) {
                Some(task) => {
                    self.with_tel(|t| t.task_executed(id));
                    // Keep the worker alive across panicking tasks; the
                    // job layer records and re-raises the panic on the
                    // calling thread.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                }
                None => self.park(),
            }
        }
    }

    /// Own deque (LIFO), then injector (FIFO), then steal from siblings
    /// (front, FIFO) starting just past our own slot.
    fn find_task(&self, id: usize) -> Option<Task> {
        if let Some(t) = lock(&self.deques[id], "parallel/deques").pop_back() {
            return Some(t);
        }
        if let Some(t) = lock(&self.injector, "parallel/injector").pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (id + off) % n;
            if let Some(t) = lock(&self.deques[victim], "parallel/deques").pop_front() {
                self.with_tel(|t| t.steals.inc());
                return Some(t);
            }
        }
        None
    }

    /// Steal-only scan for threads that are not pool workers (a caller
    /// helping its own job along while it waits on a [`crate::scope`]).
    pub(crate) fn find_task_external(&self) -> Option<Task> {
        if let Some(t) = lock(&self.injector, "parallel/injector").pop_front() {
            return Some(t);
        }
        for victim in 0..self.deques.len() {
            if let Some(t) = lock(&self.deques[victim], "parallel/deques").pop_front() {
                self.with_tel(|t| t.steals.inc());
                return Some(t);
            }
        }
        None
    }

    fn park(&self) {
        let guard = lock(&self.park, "parallel/park");
        self.idle.fetch_add(1, Ordering::SeqCst);
        // Advertise idleness *before* the final emptiness check: a
        // spawner that pushed before seeing `idle > 0` must have pushed
        // before this check, so the task is visible here.
        if self.has_queued() {
            self.idle.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.with_tel(|t| t.parks.inc());
        // The timeout is a safety net against the residual lost-wakeup
        // window (cross-variable atomics vs. mutex ordering); it bounds
        // any stall without affecting results.
        let _ = guard.wait_timeout(&self.wake, Duration::from_millis(2));
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }

    fn has_queued(&self) -> bool {
        if !lock(&self.injector, "parallel/injector").is_empty() {
            return true;
        }
        (0..self.deques.len()).any(|d| !lock(&self.deques[d], "parallel/deques").is_empty())
    }
}
