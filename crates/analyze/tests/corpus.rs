//! Violation-corpus self-test: one deliberately-bad snippet per rule,
//! each asserting that it fires *exactly* its expected rule, exactly
//! once, and nothing else. This is the proof that the gate can actually
//! fail — a rule that silently stops matching turns up here, not in a
//! shipped deadlock.
//!
//! Snippets live in `tests/corpus/*.rs`; they are analyzed as if they
//! sat at `crates/corpus/src/<name>.rs`, so crate-qualified lock names
//! come out as `corpus/<field>`.

use athena_analyze::analyze_sources;
use athena_lint::rules::SourceFile;
use athena_lint::Config;

/// A corpus case: snippet text, the rule it must fire, and whether the
/// finding must carry a call-chain witness (propagated findings only).
struct Case {
    name: &'static str,
    source: &'static str,
    rule: &'static str,
    hot_seed: bool,
    lock_order: &'static [&'static str],
    wants_witness: bool,
}

const CASES: &[Case] = &[
    Case {
        name: "lock_cycle",
        source: include_str!("corpus/lock_cycle.rs"),
        rule: "lock-cycle",
        hot_seed: false,
        lock_order: &["corpus/a", "corpus/b"],
        wants_witness: false,
    },
    Case {
        name: "lock_inversion",
        source: include_str!("corpus/lock_inversion.rs"),
        rule: "lock-order-violation",
        hot_seed: false,
        lock_order: &["corpus/a", "corpus/b"],
        wants_witness: false,
    },
    Case {
        name: "bus_under_guard",
        source: include_str!("corpus/bus_under_guard.rs"),
        rule: "bus-call-under-guard",
        hot_seed: false,
        lock_order: &[],
        wants_witness: true,
    },
    Case {
        name: "hot_panic",
        source: include_str!("corpus/hot_panic.rs"),
        rule: "no-panic-in-hot-path",
        hot_seed: true,
        lock_order: &[],
        wants_witness: true,
    },
    Case {
        name: "hot_unordered",
        source: include_str!("corpus/hot_unordered.rs"),
        rule: "no-unordered-iter-in-hot-path",
        hot_seed: true,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "hot_no_span",
        source: include_str!("corpus/hot_no_span.rs"),
        rule: "span-on-subsystem-entry",
        hot_seed: true,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "wallclock",
        source: include_str!("corpus/wallclock.rs"),
        rule: "no-wallclock-in-lib",
        hot_seed: false,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "println_lib",
        source: include_str!("corpus/println_lib.rs"),
        rule: "no-println-in-lib",
        hot_seed: false,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "unsafe_code",
        source: include_str!("corpus/unsafe_code.rs"),
        rule: "forbid-unsafe",
        hot_seed: false,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "boxed_error",
        source: include_str!("corpus/boxed_error.rs"),
        rule: "error-hygiene",
        hot_seed: false,
        lock_order: &[],
        wants_witness: false,
    },
    Case {
        name: "self_deadlock",
        source: include_str!("corpus/self_deadlock.rs"),
        rule: "lock-discipline",
        hot_seed: false,
        lock_order: &[],
        wants_witness: false,
    },
];

fn config_for(case: &Case) -> Config {
    let hot_entries = if case.hot_seed {
        format!("[\"crates/corpus/src/{}.rs::hot_entry\"]", case.name)
    } else {
        "[]".to_string()
    };
    let lock_order = case
        .lock_order
        .iter()
        .map(|l| format!("\"{l}\""))
        .collect::<Vec<_>>()
        .join(", ");
    Config::parse(&format!(
        "[analyze]\n\
         hot_entries = {hot_entries}\n\
         lock_order = [{lock_order}]\n\
         lock_helpers = [\"lock_std\"]\n\
         [lint]\n\
         bus_calls = [\"dispatch\"]\n\
         println_exempt = []\n\
         wallclock_exempt = []\n"
    ))
    .expect("corpus config parses")
}

#[test]
fn each_corpus_snippet_fires_exactly_its_rule() {
    for case in CASES {
        let config = config_for(case);
        let files = [SourceFile::new(
            format!("crates/corpus/src/{}.rs", case.name),
            case.source.to_string(),
        )];
        let analysis = analyze_sources(&config, &files);
        let fired: Vec<(&str, &str)> = analysis
            .report
            .diagnostics
            .iter()
            .map(|d| (d.rule, d.message.as_str()))
            .collect();
        assert_eq!(
            fired.len(),
            1,
            "corpus/{}: expected exactly one finding, got {fired:?}",
            case.name
        );
        assert_eq!(
            fired[0].0, case.rule,
            "corpus/{}: wrong rule fired: {fired:?}",
            case.name
        );
        assert!(
            analysis.report.stale_allows.is_empty(),
            "corpus/{}: unexpected stale allows",
            case.name
        );
        let witness = &analysis.report.diagnostics[0].witness;
        if case.wants_witness {
            assert!(
                !witness.is_empty(),
                "corpus/{}: propagated finding must carry a call-chain witness",
                case.name
            );
        }
    }
}

#[test]
fn corpus_snippets_are_clean_without_their_trigger_config() {
    // The hot-path cases fire only because their seed makes them hot:
    // with no hot entries the same code is (correctly) unflagged,
    // proving the findings come from reachability, not a file-wide scan.
    for name in ["hot_panic", "hot_unordered", "hot_no_span"] {
        let case = CASES.iter().find(|c| c.name == name).expect("case exists");
        let config = Config::parse(
            "[analyze]\n\
             hot_entries = []\n\
             lock_order = []\n\
             lock_helpers = [\"lock_std\"]\n\
             [lint]\n\
             bus_calls = [\"dispatch\"]\n\
             println_exempt = []\n\
             wallclock_exempt = []\n",
        )
        .expect("config parses");
        let files = [SourceFile::new(
            format!("crates/corpus/src/{}.rs", case.name),
            case.source.to_string(),
        )];
        let analysis = analyze_sources(&config, &files);
        assert!(
            analysis.report.diagnostics.is_empty(),
            "corpus/{name}: should be clean without the hot seed: {:?}",
            analysis.report.diagnostics
        );
    }
}
