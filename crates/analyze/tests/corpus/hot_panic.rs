// hot_entry is a declared hot seed; helper() is reachable from it, so
// the unwrap one hop down inherits the no-panic obligation even though
// nothing hot appears in helper's own body.
pub fn hot_entry(v: u8) -> u8 {
    helper(v)
}

fn helper(v: u8) -> u8 {
    Some(v).unwrap()
}
