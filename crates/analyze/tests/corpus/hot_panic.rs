// hot_entry is a declared hot seed; helper() is reachable from it, so
// the unwrap one hop down inherits the no-panic obligation even though
// nothing hot appears in helper's own body. The span() call satisfies
// span-on-subsystem-entry so only the panic finding fires.
pub fn hot_entry(v: u8) -> u8 {
    span("corpus/entry");
    helper(v)
}

fn span(_name: &str) {}

fn helper(v: u8) -> u8 {
    Some(v).unwrap()
}
