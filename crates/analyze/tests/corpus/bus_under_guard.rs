// guarded() holds a lock across a call to notify(), which dispatches on
// the event bus. The bus call is one hop away, so only the call-graph
// pass can see it — the file-local lock-discipline rule checks direct
// bus calls in the same guard window only.
use parking_lot::Mutex;

pub struct Bus;

impl Bus {
    pub fn dispatch(&self, _n: u32) {}
}

pub struct S {
    a: Mutex<u32>,
    bus: Bus,
}

impl S {
    pub fn guarded(&self) -> u32 {
        let ga = self.a.lock();
        self.notify(*ga);
        *ga
    }

    fn notify(&self, n: u32) {
        self.bus.dispatch(n);
    }
}
