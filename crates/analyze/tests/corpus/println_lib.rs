// Library code writing to stdout: output belongs to binaries; libraries
// report through telemetry events or return values.
pub fn log(n: u64) {
    println!("{n}");
}
