// Two methods nest the same pair of locks in opposite orders: the
// derived acquisition graph gains edges a→b and b→a, a cycle. A
// concurrent interleaving of ab() and ba() deadlocks.
use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
