// The declared order lists a before b; this acquisition nests b→a.
// No cycle (there is only one edge), but the edge contradicts the
// declared total order.
use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn inverted(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
