// The workspace forbids unsafe everywhere: a from-scratch simulation has
// no FFI and no reason for it.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
