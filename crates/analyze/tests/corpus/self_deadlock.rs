// Re-acquiring a lock whose guard is still live in the same function:
// a guaranteed self-deadlock, caught by the file-local discipline rule.
use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
}

impl S {
    pub fn twice(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.a.lock();
        *ga + *gb
    }
}
