// A declared hot seed that never opens a telemetry/observe span: the
// subsystem boundary would be invisible to causal traces, so
// span-on-subsystem-entry fires on the entry function itself.
pub fn hot_entry(v: u8) -> u8 {
    v.wrapping_add(1)
}
