// Box<dyn Error> erases failure kinds at a crate API; fallible paths
// must use athena_types::error::AthenaError.
pub fn load() -> Result<u8, Box<dyn std::error::Error>> {
    Ok(7)
}
