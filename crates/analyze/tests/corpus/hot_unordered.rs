// Iterating a HashMap on a hot path lets hash-order nondeterminism leak
// into whatever the loop produces — here an accumulator whose overflow
// behaviour (and any downstream float math) is order-sensitive.
use std::collections::HashMap;

pub struct Flows {
    map: HashMap<u64, u8>,
}

impl Flows {
    pub fn hot_entry(&self) -> u64 {
        let mut out = 0u64;
        for (k, v) in &self.map {
            out = out.wrapping_mul(31).wrapping_add(k + u64::from(*v));
        }
        out
    }
}
