// Iterating a HashMap on a hot path lets hash-order nondeterminism leak
// into whatever the loop produces — here an accumulator whose overflow
// behaviour (and any downstream float math) is order-sensitive. The
// span() call satisfies span-on-subsystem-entry so only the iteration
// finding fires.
use std::collections::HashMap;

pub struct Flows {
    map: HashMap<u64, u8>,
}

fn span(_name: &str) {}

impl Flows {
    pub fn hot_entry(&self) -> u64 {
        span("corpus/entry");
        let mut out = 0u64;
        for (k, v) in &self.map {
            out = out.wrapping_mul(31).wrapping_add(k + u64::from(*v));
        }
        out
    }
}
