// Library code reading the host clock: breaks deterministic replay and
// the byte-identical recovery guarantees.
pub fn stamp() -> u64 {
    std::time::Instant::now().elapsed().as_secs()
}
