//! Hand-rolled JSON serialization for the analysis report.
//!
//! The lint stack cannot depend on serde (it is the thing that gates the
//! rest of the workspace), so the report is emitted with a small escaping
//! writer. The schema is versioned so CI consumers can evolve.

use athena_lint::{Diagnostic, Severity};

use crate::Analysis;

/// Renders the full machine-readable report.
pub fn render(analysis: &Analysis) -> String {
    let report = &analysis.report;
    let mut s = String::with_capacity(4096);
    s.push_str("{\n  \"schema\": \"athena-analysis-v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    s.push_str(&format!("  \"errors\": {},\n", errors));
    s.push_str(&format!(
        "  \"warnings\": {},\n",
        report.diagnostics.len() - errors
    ));

    s.push_str("  \"findings\": [");
    push_list(&mut s, &report.diagnostics, 4, push_finding);
    s.push_str("],\n");

    s.push_str("  \"stale_allows\": [");
    push_list(&mut s, &report.stale_allows, 4, |s, a| {
        push_str_lit(s, a);
    });
    s.push_str("],\n");

    s.push_str("  \"lock_graph\": {\n    \"locks\": [");
    push_list(&mut s, &analysis.lock_graph.locks, 6, |s, l| {
        push_str_lit(s, l);
    });
    s.push_str("],\n    \"edges\": [");
    push_list(&mut s, &analysis.lock_graph.edges, 6, |s, e| {
        s.push_str("{\"from\": ");
        push_str_lit(s, &e.from);
        s.push_str(", \"to\": ");
        push_str_lit(s, &e.to);
        s.push_str(", \"file\": ");
        push_str_lit(s, &e.file);
        s.push_str(&format!(", \"line\": {}}}", e.line));
    });
    s.push_str("],\n    \"suggested_order\": [");
    push_list(&mut s, &analysis.lock_graph.suggested_order, 6, |s, l| {
        push_str_lit(s, l);
    });
    s.push_str("]\n  },\n");

    s.push_str("  \"hot_functions\": [");
    push_list(&mut s, &analysis.hot_functions, 4, |s, h| {
        push_str_lit(s, h);
    });
    s.push_str("]\n}\n");
    s
}

fn push_finding(s: &mut String, d: &Diagnostic) {
    s.push_str("{\"rule\": ");
    push_str_lit(s, d.rule);
    s.push_str(", \"severity\": ");
    push_str_lit(
        s,
        match d.severity {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Off => "off",
        },
    );
    s.push_str(", \"file\": ");
    push_str_lit(s, &d.file);
    s.push_str(&format!(", \"line\": {}, \"col\": {}, ", d.line, d.col));
    s.push_str("\"message\": ");
    push_str_lit(s, &d.message);
    s.push_str(", \"witness\": [");
    for (i, hop) in d.witness.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        push_str_lit(s, hop);
    }
    s.push_str("]}");
}

/// Writes `items` as a comma-separated multi-line list at `indent`.
fn push_list<T>(s: &mut String, items: &[T], indent: usize, mut one: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&" ".repeat(indent));
        one(s, item);
    }
    if !items.is_empty() {
        s.push('\n');
        s.push_str(&" ".repeat(indent.saturating_sub(2)));
    }
}

/// Writes a JSON string literal with escaping.
fn push_str_lit(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}
