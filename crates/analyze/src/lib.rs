//! Whole-workspace static analysis for Athena.
//!
//! `athena-lint` (the crate) owns the tokenizer, `lint.toml`, and the
//! file-local rules; this crate adds the passes that need to see *all*
//! files at once:
//!
//! - **function summaries + call graph** ([`model`], [`graph`]) — every
//!   production `fn`, its `impl` context, and conservatively resolved
//!   call edges between workspace functions;
//! - **derived lock-acquisition graph** ([`locks`]) — held-lock sets
//!   propagate through the call graph; the resulting acquisition-order
//!   edges must be cycle-free and consistent with `[analyze] lock_order`
//!   (`lock-cycle`, `lock-order-violation`), and calls made under a guard
//!   must not transitively reach a send/bus call
//!   (`bus-call-under-guard`);
//! - **hot-path propagation** ([`hot`]) — `no-panic-in-hot-path` and
//!   `no-unordered-iter-in-hot-path` obligations spread from the
//!   `[analyze] hot_entries` seeds to everything they reach, with the
//!   call chain attached to each finding.
//!
//! [`check_workspace`] is the one-call entry point used by the
//! `athena-lint` binary, `scripts/ci.sh`, and `tests/static_analysis.rs`;
//! [`analyze_sources`] is the same engine over in-memory sources, which
//! is how the violation corpus under `tests/` exercises each rule.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod graph;
pub mod hot;
pub mod json;
pub mod locks;
pub mod model;

use std::collections::BTreeMap;
use std::path::Path;

use athena_lint::rules::SourceFile;
use athena_lint::{collect_sources, load_config, Config, Diagnostic, LintError, Report, Severity};

pub use locks::LockEdge;

/// A finding before severity and allowlist resolution.
#[derive(Debug)]
pub(crate) struct RawDiag {
    rule: &'static str,
    file: String,
    line: u32,
    col: u32,
    message: String,
    witness: Vec<String>,
}

/// The derived lock graph, for `--lock-graph` and the JSON report.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every crate-qualified lock with an acquisition site, sorted.
    pub locks: Vec<String>,
    /// Derived acquisition-order edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// A topological order consistent with the edges (cycle members
    /// last) — paste into `[analyze] lock_order` to regenerate.
    pub suggested_order: Vec<String>,
}

/// Full analysis output: the gate report plus the derived artifacts.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Diagnostics, scan counts, and stale-allow findings.
    pub report: Report,
    /// The derived lock-acquisition graph.
    pub lock_graph: LockGraph,
    /// Qualified names (`file::fn`) of every hot-reachable function.
    pub hot_functions: Vec<String>,
}

/// Runs every pass over the given sources with the given configuration.
pub fn analyze_sources(config: &Config, files: &[SourceFile]) -> Analysis {
    let funcs = model::extract_functions(files);
    let calls = graph::build_calls(files, &funcs);

    let mut raw: Vec<RawDiag> = Vec::new();

    // File-local rules from athena-lint.
    for file in files {
        for rule in athena_lint::rules::registry() {
            let mut violations = Vec::new();
            rule.check(file, config, &mut violations);
            for v in violations {
                raw.push(RawDiag {
                    rule: rule.name(),
                    file: file.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    message: v.message,
                    witness: Vec::new(),
                });
            }
        }
    }

    // Whole-graph passes.
    let lock_out = locks::analyze_locks(config, files, &funcs, &calls);
    raw.extend(lock_out.diags);
    let (hot_diags, hot_functions) = hot::analyze_hot(config, files, &funcs, &calls);
    raw.extend(hot_diags);

    // Severity + allowlist resolution, with stale-allow accounting.
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut matched = vec![false; config.allow.len()];
    let mut diagnostics = Vec::new();
    for d in raw {
        let severity = config.severity_for(d.rule, default_severity(d.rule));
        if severity == Severity::Off {
            continue;
        }
        let line_text = by_path
            .get(d.file.as_str())
            .map(|f| f.line_text(d.line))
            .unwrap_or("");
        let mut allowed = false;
        for (i, a) in config.allow.iter().enumerate() {
            if a.rule == d.rule && a.file == d.file && line_text.contains(&a.pattern) {
                matched[i] = true;
                allowed = true;
            }
        }
        if allowed {
            continue;
        }
        diagnostics.push(Diagnostic {
            rule: d.rule,
            severity,
            file: d.file,
            line: d.line,
            col: d.col,
            message: d.message,
            witness: d.witness,
        });
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    let stale_allows = config
        .allow
        .iter()
        .zip(&matched)
        .filter(|(_, &m)| !m)
        .map(|(a, _)| {
            format!(
                "lint.toml:{}: stale [[allow]] — {} in {} (pattern {:?}) matched nothing; \
                 delete the entry",
                a.line, a.rule, a.file, a.pattern
            )
        })
        .collect();

    Analysis {
        report: Report {
            diagnostics,
            files_scanned: files.len(),
            stale_allows,
        },
        lock_graph: LockGraph {
            locks: lock_out.locks,
            edges: lock_out.edges,
            suggested_order: lock_out.suggested_order,
        },
        hot_functions,
    }
}

/// Loads `lint.toml`, collects the workspace sources, and runs every
/// pass.
///
/// # Errors
///
/// Returns [`LintError`] when the configuration is missing/malformed or
/// sources cannot be read.
pub fn check_workspace(root: &Path) -> Result<Analysis, LintError> {
    let config = load_config(root)?;
    let files = collect_sources(root)?;
    Ok(analyze_sources(&config, &files))
}

fn default_severity(_rule: &str) -> Severity {
    Severity::Error
}
