//! Hot-path propagation.
//!
//! `[analyze] hot_entries` seeds the per-packet / per-window entry points
//! (`"<file>::<fn>"`, or `"<file>::*"` for a whole file). Hotness then
//! propagates transitively through the resolved call graph: a helper
//! three hops below the forwarding path inherits the no-panic and
//! no-unordered-iteration obligations, with the call chain attached to
//! every finding as a witness.

use std::collections::{BTreeMap, VecDeque};

use athena_lint::rules::SourceFile;
use athena_lint::sites;
use athena_lint::tokenizer::TokenKind;

use crate::graph::Call;
use crate::model::{self, Func};
use crate::RawDiag;

/// How a function became hot.
enum Hotness {
    Seed,
    Via { parent: usize, line: u32 },
}

/// Call idents that open a causal span or latency timer. A hot *seed*
/// (declared subsystem entry point) must invoke one of these somewhere
/// in its body so the cross-subsystem trace covers the boundary
/// (`span-on-subsystem-entry`).
const SPAN_OPENERS: &[&str] = &["span", "span_at", "span_now", "root_span", "start_timer"];

/// Runs the hot-path pass; returns diagnostics plus the sorted qualified
/// names of every hot function (for the JSON report).
pub(crate) fn analyze_hot(
    config: &athena_lint::Config,
    files: &[SourceFile],
    funcs: &[Func],
    calls: &[Vec<Call>],
) -> (Vec<RawDiag>, Vec<String>) {
    let mut diags = Vec::new();
    let mut hot: BTreeMap<usize, Hotness> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    for entry in &config.hot_entries {
        let Some((file, name)) = entry.rsplit_once("::") else {
            diags.push(bad_entry(
                config,
                entry,
                "expected \"<file>::<fn>\" or \"<file>::*\"",
            ));
            continue;
        };
        let mut matched = false;
        for f in funcs {
            if files[f.file].rel_path == file && (name == "*" || f.name == name) {
                matched = true;
                hot.entry(f.id).or_insert_with(|| {
                    queue.push_back(f.id);
                    Hotness::Seed
                });
            }
        }
        if !matched {
            diags.push(bad_entry(config, entry, "matched no function"));
        }
    }

    while let Some(f) = queue.pop_front() {
        for call in &calls[f] {
            for &t in &call.targets {
                hot.entry(t).or_insert_with(|| {
                    queue.push_back(t);
                    Hotness::Via {
                        parent: f,
                        line: call.line,
                    }
                });
            }
        }
    }

    // Scan each file containing hot functions once; keep sites whose
    // innermost enclosing function is hot.
    let mut hot_files: BTreeMap<usize, Vec<&Func>> = BTreeMap::new();
    for &id in hot.keys() {
        hot_files.entry(funcs[id].file).or_default();
    }
    for (file_idx, list) in &mut hot_files {
        *list = funcs.iter().filter(|f| f.file == *file_idx).collect();
    }
    for (&file_idx, file_funcs) in &hot_files {
        let file = &files[file_idx];
        let passes: [(&'static str, Vec<sites::Site>); 2] = [
            ("no-panic-in-hot-path", sites::panic_sites(&file.tokens)),
            (
                "no-unordered-iter-in-hot-path",
                sites::unordered_iter_sites(&file.tokens),
            ),
        ];
        for (rule, found) in passes {
            for site in found {
                let Some(fid) = model::innermost_fn(file_funcs, site.token) else {
                    continue;
                };
                if !hot.contains_key(&fid) {
                    continue;
                }
                let t = &file.tokens[site.token];
                diags.push(RawDiag {
                    rule,
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: site.message,
                    witness: chain(fid, &hot, funcs, files),
                });
            }
        }
    }

    // Seeds are the declared subsystem entry points: each must open a
    // telemetry/observe span (or latency timer) so causal traces cover
    // the boundary. Propagated (`Via`) functions are exempt — they run
    // inside a span their entry point opened.
    for (&id, how) in &hot {
        if !matches!(how, Hotness::Seed) {
            continue;
        }
        let f = &funcs[id];
        let file = &files[f.file];
        let body = &file.tokens[f.body_start..=f.body_end];
        let opens = body.windows(2).any(|w| {
            w[0].kind == TokenKind::Ident
                && SPAN_OPENERS.contains(&w[0].text.as_str())
                && w[1].is_punct('(')
        });
        if !opens {
            diags.push(RawDiag {
                rule: "span-on-subsystem-entry",
                file: file.rel_path.clone(),
                line: f.line,
                col: 1,
                message: format!(
                    "hot entry `{}` opens no telemetry/observe span; call one of \
                     {SPAN_OPENERS:?} (or add an [[allow]] with a reason)",
                    f.name
                ),
                witness: Vec::new(),
            });
        }
    }

    let hot_names: Vec<String> = hot.keys().map(|&id| funcs[id].qualified(files)).collect();
    (diags, hot_names)
}

fn bad_entry(config: &athena_lint::Config, entry: &str, why: &str) -> RawDiag {
    RawDiag {
        rule: "hot-entry-unmatched",
        file: "lint.toml".to_string(),
        line: config.lock_order_line as u32, // nearest [analyze] anchor
        col: 1,
        message: format!("[analyze] hot_entries entry {entry:?} {why}"),
        witness: Vec::new(),
    }
}

/// Call chain from a hot seed down to `fid` (empty for seeds — their
/// hotness is declared, not derived).
fn chain(
    fid: usize,
    hot: &BTreeMap<usize, Hotness>,
    funcs: &[Func],
    files: &[SourceFile],
) -> Vec<String> {
    let mut hops_rev = Vec::new();
    let mut cur = fid;
    for _ in 0..20 {
        match hot.get(&cur) {
            Some(Hotness::Via { parent, line }) => {
                hops_rev.push(format!(
                    "called from {} ({}:{})",
                    funcs[*parent].qualified(files),
                    files[funcs[*parent].file].rel_path,
                    line
                ));
                cur = *parent;
            }
            Some(Hotness::Seed) => {
                if !hops_rev.is_empty() {
                    hops_rev.push(format!("hot entry {}", funcs[cur].qualified(files)));
                }
                break;
            }
            None => break,
        }
    }
    hops_rev.reverse();
    hops_rev
}
