//! Call-site extraction and name resolution.
//!
//! Resolution is deliberately conservative: a call edge is only created
//! when the callee name plausibly refers to workspace functions, and
//! method names that collide with the standard library (`insert`, `get`,
//! `iter`, …) are never resolved — a false edge would propagate held-lock
//! sets and hot-path reachability into unrelated code. The runtime
//! lock-order sentinel compensates for edges this under-approximation
//! misses (closures, stoplisted methods).

use std::collections::{BTreeMap, BTreeSet};

use athena_lint::rules::SourceFile;
use athena_lint::tokenizer::TokenKind;

use crate::model::{self, Func, CALL_KEYWORDS};

/// Method names never resolved to workspace functions: each collides
/// with a std/container method, and a wrong edge poisons every
/// propagation pass downstream.
const METHOD_STOPLIST: &[&str] = &[
    "abs",
    "add",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_micros",
    "as_millis",
    "as_mut",
    "as_nanos",
    "as_ref",
    "as_secs",
    "as_secs_f64",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "cycle",
    "dedup",
    "default",
    "div",
    "div_ceil",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "extend_from_slice",
    "fetch_add",
    "fetch_sub",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "finish",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "insert_str",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "load",
    "lock",
    "log2",
    "map",
    "map_err",
    "map_or",
    "map_or_else",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul",
    "ne",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "read",
    "recv",
    "rem_euclid",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "split",
    "split_once",
    "split_whitespace",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sub",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_be_bytes",
    "to_le_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_lock",
    "try_read",
    "try_send",
    "try_write",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "wait",
    "wait_timeout",
    "window",
    "windows",
    "with",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Path qualifiers naming std (or shimmed third-party) modules; a call
/// qualified by one of these never targets workspace code.
const STD_QUALIFIERS: &[&str] = &[
    "alloc",
    "array",
    "atomic",
    "char",
    "cmp",
    "collections",
    "convert",
    "core",
    "env",
    "f32",
    "f64",
    "fmt",
    "fs",
    "i128",
    "i16",
    "i32",
    "i64",
    "i8",
    "isize",
    "iter",
    "mem",
    "num",
    "option",
    "process",
    "proptest",
    "ptr",
    "rand",
    "result",
    "serde",
    "serde_json",
    "slice",
    "std",
    "str",
    "sync",
    "thread",
    "time",
    "u128",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

/// One resolved (or unresolvable) call site inside a function body.
#[derive(Debug)]
pub struct Call {
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Callee name as written.
    pub name: String,
    /// Workspace functions this call may target (empty = external /
    /// stoplisted / unresolvable). Multiple targets over-approximate.
    pub targets: Vec<usize>,
}

/// Extracts and resolves every call site, grouped by caller function id.
pub fn build_calls(files: &[SourceFile], funcs: &[Func]) -> Vec<Vec<Call>> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for f in funcs {
        by_name.entry(&f.name).or_default().push(f.id);
    }
    let crate_of_file: Vec<&str> = files.iter().map(|f| model::crate_of(&f.rel_path)).collect();

    let mut calls: Vec<Vec<Call>> = funcs.iter().map(|_| Vec::new()).collect();
    for (file_idx, file) in files.iter().enumerate() {
        let tokens = &file.tokens;
        let file_funcs: Vec<&Func> = funcs.iter().filter(|f| f.file == file_idx).collect();
        for k in 0..tokens.len() {
            let t = &tokens[k];
            if t.kind != TokenKind::Ident || t.in_test {
                continue;
            }
            if CALL_KEYWORDS.contains(&t.text.as_str()) || t.text == "self" || t.text == "Self" {
                continue;
            }
            // The callee name must be directly followed by `(`, allowing
            // one turbofish (`name::<T>(…)`).
            let mut p = k + 1;
            if tokens.get(p).is_some_and(|n| n.kind == TokenKind::PathSep)
                && tokens.get(p + 1).is_some_and(|n| n.is_punct('<'))
            {
                match model::skip_angles(tokens, p + 1) {
                    Some(after) => p = after,
                    None => continue,
                }
            }
            if !tokens.get(p).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            let Some(fid) = model::innermost_fn(&file_funcs, k) else {
                continue;
            };
            let prev = k.checked_sub(1).map(|i| &tokens[i]);
            let callee = match prev {
                Some(pv) if pv.is_punct('.') => Callee::Method,
                Some(pv) if pv.kind == TokenKind::PathSep => {
                    match k.checked_sub(2).map(|i| &tokens[i]) {
                        Some(q) if q.kind == TokenKind::Ident => Callee::Qualified(q.text.clone()),
                        _ => continue, // `<T as Trait>::f` — unresolvable
                    }
                }
                Some(pv) if pv.is_ident("fn") => continue, // definition
                _ => {
                    // Free call; uppercase names are tuple-struct or enum
                    // constructors, never workspace functions.
                    if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
                        continue;
                    }
                    Callee::Free
                }
            };
            let targets = resolve(
                &callee,
                &t.text,
                funcs,
                &by_name,
                &crate_of_file,
                file_idx,
                funcs[fid].impl_type.as_deref(),
                fid,
            );
            calls[fid].push(Call {
                tok: k,
                line: t.line,
                col: t.col,
                name: t.text.clone(),
                targets,
            });
        }
    }
    calls
}

enum Callee {
    Method,
    Free,
    Qualified(String),
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    callee: &Callee,
    name: &str,
    funcs: &[Func],
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_of_file: &[&str],
    caller_file: usize,
    caller_impl: Option<&str>,
    caller: usize,
) -> Vec<usize> {
    let candidates = |keep: &dyn Fn(&Func) -> bool| -> Vec<usize> {
        by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| keep(&funcs[id]))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default()
    };
    let raw = match callee {
        Callee::Method => {
            if METHOD_STOPLIST.binary_search(&name).is_ok() {
                return Vec::new();
            }
            // A same-named method call inside a function never resolves
            // back to that function: `self.detector.lock().total_alerts()`
            // inside `fn total_alerts` is the wrapper-delegation pattern,
            // and a self-target would fabricate a lock self-cycle.
            candidates(&|f| f.has_self && f.id != caller)
        }
        Callee::Free => {
            if name == "drop" {
                return Vec::new();
            }
            candidates(&|f| !f.has_self && f.impl_type.is_none())
        }
        Callee::Qualified(q) => {
            if STD_QUALIFIERS.contains(&q.as_str()) {
                return Vec::new();
            }
            if q == "Self" {
                match caller_impl {
                    Some(ty) => candidates(&|f| f.impl_type.as_deref() == Some(ty)),
                    None => Vec::new(),
                }
            } else if q == "crate" {
                let cr = crate_of_file[caller_file];
                candidates(&|f| f.impl_type.is_none() && !f.has_self && crate_of_file[f.file] == cr)
            } else if let Some(cr) = q.strip_prefix("athena_") {
                candidates(&|f| f.impl_type.is_none() && !f.has_self && crate_of_file[f.file] == cr)
            } else if q.chars().next().is_some_and(|c| c.is_uppercase()) {
                // `Type::method(…)` — associated call on a workspace type.
                candidates(&|f| f.impl_type.as_deref() == Some(q.as_str()))
            } else {
                // `module::function(…)`.
                candidates(&|f| f.impl_type.is_none() && !f.has_self)
            }
        }
    };
    // Prefer the nearest tier: same file, then same crate, then anywhere.
    let cr = crate_of_file[caller_file];
    let same_file: Vec<usize> = raw
        .iter()
        .copied()
        .filter(|&id| funcs[id].file == caller_file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = raw
        .iter()
        .copied()
        .filter(|&id| crate_of_file[funcs[id].file] == cr)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    // Workspace tier, method calls only: candidates scattered across
    // crates mean the name is generic (`checkpoint`, `bind_telemetry`);
    // resolving to all of them stitches unrelated subsystems together.
    if matches!(callee, Callee::Method) {
        let crates: BTreeSet<&str> = raw
            .iter()
            .map(|&id| crate_of_file[funcs[id].file])
            .collect();
        if crates.len() > 1 {
            return Vec::new();
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::METHOD_STOPLIST;

    #[test]
    fn stoplist_is_sorted_for_binary_search() {
        let mut sorted = METHOD_STOPLIST.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, METHOD_STOPLIST);
    }
}
