//! The workspace static-analysis gate.
//!
//! Runs the file-local rules and the whole-workspace call-graph passes
//! (derived lock graph, hot-path propagation) over `src/` and
//! `crates/*/src/`, then exits non-zero on any error-severity finding or
//! stale `[[allow]]` entry.
//!
//! Flags:
//! - `--root <dir>`: workspace root (default: walk up to `lint.toml`).
//! - `--json [path]`: also write the machine-readable report (default
//!   `target/analysis-report.json` under the root).
//! - `--lock-graph`: print the derived lock-acquisition graph and a
//!   valid `lock_order` to paste into `lint.toml`, then exit 0.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use athena_analyze::{check_workspace, json};
use athena_lint::{find_root, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<Option<PathBuf>> = None;
    let mut lock_graph = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("athena-lint: --root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => {
                // Optional path operand.
                match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        json_path = Some(Some(PathBuf::from(p)));
                        i += 1;
                    }
                    _ => json_path = Some(None),
                }
            }
            "--lock-graph" => lock_graph = true,
            "--help" | "-h" => {
                println!(
                    "usage: athena-lint [--root <dir>] [--json [path]] [--lock-graph]\n\
                     \n\
                     Workspace static-analysis gate: file-local rules plus the\n\
                     call-graph passes (derived lock-acquisition graph, hot-path\n\
                     propagation). Exits non-zero on error findings or stale\n\
                     [[allow]] entries.\n\
                     \n\
                     --root <dir>    workspace root (default: nearest lint.toml upward)\n\
                     --json [path]   write the JSON report (default target/analysis-report.json)\n\
                     --lock-graph    print derived lock edges and a valid lock_order, exit 0"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("athena-lint: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root.or_else(|| env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("athena-lint: no lint.toml found upward of the current directory");
            return ExitCode::from(2);
        }
    };

    let analysis = match check_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("athena-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if lock_graph {
        println!(
            "derived lock-acquisition graph ({} locks, {} edges)",
            analysis.lock_graph.locks.len(),
            analysis.lock_graph.edges.len()
        );
        for e in &analysis.lock_graph.edges {
            println!("  {} -> {}  ({}:{})", e.from, e.to, e.file, e.line);
            for hop in &e.witness {
                println!("      via {hop}");
            }
        }
        println!("\nsuggested [analyze] lock_order:");
        println!("lock_order = [");
        for l in &analysis.lock_graph.suggested_order {
            println!("    \"{l}\",");
        }
        println!("]");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = json_path {
        let path = path.unwrap_or_else(|| root.join("target/analysis-report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("athena-lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = fs::write(&path, json::render(&analysis)) {
            eprintln!("athena-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    let report = &analysis.report;
    for d in &report.diagnostics {
        println!("{d}");
    }
    for s in &report.stale_allows {
        println!("{s}");
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    println!(
        "athena-lint: {} files, {} hot functions, {} lock edges, {} error(s), {} warning(s), {} stale allow(s)",
        report.files_scanned,
        analysis.hot_functions.len(),
        analysis.lock_graph.edges.len(),
        errors,
        report.diagnostics.len() - errors,
        report.stale_allows.len()
    );
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
