//! Derived lock-acquisition-graph analysis.
//!
//! Every acquisition site (`.lock()` / `.read()` / `.write()` / helper
//! calls) is given a crate-qualified name. Held-lock sets propagate
//! through the call graph to a fixpoint; an edge `A → B` means "B was
//! acquired somewhere while A was held". The gate then demands the edge
//! set be cycle-free and consistent with the single global order declared
//! in `[analyze] lock_order` — which turns `lint.toml` from a trusted
//! assertion into a verified one.

use std::collections::{BTreeMap, BTreeSet};

use athena_lint::rules::SourceFile;
use athena_lint::sites;
use athena_lint::tokenizer::TokenKind;
use athena_lint::Config;

use crate::graph::Call;
use crate::model::{self, Func};
use crate::RawDiag;

/// Function names whose bodies are opaque to acquisition extraction: the
/// lock *wrappers* themselves (configured helpers plus the conventional
/// guard methods). Their internal `.lock()` is the implementation of the
/// acquisition already attributed at their call sites.
const OPAQUE_WRAPPERS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// One derived acquisition-order edge with its code witness.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the time.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// How `from` came to be held at that point (call-chain hops).
    pub witness: Vec<String>,
}

/// Result of the lock analysis.
pub(crate) struct LockOutcome {
    /// Every crate-qualified lock name with at least one acquisition
    /// site, sorted.
    pub locks: Vec<String>,
    /// Derived edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// A valid total order for `lock_order` (topological; cycle members
    /// appended last), as printed by `--lock-graph`.
    pub suggested_order: Vec<String>,
    /// Cycle, order, and graph-aware bus findings.
    pub diags: Vec<RawDiag>,
}

/// A held-guard window inside one function (token half-open range).
struct Window {
    lock: String,
    start: usize,
    end: usize,
    acq_tok: usize,
    acq_line: u32,
}

/// Runs the full lock-graph pass.
pub(crate) fn analyze_locks(
    config: &Config,
    files: &[SourceFile],
    funcs: &[Func],
    calls: &[Vec<Call>],
) -> LockOutcome {
    let windows = collect_windows(config, files, funcs);

    // Fixpoint: locks held on entry to each function, with the call edge
    // that first propagated them (for witness reconstruction).
    let mut entry_held: Vec<BTreeMap<String, (usize, u32)>> =
        funcs.iter().map(|_| BTreeMap::new()).collect();
    loop {
        let mut changed = false;
        for f in 0..funcs.len() {
            for call in &calls[f] {
                if call.targets.is_empty() {
                    continue;
                }
                let mut held: BTreeSet<String> = entry_held[f].keys().cloned().collect();
                for w in &windows[f] {
                    if w.start <= call.tok && call.tok < w.end {
                        held.insert(w.lock.clone());
                    }
                }
                for &t in &call.targets {
                    for h in &held {
                        if !entry_held[t].contains_key(h) {
                            entry_held[t].insert(h.clone(), (f, call.line));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Derive edges: one deterministic pass, first witness wins.
    let mut edge_map: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for f in 0..funcs.len() {
        let file = &files[funcs[f].file];
        for w_to in &windows[f] {
            let anchor = &file.tokens[anchor_tok(file, w_to.acq_tok)];
            let mut add = |from: String, witness: Vec<String>| {
                edge_map
                    .entry((from.clone(), w_to.lock.clone()))
                    .or_insert_with(|| LockEdge {
                        from,
                        to: w_to.lock.clone(),
                        file: file.rel_path.clone(),
                        line: anchor.line,
                        col: anchor.col,
                        witness,
                    });
            };
            for w_held in &windows[f] {
                if w_held.acq_tok != w_to.acq_tok
                    && w_held.start <= w_to.acq_tok
                    && w_to.acq_tok < w_held.end
                    && w_held.lock != w_to.lock
                {
                    add(
                        w_held.lock.clone(),
                        vec![format!(
                            "`{}` acquired in {} ({}:{})",
                            w_held.lock,
                            funcs[f].qualified(files),
                            file.rel_path,
                            w_held.acq_line
                        )],
                    );
                }
            }
            for h in entry_held[f].keys() {
                // Same-lock here means re-entrant acquisition through a
                // call chain: a self-edge, reported as a cycle below.
                add(
                    h.clone(),
                    chain_for(f, h, &entry_held, &windows, funcs, files),
                );
            }
        }
    }
    let edges: Vec<LockEdge> = edge_map.into_values().collect();

    let locks: Vec<String> = {
        let mut set: BTreeSet<String> = BTreeSet::new();
        for ws in &windows {
            for w in ws {
                set.insert(w.lock.clone());
            }
        }
        set.into_iter().collect()
    };

    let mut diags = Vec::new();
    let cycle_edges = cycle_diags(&edges, &mut diags);
    order_diags(config, &locks, &edges, &cycle_edges, &mut diags);
    bus_diags(
        config,
        files,
        funcs,
        calls,
        &windows,
        &entry_held,
        &mut diags,
    );

    LockOutcome {
        suggested_order: suggest_order(&locks, &edges),
        locks,
        edges,
        diags,
    }
}

/// The display token for an acquisition (`.lock()` anchors on `lock`,
/// helper calls on the helper name).
fn anchor_tok(file: &SourceFile, acq_tok: usize) -> usize {
    if file.tokens[acq_tok].is_punct('.') {
        acq_tok + 1
    } else {
        acq_tok
    }
}

/// Collects held-guard windows per function, skipping opaque wrapper
/// bodies, test code, and receivers that cannot be named.
fn collect_windows(config: &Config, files: &[SourceFile], funcs: &[Func]) -> Vec<Vec<Window>> {
    let mut opaque: BTreeSet<&str> = OPAQUE_WRAPPERS.iter().copied().collect();
    for h in &config.lock_helpers {
        opaque.insert(h);
    }

    let mut windows: Vec<Vec<Window>> = funcs.iter().map(|_| Vec::new()).collect();
    for (file_idx, file) in files.iter().enumerate() {
        let tokens = &file.tokens;
        let file_funcs: Vec<&Func> = funcs.iter().filter(|f| f.file == file_idx).collect();
        if file_funcs.is_empty() {
            continue;
        }
        let krate = model::crate_of(&file.rel_path);
        for acq in sites::find_acquisitions(tokens, &config.lock_helpers) {
            if tokens[acq.at].in_test || acq.name == "<expr>" {
                continue;
            }
            let Some(fid) = model::innermost_fn(&file_funcs, acq.at) else {
                continue;
            };
            if opaque.contains(funcs[fid].name.as_str()) {
                continue;
            }
            let mut end = sites::guard_extent(tokens, &acq).min(funcs[fid].body_end);
            if let Some(var) = sites::guard_variable(tokens, &acq) {
                for k in acq.end..end {
                    if sites::drop_releases(tokens, k, &var) {
                        end = k;
                        break;
                    }
                }
            }
            windows[fid].push(Window {
                lock: format!("{krate}/{}", acq.name),
                start: acq.end,
                end,
                acq_tok: acq.at,
                acq_line: tokens[anchor_tok(file, acq.at)].line,
            });
        }
    }
    windows
}

/// Reconstructs how `lock` came to be held on entry to `fid`.
fn chain_for(
    fid: usize,
    lock: &str,
    entry_held: &[BTreeMap<String, (usize, u32)>],
    windows: &[Vec<Window>],
    funcs: &[Func],
    files: &[SourceFile],
) -> Vec<String> {
    let mut hops_rev = Vec::new();
    let mut cur = fid;
    let mut seen = BTreeSet::new();
    while let Some(&(e, line)) = entry_held[cur].get(lock) {
        if !seen.insert(cur) || hops_rev.len() >= 20 {
            break;
        }
        hops_rev.push(format!(
            "held across call from {} ({}:{})",
            funcs[e].qualified(files),
            files[funcs[e].file].rel_path,
            line
        ));
        cur = e;
    }
    if let Some(w) = windows[cur].iter().find(|w| w.lock == lock) {
        hops_rev.push(format!(
            "`{lock}` acquired in {} ({}:{})",
            funcs[cur].qualified(files),
            files[funcs[cur].file].rel_path,
            w.acq_line
        ));
    }
    hops_rev.reverse();
    hops_rev
}

/// Finds strongly-connected components with a cycle and reports each as
/// one `lock-cycle` diagnostic. Returns the set of intra-cycle edges so
/// the order check does not double-report them.
fn cycle_diags(edges: &[LockEdge], diags: &mut Vec<RawDiag>) -> BTreeSet<(String, String)> {
    let nodes: Vec<&str> = {
        let mut s: BTreeSet<&str> = BTreeSet::new();
        for e in edges {
            s.insert(&e.from);
            s.insert(&e.to);
        }
        s.into_iter().collect()
    };
    let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in edges {
        adj[index[e.from.as_str()]].push(index[e.to.as_str()]);
    }
    let scc = tarjan(&adj);

    let mut cycle_edges = BTreeSet::new();
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for e in edges {
        let (a, b) = (index[e.from.as_str()], index[e.to.as_str()]);
        let cyclic = scc[a] == scc[b] && (a != b || e.from == e.to);
        if !cyclic {
            continue;
        }
        cycle_edges.insert((e.from.clone(), e.to.clone()));
        if !reported.insert(scc[a]) {
            continue;
        }
        let members: Vec<String> = edges
            .iter()
            .filter(|x| {
                scc[index[x.from.as_str()]] == scc[a] && scc[index[x.to.as_str()]] == scc[a]
            })
            .map(|x| format!("`{}` → `{}` ({}:{})", x.from, x.to, x.file, x.line))
            .collect();
        diags.push(RawDiag {
            rule: "lock-cycle",
            file: e.file.clone(),
            line: e.line,
            col: e.col,
            message: format!(
                "derived lock-acquisition cycle: {}; a concurrent interleaving of these \
                 chains deadlocks",
                members.join(", ")
            ),
            witness: e.witness.clone(),
        });
    }
    cycle_edges
}

/// Iterative Tarjan SCC; returns the component id of each node.
fn tarjan(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut comp = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().unwrap_or(v);
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Verifies the declared `lock_order` against the derived (acyclic part
/// of the) edge set.
fn order_diags(
    config: &Config,
    site_locks: &[String],
    edges: &[LockEdge],
    cycle_edges: &BTreeSet<(String, String)>,
    diags: &mut Vec<RawDiag>,
) {
    let mut pos: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, name) in config.lock_order.iter().enumerate() {
        if pos.insert(name, i).is_some() {
            diags.push(RawDiag {
                rule: "lock-order-violation",
                file: "lint.toml".to_string(),
                line: config.lock_order_line as u32,
                col: 1,
                message: format!("lock `{name}` listed twice in [analyze] lock_order"),
                witness: Vec::new(),
            });
        }
    }

    let mut unlisted: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        if cycle_edges.contains(&(e.from.clone(), e.to.clone())) {
            continue;
        }
        match (pos.get(e.from.as_str()), pos.get(e.to.as_str())) {
            (Some(a), Some(b)) if a > b => diags.push(RawDiag {
                rule: "lock-order-violation",
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "derived acquisition `{}` → `{}` contradicts [analyze] lock_order, \
                     which lists `{}` before `{}`",
                    e.from, e.to, e.to, e.from
                ),
                witness: e.witness.clone(),
            }),
            (Some(_), Some(_)) => {}
            (a, b) => {
                for (p, name) in [(a, &e.from), (b, &e.to)] {
                    if p.is_none() && unlisted.insert(name.as_str()) {
                        diags.push(RawDiag {
                            rule: "lock-order-violation",
                            file: e.file.clone(),
                            line: e.line,
                            col: e.col,
                            message: format!(
                                "lock `{name}` participates in derived acquisition edge \
                                 `{}` → `{}` but is not listed in [analyze] lock_order; \
                                 regenerate with `cargo run -p athena-analyze --bin \
                                 athena-lint -- --lock-graph`",
                                e.from, e.to
                            ),
                            witness: e.witness.clone(),
                        });
                    }
                }
            }
        }
    }

    for name in &config.lock_order {
        if !site_locks.contains(name) {
            diags.push(RawDiag {
                rule: "lock-order-violation",
                file: "lint.toml".to_string(),
                line: config.lock_order_line as u32,
                col: 1,
                message: format!(
                    "declared lock `{name}` matched no acquisition site; delete it or \
                     regenerate with `--lock-graph`"
                ),
                witness: Vec::new(),
            });
        }
    }
}

/// A topological order of the derived graph, suitable for pasting into
/// `lock_order`. Cycle members (if any) come last, sorted.
fn suggest_order(locks: &[String], edges: &[LockEdge]) -> Vec<String> {
    let index: BTreeMap<&str, usize> = locks
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut indegree = vec![0usize; locks.len()];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); locks.len()];
    for e in edges {
        let (Some(&a), Some(&b)) = (index.get(e.from.as_str()), index.get(e.to.as_str())) else {
            continue;
        };
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
            indegree[b] += 1;
        }
    }
    let mut ready: BTreeSet<usize> = (0..locks.len()).filter(|&i| indegree[i] == 0).collect();
    let mut out = Vec::with_capacity(locks.len());
    let mut emitted = vec![false; locks.len()];
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        emitted[i] = true;
        out.push(locks[i].clone());
        for &j in &adj[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 && !emitted[j] {
                ready.insert(j);
            }
        }
    }
    for (i, name) in locks.iter().enumerate() {
        if !emitted[i] {
            out.push(name.clone());
        }
    }
    out
}

/// Graph-aware bus-call check: flags calls made under a held guard whose
/// *callee* transitively performs a send/event-bus call. Direct bus calls
/// under a guard are the file-local lock-discipline rule's job.
#[allow(clippy::too_many_arguments)]
fn bus_diags(
    config: &Config,
    files: &[SourceFile],
    funcs: &[Func],
    calls: &[Vec<Call>],
    windows: &[Vec<Window>],
    entry_held: &[BTreeMap<String, (usize, u32)>],
    diags: &mut Vec<RawDiag>,
) {
    // Which functions *directly* contain a bus call.
    #[derive(Clone)]
    enum Reach {
        Direct { line: u32, name: String },
        Via { callee: usize, line: u32 },
    }
    let mut reach: Vec<Option<Reach>> = funcs
        .iter()
        .map(|f| {
            let tokens = &files[f.file].tokens;
            for k in f.body_start + 1..f.body_end {
                if tokens[k].is_punct('.')
                    && tokens.get(k + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident
                            && !n.in_test
                            && config.bus_calls.contains(&n.text)
                    })
                    && tokens.get(k + 2).is_some_and(|n| n.is_punct('('))
                {
                    return Some(Reach::Direct {
                        line: tokens[k + 1].line,
                        name: tokens[k + 1].text.clone(),
                    });
                }
            }
            None
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..funcs.len() {
            if reach[f].is_some() {
                continue;
            }
            for call in &calls[f] {
                if let Some(&t) = call.targets.iter().find(|&&t| reach[t].is_some()) {
                    reach[f] = Some(Reach::Via {
                        callee: t,
                        line: call.line,
                    });
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for f in 0..funcs.len() {
        for call in &calls[f] {
            if call.targets.is_empty() || config.bus_calls.contains(&call.name) {
                continue;
            }
            let mut held: BTreeSet<&str> = entry_held[f].keys().map(|s| s.as_str()).collect();
            for w in &windows[f] {
                if w.start <= call.tok && call.tok < w.end {
                    held.insert(&w.lock);
                }
            }
            let Some(&held_name) = held.iter().next() else {
                continue;
            };
            let Some(&t) = call.targets.iter().find(|&&t| reach[t].is_some()) else {
                continue;
            };
            // Walk the reach chain down to the concrete bus call site.
            let mut witness = Vec::new();
            let mut cur = t;
            for _ in 0..20 {
                match reach[cur].clone() {
                    Some(Reach::Via { callee, line }) => {
                        witness.push(format!(
                            "{} calls {} ({}:{})",
                            funcs[cur].qualified(files),
                            funcs[callee].qualified(files),
                            files[funcs[cur].file].rel_path,
                            line
                        ));
                        cur = callee;
                    }
                    Some(Reach::Direct { line, name }) => {
                        witness.push(format!(
                            "{} calls .{name}(…) ({}:{})",
                            funcs[cur].qualified(files),
                            files[funcs[cur].file].rel_path,
                            line
                        ));
                        break;
                    }
                    None => break,
                }
            }
            diags.push(RawDiag {
                rule: "bus-call-under-guard",
                file: files[funcs[f].file].rel_path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "`{}(…)` transitively reaches a send/bus call while lock \
                     `{held_name}` is held; release the guard first",
                    call.name
                ),
                witness,
            });
        }
    }
}
