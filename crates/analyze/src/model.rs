//! Function and `impl`-block extraction over the tokenized workspace.
//!
//! The call-graph analyses need to know, for every production function:
//! where its body starts and ends, whether it takes `self`, which type it
//! is implemented on, and which crate it lives in. All of that is derived
//! here from the shared tokenizer — no syn, no rustc.

use athena_lint::rules::SourceFile;
use athena_lint::tokenizer::{Token, TokenKind};

/// Identifiers that can precede `(` without being a function call.
pub const CALL_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "super", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// One production function found in the workspace.
#[derive(Debug)]
pub struct Func {
    /// Index into the flat function table (stable, deterministic).
    pub id: usize,
    /// Index into the scanned file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (`impl Pool { fn park… }` → `Pool`).
    pub impl_type: Option<String>,
    /// Whether the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's matching `}`.
    pub body_end: usize,
    /// 1-based source line of the `fn` name (for witnesses).
    pub line: u32,
}

impl Func {
    /// `file::name` qualified display form.
    pub fn qualified(&self, files: &[SourceFile]) -> String {
        format!("{}::{}", files[self.file].rel_path, self.name)
    }
}

/// The crate a workspace-relative path belongs to (`crates/store/src/…` →
/// `store`; the root `src/` facade → `athena`).
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("athena")
}

/// Extracts every non-test function with a body from `files`, in file
/// then token order (deterministic ids).
pub fn extract_functions(files: &[SourceFile]) -> Vec<Func> {
    let mut out = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let tokens = &file.tokens;
        let impls = impl_spans(tokens);
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("fn") || tokens[i].in_test {
                continue;
            }
            let Some(name_tok) = tokens.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue; // `fn(…)` pointer type
            }
            let Some((body_start, body_end)) = fn_body(tokens, i) else {
                continue; // trait method declaration without a body
            };
            let impl_type = impls
                .iter()
                .filter(|s| s.body_start < i && i < s.body_end)
                .max_by_key(|s| s.body_start)
                .map(|s| s.type_name.clone());
            let id = out.len();
            out.push(Func {
                id,
                file: file_idx,
                name: name_tok.text.clone(),
                impl_type,
                has_self: fn_has_self(tokens, i),
                body_start,
                body_end,
                line: name_tok.line,
            });
        }
    }
    out
}

/// For each file: the innermost function containing each token index.
/// Returns `None` for tokens outside any function body (consts, types).
pub fn innermost_fn(funcs_in_file: &[&Func], tok: usize) -> Option<usize> {
    funcs_in_file
        .iter()
        .filter(|f| f.body_start < tok && tok < f.body_end)
        .max_by_key(|f| f.body_start)
        .map(|f| f.id)
}

struct ImplSpan {
    body_start: usize,
    body_end: usize,
    type_name: String,
}

/// `impl` blocks in statement position, with the implemented type's final
/// path segment (`impl fmt::Display for Config` → `Config`).
fn impl_spans(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("impl") {
            continue;
        }
        // Statement position only — skips `-> impl Iterator` and generic
        // bounds, which sit mid-expression.
        let stmt = match i.checked_sub(1).map(|p| &tokens[p]) {
            None => true,
            Some(p) => p.is_punct(';') || p.is_punct('{') || p.is_punct('}') || p.is_punct(']'),
        };
        if !stmt {
            continue;
        }
        let depth = tokens[i].depth;
        // Walk the header: track the last type identifier outside angle
        // brackets, stopping at the body brace or a `where` clause.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut type_name = String::new();
        let mut in_where = false;
        let body_start = loop {
            let Some(t) = tokens.get(j) else {
                break None;
            };
            match t.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') if t.depth == depth + 1 => break Some(j),
                TokenKind::Punct(';') if t.depth == depth => break None,
                TokenKind::Ident if angle == 0 => {
                    if t.text == "where" {
                        in_where = true;
                    } else if !in_where && t.text != "for" {
                        type_name = t.text.clone();
                    }
                }
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            continue;
        };
        let Some(body_end) = matching_brace(tokens, body_start) else {
            continue;
        };
        out.push(ImplSpan {
            body_start,
            body_end,
            type_name,
        });
    }
    out
}

/// Body span of the `fn` at token `fn_tok`: the first `{` one level
/// deeper, unless a `;` at the same depth ends a bodyless declaration.
fn fn_body(tokens: &[Token], fn_tok: usize) -> Option<(usize, usize)> {
    let depth = tokens[fn_tok].depth;
    let mut j = fn_tok + 2;
    let body_start = loop {
        let t = tokens.get(j)?;
        if t.is_punct('{') && t.depth == depth + 1 {
            break j;
        }
        if t.is_punct(';') && t.depth == depth {
            return None;
        }
        j += 1;
    };
    let body_end = matching_brace(tokens, body_start)?;
    Some((body_start, body_end))
}

/// Whether the function's first parameter is `self` (any of `self`,
/// `&self`, `&mut self`, `&'a self`, `mut self`).
fn fn_has_self(tokens: &[Token], fn_tok: usize) -> bool {
    // Find the parameter list `(`, skipping a generics block.
    let mut j = fn_tok + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 1i32;
        loop {
            j += 1;
            match tokens.get(j) {
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                Some(_) => {}
                None => return false,
            }
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    j += 1;
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
    {
        j += 1;
    }
    tokens.get(j).is_some_and(|t| t.is_ident("self"))
}

/// Index of the `}` matching the `{` at `open` (same depth, first one
/// after — the tokenizer assigns both braces the inner depth).
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let depth = tokens[open].depth;
    tokens[open + 1..]
        .iter()
        .position(|t| t.is_punct('}') && t.depth == depth)
        .map(|off| open + 1 + off)
}

/// Skips a `<…>` angle-bracket group starting at `open`; returns the
/// index just past the closing `>`.
pub fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut j = open;
    loop {
        let t = tokens.get(j)?;
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                angle -= 1;
                if angle == 0 {
                    return Some(j + 1);
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct('{') => return None,
            _ => {}
        }
        j += 1;
    }
}
