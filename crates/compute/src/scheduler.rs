//! The virtual-time task scheduler.
//!
//! Given the measured CPU cost of each task in a job, the scheduler places
//! tasks on worker nodes (longest-task-first onto the least-loaded worker —
//! the classic LPT heuristic) and reports the job's virtual makespan under
//! a simple, explicit cost model.

use athena_types::SimDuration;

/// The scheduler's cost-model knobs.
///
/// Defaults are loosely calibrated to Spark-on-a-LAN magnitudes: a few
/// milliseconds to launch a task, tens of milliseconds of driver work per
/// job, and a small per-job serial fraction that caps speedup (this is what
/// makes 6 nodes land near the paper's 27.6 % of 1-node time instead of an
/// ideal 16.7 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Fixed driver-side cost per job (DAG scheduling, result handling).
    pub job_overhead: SimDuration,
    /// Cost to launch each task on a worker.
    pub task_overhead: SimDuration,
    /// Fraction of total task time that must run serially on the driver
    /// (result merging, broadcast). In `[0, 1)`.
    pub serial_fraction: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Calibrated against the paper's Figure 10: with a 0.15 serial
        // fraction, a 6-node job completes in (0.15 + 1/6)/(1.15) ≈ 27.6%
        // of the 1-node time — exactly the ratio the paper reports for
        // its Spark cluster once driver-side result handling is included.
        SchedulerConfig {
            job_overhead: SimDuration::from_millis(10),
            task_overhead: SimDuration::from_millis(1),
            serial_fraction: 0.15,
        }
    }
}

/// Computes virtual makespans for jobs.
///
/// # Examples
///
/// ```
/// use athena_compute::{SchedulerConfig, VirtualScheduler};
/// use athena_types::SimDuration;
///
/// let sched = VirtualScheduler::new(4, SchedulerConfig::default());
/// let tasks = vec![SimDuration::from_millis(100); 8];
/// let one = VirtualScheduler::new(1, SchedulerConfig::default()).makespan(&tasks);
/// let four = sched.makespan(&tasks);
/// assert!(four < one);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualScheduler {
    workers: usize,
    config: SchedulerConfig,
}

impl VirtualScheduler {
    /// Creates a scheduler for `workers` nodes (at least 1).
    pub fn new(workers: usize, config: SchedulerConfig) -> Self {
        VirtualScheduler {
            workers: workers.max(1),
            config,
        }
    }

    /// Number of worker nodes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The cost model.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// The virtual completion time of a job with the given per-task costs.
    ///
    /// `makespan = job_overhead + serial_part + parallel makespan(LPT)`,
    /// where each task additionally pays `task_overhead` and
    /// `serial_part = serial_fraction × Σ task time`.
    pub fn makespan(&self, task_costs: &[SimDuration]) -> SimDuration {
        if task_costs.is_empty() {
            return self.config.job_overhead;
        }
        let total: u64 = task_costs.iter().map(|d| d.as_micros()).sum();
        let serial = (total as f64 * self.config.serial_fraction) as u64;

        // LPT: sort descending, place each task on the least-loaded worker.
        let mut costs: Vec<u64> = task_costs
            .iter()
            .map(|d| d.as_micros() + self.config.task_overhead.as_micros())
            .collect();
        costs.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; self.workers];
        for c in costs {
            let min = loads.iter_mut().min().expect("at least one worker");
            *min += c;
        }
        let parallel = loads.into_iter().max().unwrap_or(0);
        self.config.job_overhead + SimDuration::from_micros(serial + parallel)
    }

    /// The per-worker loads (for inspection), after LPT placement.
    pub fn worker_loads(&self, task_costs: &[SimDuration]) -> Vec<SimDuration> {
        let mut costs: Vec<u64> = task_costs
            .iter()
            .map(|d| d.as_micros() + self.config.task_overhead.as_micros())
            .collect();
        costs.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; self.workers];
        for c in costs {
            let min = loads.iter_mut().min().expect("at least one worker");
            *min += c;
        }
        loads.into_iter().map(SimDuration::from_micros).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig {
            job_overhead: SimDuration::from_millis(10),
            task_overhead: SimDuration::from_millis(1),
            serial_fraction: 0.1,
        }
    }

    #[test]
    fn empty_job_costs_only_overhead() {
        let s = VirtualScheduler::new(4, cfg());
        assert_eq!(s.makespan(&[]), SimDuration::from_millis(10));
    }

    #[test]
    fn makespan_decreases_with_workers() {
        let tasks = vec![SimDuration::from_millis(50); 12];
        let mut last = SimDuration::from_secs(10_000);
        for w in 1..=6 {
            let m = VirtualScheduler::new(w, cfg()).makespan(&tasks);
            assert!(m <= last, "{w} workers: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn serial_fraction_caps_speedup() {
        let tasks = vec![SimDuration::from_millis(100); 60];
        let one = VirtualScheduler::new(1, cfg()).makespan(&tasks);
        let many = VirtualScheduler::new(60, cfg()).makespan(&tasks);
        // With a 10% serial fraction, 60 workers cannot be 60x faster.
        let speedup = one.as_secs_f64() / many.as_secs_f64();
        assert!(speedup < 10.0, "speedup {speedup}");
        assert!(speedup > 4.0, "speedup {speedup}");
    }

    #[test]
    fn lpt_balances_uneven_tasks() {
        let tasks = [
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
        ];
        let s = VirtualScheduler::new(2, cfg());
        let loads = s.worker_loads(&tasks);
        // Big task alone on one worker; three small ones on the other.
        let max = loads.iter().max().unwrap();
        assert_eq!(*max, SimDuration::from_millis(101));
    }

    #[test]
    fn workers_clamped_to_one() {
        let s = VirtualScheduler::new(0, cfg());
        assert_eq!(s.workers(), 1);
    }

    #[test]
    fn single_worker_makespan_is_total_plus_overheads() {
        let tasks = vec![SimDuration::from_millis(20); 5];
        let s = VirtualScheduler::new(1, cfg());
        // 5*20ms tasks + 5*1ms task overhead + 10ms serial + 10ms job.
        assert_eq!(s.makespan(&tasks), SimDuration::from_millis(125));
    }
}
