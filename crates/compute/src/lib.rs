//! A partitioned compute cluster with virtual-time scheduling.
//!
//! The Athena paper runs its machine-learning jobs on a Spark cluster of up
//! to six compute nodes and measures how total testing time falls as nodes
//! are added (Figure 10). This crate is the from-scratch substitute:
//!
//! - [`Dataset`] — a partitioned collection with Spark-like
//!   transformations (`map`, `filter`, `map_partitions`) and actions
//!   (`reduce`, `fold`, `count`, `collect`) ([`dataset`] module),
//! - [`ComputeCluster`] — a cluster of N worker nodes ([`cluster`] module),
//! - [`VirtualScheduler`] — the timing model ([`scheduler`] module).
//!
//! # The virtual-time model
//!
//! The reproduction host has a single CPU core, so real threads cannot
//! demonstrate a 1→6-node speedup. Instead, every per-partition task runs
//! for real (results are exact) while its CPU cost is *measured*; the
//! scheduler then computes the job's virtual makespan: tasks are placed on
//! the least-loaded worker (longest-task-first), each task pays a
//! scheduling overhead, and the job pays a fixed driver overhead. This
//! reproduces the paper's shape — a linear decrease with a serial fraction,
//! so six nodes land near the paper's 27.6 % of single-node time rather
//! than an ideal 16.7 %.
//!
//! # Examples
//!
//! ```
//! use athena_compute::ComputeCluster;
//!
//! let cluster = ComputeCluster::new(4);
//! let data = cluster.parallelize((0..1000u64).collect::<Vec<_>>(), 16);
//! let sum = data.map(|x| x * 2).fold(0u64, |a, x| a + x, |a, b| a + b);
//! assert_eq!(sum, 999 * 1000);
//! assert!(cluster.total_virtual_time().as_micros() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod cluster;
pub mod dataset;
pub mod scheduler;

pub use cluster::{ComputeCluster, JobMetrics};
pub use dataset::Dataset;
pub use scheduler::{SchedulerConfig, VirtualScheduler};
