//! The compute cluster: worker pool, job accounting, metrics.

use crate::dataset::Dataset;
use crate::scheduler::{SchedulerConfig, VirtualScheduler};
use athena_observe::Observe;
use athena_telemetry::{names, Counter, Histogram, Telemetry};
use athena_types::sentinel::{TrackedMutex, TrackedRwLock};
use athena_types::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Metrics for one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Sequential job number.
    pub job_id: u64,
    /// A label describing the job (e.g. `"map"`, `"kmeans-iter"`).
    pub label: String,
    /// Number of tasks (one per partition).
    pub tasks: usize,
    /// Sum of measured task CPU time.
    pub total_task_time: SimDuration,
    /// The job's virtual completion time under the cluster's scheduler.
    pub virtual_time: SimDuration,
}

#[derive(Debug)]
pub(crate) struct ClusterInner {
    pub(crate) scheduler: VirtualScheduler,
    job_counter: AtomicU64,
    virtual_micros: AtomicU64,
    jobs: TrackedMutex<Vec<JobMetrics>>,
    tel: TrackedRwLock<ComputeTelemetry>,
}

/// The cluster's telemetry instruments (detached until
/// [`ComputeCluster::bind_telemetry`]).
#[derive(Debug, Default)]
struct ComputeTelemetry {
    task_ns: Histogram,
    job_ns: Histogram,
    tasks: Counter,
    /// Kept for the per-job virtual-time trace events.
    handle: Option<Telemetry>,
    observe: Observe,
}

/// A compute cluster of N worker nodes.
///
/// Cloning yields another handle to the same cluster; all virtual-time
/// accounting is shared.
///
/// # Examples
///
/// ```
/// use athena_compute::ComputeCluster;
///
/// let cluster = ComputeCluster::new(6);
/// let ds = cluster.parallelize((0..100).collect::<Vec<i64>>(), 12);
/// assert_eq!(ds.count(), 100);
/// assert_eq!(cluster.workers(), 6);
/// assert_eq!(cluster.job_count(), 1); // count() ran one job
/// ```
#[derive(Debug, Clone)]
pub struct ComputeCluster {
    pub(crate) inner: Arc<ClusterInner>,
}

impl ComputeCluster {
    /// Creates a cluster with `workers` nodes and the default cost model.
    pub fn new(workers: usize) -> Self {
        Self::with_config(workers, SchedulerConfig::default())
    }

    /// Creates a cluster with an explicit scheduler cost model.
    pub fn with_config(workers: usize, config: SchedulerConfig) -> Self {
        ComputeCluster {
            inner: Arc::new(ClusterInner {
                scheduler: VirtualScheduler::new(workers, config),
                job_counter: AtomicU64::new(0),
                virtual_micros: AtomicU64::new(0),
                jobs: TrackedMutex::new("compute/jobs", Vec::new()),
                tel: TrackedRwLock::new("compute/tel", ComputeTelemetry::default()),
            }),
        }
    }

    /// Routes task/job dispatch latencies into `tel` for every handle
    /// cloned from this cluster. Each completed job also emits a trace
    /// event stamped with the cluster's cumulative virtual time.
    pub fn bind_telemetry(&self, tel: &Telemetry) {
        let m = tel.metrics();
        let sub = names::compute::SUBSYSTEM;
        // Rebuild wholesale but keep any already-bound observe handle.
        let observe = self.inner.tel.read().observe.clone();
        *self.inner.tel.write() = ComputeTelemetry {
            task_ns: m.histogram(sub, names::compute::TASK_NS),
            job_ns: m.histogram(sub, names::compute::JOB_NS),
            tasks: m.counter(sub, names::compute::TASKS),
            handle: Some(tel.clone()),
            observe,
        };
    }

    /// Routes causal spans (the compute-job leg of a trace) into `obs`
    /// for every handle cloned from this cluster. Spans are opened and
    /// closed on the submitting thread only — pool workers record
    /// nothing causal, so the trace stream is thread-count-invariant.
    pub fn bind_observe(&self, obs: &Observe) {
        self.inner.tel.write().observe = obs.clone();
    }

    /// Number of worker nodes.
    pub fn workers(&self) -> usize {
        self.inner.scheduler.workers()
    }

    /// Distributes a vector into a dataset with `partitions` partitions.
    pub fn parallelize<T>(&self, data: Vec<T>, partitions: usize) -> Dataset<T> {
        Dataset::from_vec(self.clone(), data, partitions)
    }

    /// Creates a dataset from pre-built partitions.
    pub fn from_partitions<T>(&self, partitions: Vec<Vec<T>>) -> Dataset<T> {
        Dataset::from_partitions(self.clone(), partitions)
    }

    /// Total virtual time consumed by all jobs so far.
    pub fn total_virtual_time(&self) -> SimDuration {
        SimDuration::from_micros(self.inner.virtual_micros.load(Ordering::Relaxed))
    }

    /// Number of jobs executed.
    pub fn job_count(&self) -> u64 {
        self.inner.job_counter.load(Ordering::Relaxed)
    }

    /// Metrics of every executed job, in execution order.
    pub fn job_metrics(&self) -> Vec<JobMetrics> {
        self.inner.jobs.lock().clone()
    }

    /// Resets the virtual clock and job log (the worker count and cost
    /// model are kept). Used between benchmark repetitions.
    pub fn reset_accounting(&self) {
        self.inner.virtual_micros.store(0, Ordering::Relaxed);
        self.inner.job_counter.store(0, Ordering::Relaxed);
        self.inner.jobs.lock().clear();
    }

    /// Runs a job: executes `task` over each partition (for real, in
    /// parallel on the `athena-parallel` pool at the `ATHENA_THREADS`
    /// width), measures each task's CPU cost, and charges the virtual
    /// makespan.
    ///
    /// Results come back in partition order (the pool's ordered
    /// reduction), so output is byte-identical at any thread count.
    pub(crate) fn run_job<P, R>(
        &self,
        label: &str,
        partitions: &Arc<Vec<P>>,
        task: impl Fn(&P) -> R + Send + Sync + 'static,
    ) -> Vec<R>
    where
        P: Send + Sync + 'static,
        R: Send + 'static,
    {
        // Instruments are cloned out of a short-lived guard so the jobs
        // log below is never locked while `tel` is held.
        let tel = {
            let guard = self.inner.tel.read();
            ComputeTelemetry {
                task_ns: guard.task_ns.clone(),
                job_ns: guard.job_ns.clone(),
                tasks: guard.tasks.clone(),
                handle: guard.handle.clone(),
                observe: guard.observe.clone(),
            }
        };
        let span = tel.observe.span("compute", "job");
        let job_timer = tel.job_ns.start_timer();
        let parts = Arc::clone(partitions);
        let task_hist = tel.task_ns.clone();
        let timed = athena_parallel::par_map_indexed(parts.len(), move |i| {
            let start = Instant::now();
            let r = task(&parts[i]);
            let elapsed = start.elapsed();
            task_hist.record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            (SimDuration::from_micros(elapsed.as_micros() as u64), r)
        });
        let mut results = Vec::with_capacity(timed.len());
        let mut costs = Vec::with_capacity(timed.len());
        for (cost, r) in timed {
            costs.push(cost);
            results.push(r);
        }
        tel.tasks.add(costs.len() as u64);
        let virtual_time = self.inner.scheduler.makespan(&costs);
        let job_id = self.inner.job_counter.fetch_add(1, Ordering::Relaxed);
        let virtual_total = self
            .inner
            .virtual_micros
            .fetch_add(virtual_time.as_micros(), Ordering::Relaxed)
            + virtual_time.as_micros();
        self.inner.jobs.lock().push(JobMetrics {
            job_id,
            label: label.to_owned(),
            tasks: partitions.len(),
            total_task_time: SimDuration::from_micros(costs.iter().map(|d| d.as_micros()).sum()),
            virtual_time,
        });
        job_timer.observe(&tel.job_ns);
        if let Some(handle) = &tel.handle {
            // Stamp the job at the cluster's cumulative virtual time so
            // traces line compute work up against the simulation clock.
            handle.tracer().event(
                "compute",
                "job",
                SimTime::from_micros(virtual_total),
                format!("{label}: {} tasks", partitions.len()),
            );
        }
        span.finish(format!("{label}: {} tasks", partitions.len()));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_accumulate_virtual_time() {
        let c = ComputeCluster::new(3);
        let ds = c.parallelize((0..50u32).collect(), 6);
        let _ = ds.count();
        // map is itself a job, then count is another.
        let _ = ds.map(|x| x + 1).count();
        assert_eq!(c.job_count(), 3);
        assert!(c.total_virtual_time().as_micros() > 0);
        let metrics = c.job_metrics();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].tasks, 6);
    }

    #[test]
    fn reset_accounting_clears_log() {
        let c = ComputeCluster::new(2);
        let _ = c.parallelize(vec![1, 2, 3], 2).count();
        c.reset_accounting();
        assert_eq!(c.job_count(), 0);
        assert_eq!(c.total_virtual_time(), SimDuration::ZERO);
        assert!(c.job_metrics().is_empty());
    }

    #[test]
    fn telemetry_counts_tasks_and_traces_jobs() {
        let tel = Telemetry::new();
        let c = ComputeCluster::new(3);
        c.bind_telemetry(&tel);
        let _ = c.parallelize((0..50u32).collect(), 6).count();
        let m = tel.metrics();
        assert_eq!(m.counter("compute", "tasks").get(), 6);
        assert_eq!(m.histogram("compute", "task_ns").snapshot().count, 6);
        assert_eq!(m.histogram("compute", "job_ns").snapshot().count, 1);
        let events = tel.tracer().entries();
        assert!(events
            .iter()
            .any(|e| e.subsystem == "compute" && e.name == "job" && e.detail.contains("6 tasks")));
    }

    #[test]
    fn handles_share_accounting() {
        let c = ComputeCluster::new(2);
        let c2 = c.clone();
        let _ = c.parallelize(vec![1], 1).count();
        assert_eq!(c2.job_count(), 1);
    }
}
