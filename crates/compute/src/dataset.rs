//! Partitioned datasets with Spark-like transformations and actions.

use crate::cluster::ComputeCluster;
use std::sync::Arc;

/// A partitioned, immutable collection bound to a [`ComputeCluster`].
///
/// Transformations (`map`, `filter`, `map_partitions`) and actions
/// (`reduce`, `fold`, `count`, `collect`) each run one cluster job; every
/// partition is one task. Partitions are shared (`Arc`) so chained
/// transformations do not copy input data.
///
/// # Examples
///
/// ```
/// use athena_compute::ComputeCluster;
///
/// let cluster = ComputeCluster::new(4);
/// let evens = cluster
///     .parallelize((0..100i64).collect::<Vec<_>>(), 8)
///     .filter(|x| x % 2 == 0);
/// assert_eq!(evens.count(), 50);
/// let max = evens.reduce(|a, b| if a > b { a } else { b });
/// assert_eq!(max, Some(98));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset<T> {
    cluster: ComputeCluster,
    partitions: Arc<Vec<Vec<T>>>,
}

impl<T> Dataset<T> {
    /// Splits `data` into `partitions` roughly equal chunks.
    pub(crate) fn from_vec(cluster: ComputeCluster, data: Vec<T>, partitions: usize) -> Self {
        let p = partitions.max(1);
        let n = data.len();
        let chunk = n.div_ceil(p).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut it = data.into_iter();
        loop {
            let part: Vec<T> = it.by_ref().take(chunk).collect();
            if part.is_empty() {
                break;
            }
            parts.push(part);
        }
        if parts.is_empty() {
            parts.push(Vec::new());
        }
        Dataset {
            cluster,
            partitions: Arc::new(parts),
        }
    }

    /// Wraps pre-built partitions.
    pub(crate) fn from_partitions(cluster: ComputeCluster, partitions: Vec<Vec<T>>) -> Self {
        let partitions = if partitions.is_empty() {
            vec![Vec::new()]
        } else {
            partitions
        };
        Dataset {
            cluster,
            partitions: Arc::new(partitions),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The cluster this dataset is bound to.
    pub fn cluster(&self) -> &ComputeCluster {
        &self.cluster
    }

    /// Total number of elements (without running a job).
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the dataset holds no elements.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(Vec::is_empty)
    }
}

impl<T: Clone + Send + Sync + 'static> Dataset<T> {
    /// Applies `f` to every element (one job, one task per partition).
    pub fn map<U: Send + 'static>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        let parts = self
            .cluster
            .run_job("map", &self.partitions, move |p: &Vec<T>| {
                p.iter().map(&f).collect::<Vec<U>>()
            });
        Dataset::from_partitions(self.cluster.clone(), parts)
    }

    /// Keeps elements satisfying `f`.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        let parts = self
            .cluster
            .run_job("filter", &self.partitions, move |p: &Vec<T>| {
                p.iter().filter(|x| f(x)).cloned().collect::<Vec<T>>()
            });
        Dataset::from_partitions(self.cluster.clone(), parts)
    }

    /// Applies `f` to whole partitions (the workhorse for per-partition
    /// aggregation in ML algorithms).
    pub fn map_partitions<U: Send + 'static>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let parts = self
            .cluster
            .run_job("map_partitions", &self.partitions, move |p: &Vec<T>| f(p));
        Dataset::from_partitions(self.cluster.clone(), parts)
    }

    /// Combines all elements with `f` (associative).
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let partials = self
            .cluster
            .run_job("reduce", &self.partitions, move |p: &Vec<T>| {
                p.iter().cloned().reduce(&*g)
            });
        partials.into_iter().flatten().reduce(&*f)
    }

    /// Spark's `aggregate`: per-partition fold with `seq`, then a driver
    /// combine with `comb`. The driver combine runs in partition order,
    /// so the result is byte-identical at any thread count.
    pub fn fold<A>(
        &self,
        init: A,
        seq: impl Fn(A, &T) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A,
    ) -> A
    where
        A: Clone + Send + Sync + 'static,
    {
        let seed = init.clone();
        let partials = self
            .cluster
            .run_job("fold", &self.partitions, move |p: &Vec<T>| {
                p.iter().fold(seed.clone(), &seq)
            });
        partials.into_iter().fold(init, comb)
    }

    /// Counts elements (as a job, so it is charged virtual time).
    pub fn count(&self) -> usize {
        let partials = self
            .cluster
            .run_job("count", &self.partitions, |p: &Vec<T>| p.len());
        partials.into_iter().sum()
    }

    /// Gathers every element to the driver.
    pub fn collect(&self) -> Vec<T> {
        let parts = self
            .cluster
            .run_job("collect", &self.partitions, |p: &Vec<T>| p.clone());
        parts.into_iter().flatten().collect()
    }

    /// Repartitions into `n` chunks (a shuffle).
    pub fn repartition(&self, n: usize) -> Dataset<T> {
        let all: Vec<T> = self.collect();
        Dataset::from_vec(self.cluster.clone(), all, n)
    }

    /// Deterministically samples roughly `fraction` of the elements
    /// (every k-th element), mirroring Athena's `Sampling` preprocessor.
    pub fn sample(&self, fraction: f64) -> Dataset<T> {
        let fraction = fraction.clamp(0.0, 1.0);
        if fraction >= 1.0 {
            return self.clone();
        }
        if fraction <= 0.0 {
            return Dataset::from_partitions(self.cluster.clone(), vec![Vec::new()]);
        }
        let keep_every = (1.0 / fraction).round().max(1.0) as usize;
        let parts = self
            .cluster
            .run_job("sample", &self.partitions, move |p: &Vec<T>| {
                p.iter().step_by(keep_every).cloned().collect::<Vec<T>>()
            });
        Dataset::from_partitions(self.cluster.clone(), parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ComputeCluster {
        ComputeCluster::new(3)
    }

    #[test]
    fn partitioning_is_balanced_and_complete() {
        let ds = cluster().parallelize((0..103i32).collect(), 10);
        assert_eq!(ds.num_partitions(), 10);
        assert_eq!(ds.len(), 103);
        let mut all = ds.collect();
        all.sort();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dataset_has_one_empty_partition() {
        let ds = cluster().parallelize(Vec::<i32>::new(), 4);
        assert_eq!(ds.num_partitions(), 1);
        assert!(ds.is_empty());
        assert_eq!(ds.count(), 0);
        assert_eq!(ds.reduce(|a, _| a), None);
    }

    #[test]
    fn map_filter_chain() {
        let ds = cluster().parallelize((1..=10i64).collect(), 3);
        let out = ds.map(|x| x * x).filter(|x| x % 2 == 1);
        let mut v = out.collect();
        v.sort();
        assert_eq!(v, vec![1, 9, 25, 49, 81]);
    }

    #[test]
    fn fold_matches_serial_fold() {
        let data: Vec<i64> = (0..1000).collect();
        let expect: i64 = data.iter().sum();
        let ds = cluster().parallelize(data, 7);
        let sum = ds.fold(0i64, |a, x| a + x, |a, b| a + b);
        assert_eq!(sum, expect);
    }

    #[test]
    fn reduce_over_multiple_partitions() {
        let ds = cluster().parallelize(vec![5, 3, 9, 1, 7, 2], 3);
        assert_eq!(ds.reduce(std::cmp::max), Some(9));
    }

    #[test]
    fn map_partitions_sees_whole_partitions() {
        let ds = cluster().parallelize((0..12i32).collect(), 4);
        let sizes = ds.map_partitions(|p| vec![p.len()]);
        let total: usize = sizes.collect().into_iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn sample_keeps_roughly_the_fraction() {
        let ds = cluster().parallelize((0..1000i32).collect(), 5);
        let s = ds.sample(0.2);
        let n = s.count();
        assert!((150..=250).contains(&n), "sampled {n}");
        assert_eq!(ds.sample(1.0).len(), 1000);
        assert_eq!(ds.sample(0.0).len(), 0);
    }

    #[test]
    fn repartition_preserves_elements() {
        let ds = cluster().parallelize((0..50i32).collect(), 2);
        let r = ds.repartition(9);
        assert_eq!(r.num_partitions(), 9);
        let mut v = r.collect();
        v.sort();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }
}
