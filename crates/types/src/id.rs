//! Newtyped identifiers for every entity in the SDN stack.
//!
//! Using distinct types for datapath ids, ports, hosts, links, controllers,
//! applications, flows, and OpenFlow transaction ids prevents a whole class
//! of unit-confusion bugs (e.g. passing a port number where a switch id is
//! expected) at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An OpenFlow datapath identifier (the unique id of a switch).
///
/// Displayed in the conventional `of:%016x` form used by ONOS.
///
/// # Examples
///
/// ```
/// use athena_types::Dpid;
/// let dpid = Dpid::new(0x2a);
/// assert_eq!(dpid.to_string(), "of:000000000000002a");
/// assert_eq!(dpid.raw(), 0x2a);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Dpid(u64);

impl Dpid {
    /// Creates a datapath id from its raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Dpid(raw)
    }

    /// Returns the raw 64-bit datapath id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Dpid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "of:{:016x}", self.0)
    }
}

impl From<u64> for Dpid {
    fn from(raw: u64) -> Self {
        Dpid(raw)
    }
}

/// A switch port number.
///
/// Port numbers are scoped to a switch: `(Dpid, PortNo)` identifies a
/// physical port in the network. Reserved values mirror OpenFlow's special
/// ports.
///
/// # Examples
///
/// ```
/// use athena_types::PortNo;
/// assert!(PortNo::new(3).is_physical());
/// assert!(!PortNo::CONTROLLER.is_physical());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PortNo(u32);

impl PortNo {
    /// The reserved port meaning "send to the controller".
    pub const CONTROLLER: PortNo = PortNo(0xffff_fffd);
    /// The reserved port meaning "flood out of all ports".
    pub const FLOOD: PortNo = PortNo(0xffff_fffb);
    /// The reserved port meaning "the port the packet came in on".
    pub const IN_PORT: PortNo = PortNo(0xffff_fff8);
    /// The reserved "any/none" wildcard port.
    pub const ANY: PortNo = PortNo(0xffff_ffff);

    /// Creates a port number from its raw value.
    pub const fn new(raw: u32) -> Self {
        PortNo(raw)
    }

    /// Returns the raw port number.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is a physical (non-reserved) port.
    pub const fn is_physical(self) -> bool {
        self.0 < 0xffff_ff00 && self.0 > 0
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::FLOOD => write!(f, "FLOOD"),
            PortNo::IN_PORT => write!(f, "IN_PORT"),
            PortNo::ANY => write!(f, "ANY"),
            PortNo(n) => write!(f, "{n}"),
        }
    }
}

impl From<u32> for PortNo {
    fn from(raw: u32) -> Self {
        PortNo(raw)
    }
}

/// Identifier of an end host attached to the data plane.
///
/// # Examples
///
/// ```
/// use athena_types::HostId;
/// assert_eq!(HostId::new(7).to_string(), "h7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(u64);

impl HostId {
    /// Creates a host id from its raw value.
    pub const fn new(raw: u64) -> Self {
        HostId(raw)
    }

    /// Returns the raw host id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifier of a unidirectional link between two switch ports.
///
/// A [`LinkId`] names the link as `(src switch, src port) -> (dst switch,
/// dst port)`.
///
/// # Examples
///
/// ```
/// use athena_types::{Dpid, LinkId, PortNo};
/// let l = LinkId::new(Dpid::new(1), PortNo::new(2), Dpid::new(3), PortNo::new(1));
/// assert_eq!(l.reversed().src, Dpid::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId {
    /// The switch at the source end of the link.
    pub src: Dpid,
    /// The egress port on the source switch.
    pub src_port: PortNo,
    /// The switch at the destination end of the link.
    pub dst: Dpid,
    /// The ingress port on the destination switch.
    pub dst_port: PortNo,
}

impl LinkId {
    /// Creates a link id from its four endpoints.
    pub const fn new(src: Dpid, src_port: PortNo, dst: Dpid, dst_port: PortNo) -> Self {
        LinkId {
            src,
            src_port,
            dst,
            dst_port,
        }
    }

    /// Returns the same link in the opposite direction.
    pub const fn reversed(self) -> Self {
        LinkId {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} -> {}/{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// Identifier of a controller instance in the distributed control plane.
///
/// # Examples
///
/// ```
/// use athena_types::ControllerId;
/// assert_eq!(ControllerId::new(0).to_string(), "ctrl-0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ControllerId(u32);

impl ControllerId {
    /// Creates a controller id from its raw value.
    pub const fn new(raw: u32) -> Self {
        ControllerId(raw)
    }

    /// Returns the raw controller id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ControllerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctrl-{}", self.0)
    }
}

/// Identifier of a network application registered with the controller.
///
/// The paper's NAE use case aggregates features *per application*; flow
/// rules are attributed to the [`AppId`] that installed them.
///
/// # Examples
///
/// ```
/// use athena_types::AppId;
/// assert_eq!(AppId::new(2).to_string(), "app-2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(u32);

impl AppId {
    /// The controller's own core services (device/host/link discovery).
    pub const CORE: AppId = AppId(0);

    /// Creates an application id from its raw value.
    pub const fn new(raw: u32) -> Self {
        AppId(raw)
    }

    /// Returns the raw application id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app-{}", self.0)
    }
}

/// Identifier of a flow (a flow-table entry instance) inside the simulator.
///
/// # Examples
///
/// ```
/// use athena_types::FlowId;
/// assert_eq!(FlowId::new(9).raw(), 9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(u64);

impl FlowId {
    /// Creates a flow id from its raw value.
    pub const fn new(raw: u64) -> Self {
        FlowId(raw)
    }

    /// Returns the raw flow id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// An OpenFlow transaction id.
///
/// The paper's prototype *marks* the XIDs of the statistics requests Athena
/// issues so that variation features can be attributed to Athena's own
/// polling rather than ONOS's background polling. [`Xid::is_athena_marked`]
/// reproduces that mechanism.
///
/// # Examples
///
/// ```
/// use athena_types::Xid;
/// let xid = Xid::athena_marked(17);
/// assert!(xid.is_athena_marked());
/// assert!(!Xid::new(17).is_athena_marked());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Xid(u32);

impl Xid {
    /// The high bit used to mark Athena-issued statistics requests.
    pub const ATHENA_MARK: u32 = 0x8000_0000;

    /// Creates an unmarked transaction id.
    pub const fn new(raw: u32) -> Self {
        Xid(raw)
    }

    /// Creates a transaction id carrying the Athena mark.
    pub const fn athena_marked(seq: u32) -> Self {
        Xid(seq | Self::ATHENA_MARK)
    }

    /// Returns the raw 32-bit transaction id (including any mark).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if this XID was issued by Athena's stats poller.
    pub const fn is_athena_marked(self) -> bool {
        self.0 & Self::ATHENA_MARK != 0
    }

    /// The largest raw value an *unmarked* XID can carry: everything at
    /// or above [`Xid::ATHENA_MARK`] has the mark bit set.
    pub const MAX_UNMARKED: u32 = Self::ATHENA_MARK - 1;

    /// The unmarked sequence value following `seq`, wrapping from
    /// [`Xid::MAX_UNMARKED`] back to 1 so an ordinary issuer (e.g. the
    /// controller's background stats poller) never collides with the
    /// Athena-marked range and never emits the reserved value 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use athena_types::Xid;
    /// assert_eq!(Xid::next_unmarked(1), 2);
    /// assert_eq!(Xid::next_unmarked(Xid::MAX_UNMARKED), 1);
    /// assert!(!Xid::new(Xid::next_unmarked(u32::MAX)).is_athena_marked());
    /// ```
    pub const fn next_unmarked(seq: u32) -> u32 {
        if seq >= Self::MAX_UNMARKED {
            1
        } else {
            seq + 1
        }
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid:{:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpid_display_uses_onos_form() {
        assert_eq!(Dpid::new(0xff).to_string(), "of:00000000000000ff");
    }

    #[test]
    fn dpid_roundtrips_raw() {
        assert_eq!(Dpid::from(42u64).raw(), 42);
    }

    #[test]
    fn reserved_ports_are_not_physical() {
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::FLOOD.is_physical());
        assert!(!PortNo::ANY.is_physical());
        assert!(!PortNo::new(0).is_physical());
        assert!(PortNo::new(1).is_physical());
    }

    #[test]
    fn reserved_port_display_names() {
        assert_eq!(PortNo::CONTROLLER.to_string(), "CONTROLLER");
        assert_eq!(PortNo::FLOOD.to_string(), "FLOOD");
        assert_eq!(PortNo::new(7).to_string(), "7");
    }

    #[test]
    fn link_reversal_is_involutive() {
        let l = LinkId::new(Dpid::new(1), PortNo::new(2), Dpid::new(3), PortNo::new(4));
        assert_eq!(l.reversed().reversed(), l);
        assert_eq!(l.reversed().src_port, PortNo::new(4));
    }

    #[test]
    fn xid_marking() {
        let marked = Xid::athena_marked(5);
        assert!(marked.is_athena_marked());
        assert_eq!(marked.raw() & !Xid::ATHENA_MARK, 5);
        assert!(!Xid::new(5).is_athena_marked());
    }

    #[test]
    fn next_unmarked_wraps_below_the_mark() {
        assert_eq!(Xid::next_unmarked(5), 6);
        assert_eq!(Xid::next_unmarked(Xid::MAX_UNMARKED), 1);
        assert_eq!(Xid::next_unmarked(Xid::MAX_UNMARKED - 1), Xid::MAX_UNMARKED);
        // Out-of-range inputs (already marked) are pulled back into range.
        assert_eq!(Xid::next_unmarked(u32::MAX), 1);
        assert!(!Xid::new(Xid::next_unmarked(Xid::ATHENA_MARK)).is_athena_marked());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Dpid> = [3u64, 1, 2].into_iter().map(Dpid::new).collect();
        let v: Vec<u64> = set.into_iter().map(Dpid::raw).collect();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn serde_roundtrip() {
        let l = LinkId::new(Dpid::new(1), PortNo::new(2), Dpid::new(3), PortNo::new(4));
        let json = serde_json::to_string(&l).unwrap();
        let back: LinkId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }
}
