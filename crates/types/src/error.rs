//! The shared error type for the Athena workspace.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results carrying an [`AthenaError`].
pub type Result<T> = std::result::Result<T, AthenaError>;

/// The error type returned by fallible operations across the Athena stack.
///
/// Variants map to the subsystem that produced them, so callers can react
/// differently to, say, a malformed query versus an unavailable store node.
///
/// # Examples
///
/// ```
/// use athena_types::AthenaError;
/// let err = AthenaError::parse("query", "TCP_PORT=!=80");
/// assert!(err.to_string().contains("query"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AthenaError {
    /// Input text could not be parsed as the named kind of value.
    Parse {
        /// What kind of value was being parsed (e.g. `"ipv4"`, `"query"`).
        kind: String,
        /// The offending input.
        input: String,
    },
    /// A message failed wire encoding or decoding.
    Codec(String),
    /// A referenced entity (switch, port, collection, model…) is unknown.
    NotFound {
        /// The entity class (e.g. `"switch"`).
        entity: String,
        /// The identifier that failed to resolve.
        id: String,
    },
    /// An operation was issued against a component in the wrong state.
    InvalidState(String),
    /// A query was syntactically valid but semantically unusable.
    InvalidQuery(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A distributed-store operation failed.
    Store(String),
    /// A compute-cluster job failed.
    Compute(String),
    /// A machine-learning operation failed (bad shapes, no data, …).
    Ml(String),
    /// A detection-model operation failed.
    Model(String),
    /// A persistence (WAL/checkpoint/snapshot) operation failed.
    Persist(String),
    /// Catch-all for everything else.
    Other(String),
}

impl AthenaError {
    /// Creates a [`AthenaError::Parse`] error.
    pub fn parse(kind: impl Into<String>, input: impl Into<String>) -> Self {
        AthenaError::Parse {
            kind: kind.into(),
            input: input.into(),
        }
    }

    /// Creates a [`AthenaError::NotFound`] error.
    pub fn not_found(entity: impl Into<String>, id: impl fmt::Display) -> Self {
        AthenaError::NotFound {
            entity: entity.into(),
            id: id.to_string(),
        }
    }
}

impl fmt::Display for AthenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AthenaError::Parse { kind, input } => {
                write!(f, "invalid {kind} syntax: {input:?}")
            }
            AthenaError::Codec(msg) => write!(f, "codec error: {msg}"),
            AthenaError::NotFound { entity, id } => write!(f, "{entity} not found: {id}"),
            AthenaError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            AthenaError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            AthenaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AthenaError::Store(msg) => write!(f, "store error: {msg}"),
            AthenaError::Compute(msg) => write!(f, "compute error: {msg}"),
            AthenaError::Ml(msg) => write!(f, "ml error: {msg}"),
            AthenaError::Model(msg) => write!(f, "model error: {msg}"),
            AthenaError::Persist(msg) => write!(f, "persist error: {msg}"),
            AthenaError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl StdError for AthenaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(AthenaError, &str)> = vec![
            (AthenaError::parse("ipv4", "999.1.1.1"), "invalid ipv4"),
            (AthenaError::Codec("short buffer".into()), "codec error"),
            (
                AthenaError::not_found("switch", "of:01"),
                "switch not found",
            ),
            (AthenaError::InvalidQuery("empty".into()), "invalid query"),
            (AthenaError::Store("shard down".into()), "store error"),
        ];
        for (err, prefix) in cases {
            assert!(
                err.to_string().starts_with(prefix),
                "{err} should start with {prefix}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<AthenaError>();
    }
}
