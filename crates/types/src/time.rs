//! Virtual time for the discrete-event simulation.
//!
//! All simulated layers (data plane, controller, Athena's feature
//! timestamps) share one microsecond-resolution clock. Virtual time makes
//! every experiment deterministic and lets the compute cluster model a
//! multi-node schedule on a single-core host (see the design document).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of virtual time with microsecond resolution.
///
/// # Examples
///
/// ```
/// use athena_types::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns `true` for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// An instant on the virtual timeline (microseconds since simulation start).
///
/// # Examples
///
/// ```
/// use athena_types::{SimDuration, SimTime};
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(250);
/// assert_eq!(t1 - t0, SimDuration::from_millis(250));
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant, saturating at zero.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_micros())
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_micros(self.0 - rhs.0)
    }
}

/// A shared, monotonically-advancing virtual clock.
///
/// The simulator's event loop advances the clock; every other component
/// (controllers, Athena instances, the store) reads it. Cloning a
/// `VirtualClock` yields a handle to the *same* clock.
///
/// # Examples
///
/// ```
/// use athena_types::{SimDuration, SimTime, VirtualClock};
/// let clock = VirtualClock::new();
/// let handle = clock.clone();
/// clock.advance_to(SimTime::from_secs(3));
/// assert_eq!(handle.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        VirtualClock {
            micros: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Returns the current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::Acquire))
    }

    /// Advances the clock to `t`.
    ///
    /// The clock is monotone: advancing to an instant in the past is a
    /// no-op rather than a rewind.
    pub fn advance_to(&self, t: SimTime) {
        self.micros.fetch_max(t.as_micros(), Ordering::AcqRel);
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance_by(&self, d: SimDuration) -> SimTime {
        let new = self.micros.fetch_add(d.as_micros(), Ordering::AcqRel) + d.as_micros();
        SimTime::from_micros(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_millis(500);
        assert_eq!(a + b, SimDuration::from_millis(1500));
        assert_eq!(a - b, SimDuration::from_millis(500));
        assert_eq!(a * 3, SimDuration::from_secs(3));
        assert_eq!(a / 4, SimDuration::from_millis(250));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        assert_eq!(t + SimDuration::from_secs(5), SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(5), SimTime::from_secs(5));
        assert_eq!(SimTime::from_secs(15) - t, SimDuration::from_secs(5));
        assert_eq!(
            t.saturating_since(SimTime::from_secs(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn clock_is_shared_and_monotone() {
        let clock = VirtualClock::new();
        let other = clock.clone();
        clock.advance_to(SimTime::from_secs(5));
        assert_eq!(other.now(), SimTime::from_secs(5));
        // Rewinds are ignored.
        clock.advance_to(SimTime::from_secs(1));
        assert_eq!(clock.now(), SimTime::from_secs(5));
        let t = other.advance_by(SimDuration::from_secs(1));
        assert_eq!(t, SimTime::from_secs(6));
    }
}
