//! Network addressing primitives: IPv4 and MAC addresses, protocol numbers,
//! EtherTypes, and the canonical [`FiveTuple`] flow key.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::AthenaError;

/// An IPv4 address.
///
/// A minimal, `Copy`, fully-serializable IPv4 wrapper (we avoid
/// `std::net::Ipv4Addr` so the wire codec and the store can treat addresses
/// as plain `u32`s).
///
/// # Examples
///
/// ```
/// use athena_types::Ipv4Addr;
/// let a: Ipv4Addr = "10.0.1.2".parse()?;
/// assert_eq!(a, Ipv4Addr::new(10, 0, 1, 2));
/// assert!(a.in_subnet(Ipv4Addr::new(10, 0, 0, 0), 8));
/// # Ok::<(), athena_types::AthenaError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);
    /// The limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr(u32::MAX);

    /// Creates an address from its four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from a raw big-endian `u32`.
    pub const fn from_raw(raw: u32) -> Self {
        Ipv4Addr(raw)
    }

    /// Returns the raw big-endian `u32` representation.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the four octets of the address.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns `true` if the address falls inside `net/prefix_len`.
    ///
    /// A `prefix_len` of 0 matches every address.
    pub const fn in_subnet(self, net: Ipv4Addr, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - prefix_len as u32);
        (self.0 & mask) == (net.0 & mask)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = AthenaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in s.split('.') {
            if n >= 4 {
                return Err(AthenaError::parse("ipv4", s));
            }
            octets[n] = part
                .parse::<u8>()
                .map_err(|_| AthenaError::parse("ipv4", s))?;
            n += 1;
        }
        if n != 4 {
            return Err(AthenaError::parse("ipv4", s));
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

impl From<u32> for Ipv4Addr {
    fn from(raw: u32) -> Self {
        Ipv4Addr(raw)
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(o: [u8; 4]) -> Self {
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

/// An Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use athena_types::MacAddr;
/// let m = MacAddr::from_host_index(3);
/// assert_eq!(m.to_string(), "02:00:00:00:00:03");
/// assert!(!m.is_broadcast());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast MAC address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates a MAC address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Derives a locally-administered MAC for the `n`th simulated host.
    pub const fn from_host_index(n: u64) -> Self {
        let b = n.to_be_bytes();
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns the six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(o: [u8; 6]) -> Self {
        MacAddr(o)
    }
}

/// An IP protocol number (the subset the simulator generates).
///
/// # Examples
///
/// ```
/// use athena_types::IpProto;
/// assert_eq!(IpProto::Tcp.number(), 6);
/// assert_eq!(IpProto::from_number(17), IpProto::Udp);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum IpProto {
    /// ICMP (protocol 1).
    Icmp,
    /// TCP (protocol 6).
    #[default]
    Tcp,
    /// UDP (protocol 17).
    Udp,
    /// Any other protocol, carried verbatim.
    Other(u8),
}

impl IpProto {
    /// Returns the IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(n) => n,
        }
    }

    /// Creates a protocol from its IANA number.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "ICMP"),
            IpProto::Tcp => write!(f, "TCP"),
            IpProto::Udp => write!(f, "UDP"),
            IpProto::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// An Ethernet frame type.
///
/// # Examples
///
/// ```
/// use athena_types::EtherType;
/// assert_eq!(EtherType::Ipv4.number(), 0x0800);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum EtherType {
    /// IPv4 (0x0800).
    #[default]
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// LLDP (0x88cc) — used by link discovery.
    Lldp,
    /// Any other EtherType, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// Returns the 16-bit EtherType value.
    pub const fn number(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Lldp => 0x88cc,
            EtherType::Other(n) => n,
        }
    }

    /// Creates an EtherType from its 16-bit value.
    pub const fn from_number(n: u16) -> Self {
        match n {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88cc => EtherType::Lldp,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Lldp => write!(f, "LLDP"),
            EtherType::Other(n) => write!(f, "ethertype-{n:#06x}"),
        }
    }
}

/// The canonical 5-tuple identifying a transport flow.
///
/// Athena's stateful features (pair-flow tracking) need the notion of a
/// flow's *reverse*: [`FiveTuple::reversed`] swaps the endpoints, and a flow
/// together with its live reverse constitutes a *pair flow*.
///
/// # Examples
///
/// ```
/// use athena_types::{FiveTuple, IpProto, Ipv4Addr};
/// let ft = FiveTuple::tcp(
///     Ipv4Addr::new(10, 0, 0, 1), 40000,
///     Ipv4Addr::new(10, 0, 0, 2), 80,
/// );
/// assert_eq!(ft.reversed().src_port, 80);
/// assert_eq!(ft.reversed().reversed(), ft);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

impl FiveTuple {
    /// Creates a TCP 5-tuple.
    pub const fn tcp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src,
            dst,
            src_port,
            dst_port,
            proto: IpProto::Tcp,
        }
    }

    /// Creates a UDP 5-tuple.
    pub const fn udp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src,
            dst,
            src_port,
            dst_port,
            proto: IpProto::Udp,
        }
    }

    /// Returns the flow in the opposite direction.
    pub const fn reversed(self) -> Self {
        FiveTuple {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_parse_and_display_roundtrip() {
        let a: Ipv4Addr = "192.168.10.254".parse().unwrap();
        assert_eq!(a.to_string(), "192.168.10.254");
        assert_eq!(a.octets(), [192, 168, 10, 254]);
    }

    #[test]
    fn ipv4_parse_rejects_garbage() {
        assert!("10.0.0".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.0.0".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.300".parse::<Ipv4Addr>().is_err());
        assert!("ten.0.0.1".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn subnet_membership() {
        let a = Ipv4Addr::new(10, 0, 3, 7);
        assert!(a.in_subnet(Ipv4Addr::new(10, 0, 0, 0), 8));
        assert!(a.in_subnet(Ipv4Addr::new(10, 0, 3, 0), 24));
        assert!(!a.in_subnet(Ipv4Addr::new(10, 0, 4, 0), 24));
        assert!(a.in_subnet(Ipv4Addr::UNSPECIFIED, 0));
    }

    #[test]
    fn mac_from_host_index_is_unique_and_local() {
        let a = MacAddr::from_host_index(1);
        let b = MacAddr::from_host_index(2);
        assert_ne!(a, b);
        assert_eq!(a.octets()[0], 0x02);
    }

    #[test]
    fn proto_numbers_roundtrip() {
        for p in [
            IpProto::Icmp,
            IpProto::Tcp,
            IpProto::Udp,
            IpProto::Other(89),
        ] {
            assert_eq!(IpProto::from_number(p.number()), p);
        }
    }

    #[test]
    fn ethertype_numbers_roundtrip() {
        for e in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Lldp,
            EtherType::Other(0x86dd),
        ] {
            assert_eq!(EtherType::from_number(e.number()), e);
        }
    }

    #[test]
    fn five_tuple_reverse_swaps_endpoints() {
        let ft = FiveTuple::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            53,
            Ipv4Addr::new(2, 2, 2, 2),
            5353,
        );
        let r = ft.reversed();
        assert_eq!(r.src, ft.dst);
        assert_eq!(r.dst_port, ft.src_port);
        assert_eq!(r.proto, ft.proto);
    }
}
