//! Environment-flag parsing shared by every crate.
//!
//! Historically each harness read its own flag its own way —
//! `ATHENA_BENCH_SMOKE` was "set at all" (so `=0` still enabled it) while
//! `ATHENA_CHAOS_SMOKE` demanded exactly `"1"`. [`env_flag`] is the single
//! truthy-semantics helper every call site uses instead.

/// Reads an environment variable as a boolean flag.
///
/// A flag is *on* when the variable is set to anything except the usual
/// falsy spellings: empty, `0`, `false`, `off`, or `no` (case-insensitive,
/// surrounding whitespace ignored). Unset means *off*.
///
/// # Examples
///
/// ```
/// use athena_types::env_flag;
///
/// std::env::remove_var("ATHENA_DOC_EXAMPLE");
/// assert!(!env_flag("ATHENA_DOC_EXAMPLE"));
/// std::env::set_var("ATHENA_DOC_EXAMPLE", "1");
/// assert!(env_flag("ATHENA_DOC_EXAMPLE"));
/// std::env::set_var("ATHENA_DOC_EXAMPLE", "0");
/// assert!(!env_flag("ATHENA_DOC_EXAMPLE"));
/// std::env::remove_var("ATHENA_DOC_EXAMPLE");
/// ```
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off" || v == "no")
        }
        Err(_) => false,
    }
}

/// Reads an environment variable as a positive integer, falling back to
/// `default` when the variable is unset, empty, or not a positive
/// number. `ATHENA_THREADS=0` therefore means "use the default", never
/// "no workers".
///
/// # Examples
///
/// ```
/// use athena_types::env_usize;
///
/// std::env::remove_var("ATHENA_DOC_USIZE");
/// assert_eq!(env_usize("ATHENA_DOC_USIZE", 4), 4);
/// std::env::set_var("ATHENA_DOC_USIZE", "7");
/// assert_eq!(env_usize("ATHENA_DOC_USIZE", 4), 7);
/// std::env::remove_var("ATHENA_DOC_USIZE");
/// ```
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().ok().filter(|&n| n > 0).unwrap_or(default),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test mutating one dedicated variable: env vars are process-global,
    // so truthy and falsy spellings are checked sequentially here rather
    // than across parallel tests.
    #[test]
    fn truthy_and_falsy_spellings() {
        const VAR: &str = "ATHENA_ENV_FLAG_TEST";
        std::env::remove_var(VAR);
        assert!(!env_flag(VAR));
        for on in ["1", "true", "yes", "on", "2", "TRUE", " 1 "] {
            std::env::set_var(VAR, on);
            assert!(env_flag(VAR), "{on:?} should enable the flag");
        }
        for off in ["", "0", "false", "off", "no", "FALSE", " 0 "] {
            std::env::set_var(VAR, off);
            assert!(!env_flag(VAR), "{off:?} should disable the flag");
        }
        std::env::remove_var(VAR);
    }
}
