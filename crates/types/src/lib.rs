//! Common identifiers, addresses, virtual time, and error types shared by
//! every crate in the Athena workspace.
//!
//! The Athena framework (Lee et al., DSN 2017) spans a simulated SDN stack:
//! a data plane of OpenFlow switches, a distributed controller cluster, a
//! distributed document store, and a compute cluster. All of those layers
//! agree on the vocabulary defined here:
//!
//! - [`Dpid`], [`PortNo`], [`HostId`], [`LinkId`], [`ControllerId`],
//!   [`AppId`] — newtyped identifiers ([`id`] module),
//! - [`Ipv4Addr`], [`MacAddr`], [`IpProto`], [`EtherType`], [`FiveTuple`] —
//!   network addressing ([`net`] module),
//! - [`SimTime`], [`SimDuration`], [`VirtualClock`] — microsecond-resolution
//!   virtual time used by the discrete-event simulator ([`time`] module),
//! - [`AthenaError`] — the shared error type ([`error`] module).
//!
//! # Examples
//!
//! ```
//! use athena_types::{Dpid, Ipv4Addr, SimTime, SimDuration};
//!
//! let s1 = Dpid::new(1);
//! let host = Ipv4Addr::new(10, 0, 0, 1);
//! let t = SimTime::ZERO + SimDuration::from_secs(5);
//! assert_eq!(format!("{s1} {host}"), "of:0000000000000001 10.0.0.1");
//! assert_eq!(t.as_secs_f64(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod env;
pub mod error;
pub mod id;
pub mod net;
pub mod sentinel;
pub mod time;

pub use env::{env_flag, env_usize};
pub use error::{AthenaError, Result};
pub use id::{AppId, ControllerId, Dpid, FlowId, HostId, LinkId, PortNo, Xid};
pub use net::{EtherType, FiveTuple, IpProto, Ipv4Addr, MacAddr};
pub use time::{SimDuration, SimTime, VirtualClock};
