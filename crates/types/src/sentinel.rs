//! Runtime lock-order sentinel.
//!
//! The static analyzer (`crates/analyze`) derives the workspace's lock
//! acquisition-order graph from the call graph and verifies it against
//! `[analyze] lock_order` in `lint.toml`. That derivation is a sound
//! under-approximation: closures and stoplisted method names are not
//! resolved, so an acquisition order introduced through one of those
//! blind spots would slip past the gate. This module closes the loop at
//! runtime: when `ATHENA_LOCK_SENTINEL=1` (or a test forces it on),
//! every tracked acquisition records an ordered edge from each lock the
//! current thread already holds to the lock being acquired, and
//! [`check_against`] cross-checks the observed edges against the same
//! declared order the static gate verifies.
//!
//! Tracking is name-based: locks are registered under the crate-qualified
//! names the static analyzer derives (`"core/detector"`,
//! `"parallel/deques"`, …), so one declared order serves both checkers.
//! Two instances sharing a name (e.g. every per-collection lock is
//! `"store/coll"`) are treated as one rank; nesting two *different*
//! instances of the same name is deliberately not recorded — the order
//! is per-name, and such nesting is invisible to it. Re-acquiring the
//! *same instance* on one thread is recorded as a self-edge, which
//! [`check_against`] always reports (with `std::sync` primitives it is a
//! guaranteed deadlock).
//!
//! When the sentinel is disabled, [`acquire`] is one relaxed atomic load
//! and the tracked types add a `&'static str` per lock — cheap enough to
//! leave compiled into release builds.

use std::collections::BTreeSet;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, OnceLock, PoisonError};
use std::time::Duration;

/// Global switch: 0 = follow `ATHENA_LOCK_SENTINEL`, 1 = forced on,
/// 2 = forced off. Tests force; production follows the environment.
static FORCE: AtomicU8 = AtomicU8::new(0);
static ENV_ON: OnceLock<bool> = OnceLock::new();

/// Observed acquisition-order edges, global across all threads.
static STATE: std::sync::Mutex<SentinelState> = std::sync::Mutex::new(SentinelState {
    edges: BTreeSet::new(),
});

struct SentinelState {
    /// `(held, acquired)` pairs observed at runtime.
    edges: BTreeSet<(&'static str, &'static str)>,
}

thread_local! {
    /// Stack of `(name, instance address)` locks this thread holds, in
    /// acquisition order.
    static HELD: std::cell::RefCell<Vec<(&'static str, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether acquisition tracking is active.
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_ON.get_or_init(|| crate::env_flag("ATHENA_LOCK_SENTINEL")),
    }
}

/// Overrides the environment gate: `Some(true)` forces tracking on,
/// `Some(false)` off, `None` restores `ATHENA_LOCK_SENTINEL`. For tests.
pub fn force(on: Option<bool>) {
    let v = match on {
        Some(true) => 1,
        Some(false) => 2,
        None => 0,
    };
    FORCE.store(v, Ordering::Relaxed);
}

fn state_guard() -> std::sync::MutexGuard<'static, SentinelState> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Records the acquisition of lock `name` (instance at `addr`) by the
/// current thread. Returns a token that pops the thread's held stack when
/// dropped, or `None` when tracking is disabled.
pub fn acquire(name: &'static str, addr: usize) -> Option<HeldLock> {
    if !enabled() {
        return None;
    }
    HELD.with(|held| {
        let mut stack = held.borrow_mut();
        if !stack.is_empty() {
            let mut st = state_guard();
            for &(held_name, held_addr) in stack.iter() {
                if held_addr == addr {
                    // Same instance re-acquired: a self-deadlock with
                    // std primitives. Record it as a self-edge so
                    // check_against reports it even if the process
                    // somehow survives.
                    st.edges.insert((name, name));
                } else if held_name != name {
                    st.edges.insert((held_name, name));
                }
            }
        }
        stack.push((name, addr));
    });
    Some(HeldLock { name, addr })
}

/// Release token returned by [`acquire`]; dropping it pops the matching
/// entry from the thread's held-lock stack.
pub struct HeldLock {
    name: &'static str,
    addr: usize,
}

impl Drop for HeldLock {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut stack = held.borrow_mut();
            if let Some(i) = stack
                .iter()
                .rposition(|&(n, a)| a == self.addr && n == self.name)
            {
                stack.remove(i);
            }
        });
    }
}

/// Snapshot of every observed `(held, acquired)` edge, sorted.
pub fn edges() -> Vec<(&'static str, &'static str)> {
    state_guard().edges.iter().copied().collect()
}

/// Clears all recorded edges (between test scenarios).
pub fn reset() {
    state_guard().edges.clear();
}

/// Cross-checks the observed edges against a declared total order (the
/// same `[analyze] lock_order` list the static gate verifies). Returns
/// one message per violation: an inverted edge, a self-edge (re-entrant
/// acquisition), or an observed lock missing from the declared order.
pub fn check_against(order: &[String]) -> Vec<String> {
    let st = state_guard();
    let mut out = Vec::new();
    for &(from, to) in &st.edges {
        if from == to {
            out.push(format!(
                "lock `{from}` re-acquired while already held by the same thread"
            ));
            continue;
        }
        let fi = order.iter().position(|n| n == from);
        let ti = order.iter().position(|n| n == to);
        match (fi, ti) {
            (Some(f), Some(t)) if f >= t => out.push(format!(
                "runtime acquisition `{from}` -> `{to}` inverts the declared lock_order \
                 (`{to}` is declared before `{from}`)"
            )),
            (None, _) => out.push(format!(
                "lock `{from}` was acquired at runtime but is not in lock_order"
            )),
            (_, None) => out.push(format!(
                "lock `{to}` was acquired at runtime but is not in lock_order"
            )),
            _ => {}
        }
    }
    out.dedup();
    out
}

/// A mutex (over the in-repo `parking_lot` shim) that reports every
/// acquisition to the sentinel under a fixed crate-qualified name.
pub struct TrackedMutex<T: ?Sized> {
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex. `name` must match the crate-qualified
    /// name the static analyzer derives for this field
    /// (`"<crate>/<field>"`).
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedMutex {
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock, recording an order edge from every lock the
    /// thread already holds.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let held = acquire(self.name, std::ptr::from_ref(self) as *const () as usize);
        TrackedMutexGuard {
            g: self.inner.lock(),
            _held: held,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`TrackedMutex`]. Field order matters: the inner guard
/// releases the lock before `_held` pops the sentinel stack.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    g: parking_lot::MutexGuard<'a, T>,
    _held: Option<HeldLock>,
}

impl<T: ?Sized> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

/// A reader-writer lock (over the `parking_lot` shim) that reports both
/// read and write acquisitions to the sentinel. The order discipline does
/// not distinguish modes — a read/write inversion deadlocks just as well.
pub struct TrackedRwLock<T: ?Sized> {
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked reader-writer lock (see [`TrackedMutex::new`]
    /// for the naming contract).
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedRwLock {
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires a shared read guard, recording the acquisition.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let held = acquire(self.name, std::ptr::from_ref(self) as *const () as usize);
        TrackedReadGuard {
            g: self.inner.read(),
            _held: held,
        }
    }

    /// Tries to acquire a read guard without blocking; the acquisition
    /// is recorded only on success.
    pub fn try_read(&self) -> Option<TrackedReadGuard<'_, T>> {
        let g = self.inner.try_read()?;
        let held = acquire(self.name, std::ptr::from_ref(self) as *const () as usize);
        Some(TrackedReadGuard { g, _held: held })
    }

    /// Acquires an exclusive write guard, recording the acquisition.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let held = acquire(self.name, std::ptr::from_ref(self) as *const () as usize);
        TrackedWriteGuard {
            g: self.inner.write(),
            _held: held,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-read guard for [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    g: parking_lot::RwLockReadGuard<'a, T>,
    _held: Option<HeldLock>,
}

impl<T: ?Sized> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

/// Exclusive-write guard for [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    g: parking_lot::RwLockWriteGuard<'a, T>,
    _held: Option<HeldLock>,
}

impl<T: ?Sized> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

/// Locks a bare `std::sync::Mutex` under a sentinel name, recovering
/// from poisoning. For crates (telemetry, parallel) whose hot paths keep
/// `std` primitives and lock through a poison-recovering helper.
pub fn lock_std<'a, T: ?Sized>(
    m: &'a std::sync::Mutex<T>,
    name: &'static str,
) -> StdMutexGuard<'a, T> {
    let held = acquire(name, std::ptr::from_ref(m) as *const () as usize);
    StdMutexGuard {
        g: m.lock().unwrap_or_else(PoisonError::into_inner),
        _held: held,
    }
}

/// Guard returned by [`lock_std`]. Carries the sentinel token alongside
/// the `std` guard and re-exposes condvar waiting (the token stays put
/// across a wait: the thread is blocked, so it cannot acquire anything
/// out of order while the mutex is temporarily released).
pub struct StdMutexGuard<'a, T: ?Sized> {
    g: std::sync::MutexGuard<'a, T>,
    _held: Option<HeldLock>,
}

impl<'a, T> StdMutexGuard<'a, T> {
    /// Blocks on `cv` until notified, re-acquiring the mutex afterwards.
    pub fn wait(self, cv: &Condvar) -> Self {
        let StdMutexGuard { g, _held } = self;
        StdMutexGuard {
            g: cv.wait(g).unwrap_or_else(PoisonError::into_inner),
            _held,
        }
    }

    /// Blocks on `cv` until notified or `dur` elapses.
    pub fn wait_timeout(self, cv: &Condvar, dur: Duration) -> Self {
        let StdMutexGuard { g, _held } = self;
        let g = match cv.wait_timeout(g, dur) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        };
        StdMutexGuard { g, _held }
    }
}

impl<T: ?Sized> Deref for StdMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> DerefMut for StdMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

/// Read-locks a bare `std::sync::RwLock` under a sentinel name,
/// recovering from poisoning.
pub fn read_std<'a, T: ?Sized>(
    l: &'a std::sync::RwLock<T>,
    name: &'static str,
) -> StdReadGuard<'a, T> {
    let held = acquire(name, std::ptr::from_ref(l) as *const () as usize);
    StdReadGuard {
        g: l.read().unwrap_or_else(PoisonError::into_inner),
        _held: held,
    }
}

/// Guard returned by [`read_std`].
pub struct StdReadGuard<'a, T: ?Sized> {
    g: std::sync::RwLockReadGuard<'a, T>,
    _held: Option<HeldLock>,
}

impl<T: ?Sized> Deref for StdReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers the whole lifecycle: FORCE/STATE/HELD are global,
    // and splitting scenarios across #[test] fns would interleave them.
    #[test]
    fn records_edges_and_detects_inversions() {
        force(Some(true));
        reset();

        let a = TrackedMutex::new("test/a", 0u32);
        let b = TrackedMutex::new("test/b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(edges().contains(&("test/a", "test/b")));

        // Consistent with the declared order: no violations.
        let order = vec!["test/a".to_string(), "test/b".to_string()];
        assert!(check_against(&order).is_empty());

        // Inverted declaration: the same edge is now a violation.
        let inverted = vec!["test/b".to_string(), "test/a".to_string()];
        let v = check_against(&inverted);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("inverts"), "{v:?}");

        // Undeclared participant.
        let partial = vec!["test/a".to_string()];
        assert!(check_against(&partial)[0].contains("not in lock_order"));

        // Stack pops: with a and b released, acquiring b then a records
        // the reverse edge too.
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        assert!(edges().contains(&("test/b", "test/a")));

        // RwLock + std helpers record under their names as well.
        reset();
        let rw = TrackedRwLock::new("test/rw", 1u32);
        let m = std::sync::Mutex::new(2u32);
        {
            let _gr = rw.read();
            let _gm = lock_std(&m, "test/std");
        }
        assert!(edges().contains(&("test/rw", "test/std")));

        // Disabled: nothing is recorded.
        reset();
        force(Some(false));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(edges().is_empty());
        force(None);
    }
}
