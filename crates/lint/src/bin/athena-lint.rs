//! Command-line entry point for the static-analysis gate.
//!
//! Usage: `cargo run -p athena-lint [-- --root <dir>]`
//!
//! Prints `file:line:col` diagnostics and exits non-zero when any
//! error-severity violation (or stale allowlist entry) is found.

use std::path::PathBuf;
use std::process::ExitCode;

use athena_lint::Severity;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("athena-lint: static-analysis gate for the Athena workspace");
                println!("usage: athena-lint [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("athena-lint: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| athena_lint::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("athena-lint: no lint.toml found above the current directory");
            return ExitCode::FAILURE;
        }
    };

    let report = match athena_lint::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("athena-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    for s in &report.stale_allows {
        println!("lint.toml: error[stale-allow]: {s}");
    }

    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
        + report.stale_allows.len();
    let warnings = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    println!(
        "athena-lint: {} files scanned, {errors} error(s), {warnings} warning(s)",
        report.files_scanned
    );

    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
