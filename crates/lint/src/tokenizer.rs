//! A lightweight Rust tokenizer for lint rules.
//!
//! This is not a full lexer: it produces just enough structure for the
//! static-analysis rules — identifiers, punctuation, and brace nesting —
//! while guaranteeing that the *contents* of comments, string literals,
//! char literals, and raw strings never surface as tokens. A second pass
//! marks tokens inside `#[cfg(test)]` items and `mod tests { … }` blocks
//! so rules can skip test-only code.

/// Kinds of tokens the lint rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers: `r#type` is one
    /// `Ident` token with text `type`).
    Ident,
    /// A numeric literal (value not retained precisely).
    Number,
    /// A string/char/raw-string literal (contents dropped).
    Literal,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`), text without
    /// the quote. Kept distinct from `Ident` so generic-parameter and
    /// reference positions parse unambiguously.
    Lifetime,
    /// Any single punctuation character (`.`, `!`, `[`, `{`, …).
    Punct(char),
    /// `::` (kept distinct so paths are easy to match).
    PathSep,
    /// `->` return-type arrow.
    Arrow,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Identifier text (empty for punctuation and literals).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte offset within the line).
    pub col: u32,
    /// Brace-nesting depth *after* processing this token's effect.
    pub depth: u32,
    /// True when the token sits inside `#[cfg(test)]` or `mod tests`.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenizes `source`, dropping comment and literal contents and marking
/// test-only regions.
///
/// Never panics: unterminated literals or comments simply consume the
/// rest of the input.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut tokens = raw_tokens(source);
    mark_test_regions(&mut tokens);
    tokens
}

fn raw_tokens(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut depth: u32 = 0;

    // Advances a cursor over `n` bytes, updating line/col.
    macro_rules! advance {
        ($n:expr) => {{
            let n = $n;
            for _ in 0..n {
                if i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        let rest = &source[i..];

        // Whitespace.
        if b.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (also covers doc comments).
        if rest.starts_with("//") {
            let len = rest.find('\n').unwrap_or(rest.len());
            advance!(len);
            continue;
        }

        // Block comment, nested per Rust rules.
        if rest.starts_with("/*") {
            let mut nest = 0usize;
            let mut j = 0usize;
            let rb = rest.as_bytes();
            while j < rb.len() {
                if rb[j..].starts_with(b"/*") {
                    nest += 1;
                    j += 2;
                } else if rb[j..].starts_with(b"*/") {
                    nest -= 1;
                    j += 2;
                    if nest == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            advance!(j.max(2));
            continue;
        }

        // Raw strings: r"…", r#"…"#, and byte variants br…
        if let Some(len) = raw_string_len(rest) {
            tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(len);
            continue;
        }

        // Plain string / byte string.
        if b == b'"' || (b == b'b' && rest.len() > 1 && rest.as_bytes()[1] == b'"') {
            let quote_at = if b == b'"' { 0 } else { 1 };
            let len = quoted_len(&rest[quote_at..], '"') + quote_at;
            tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(len);
            continue;
        }

        // Byte char literal: b'x' / b'\n'.
        if b == b'b' && rest.len() > 1 && rest.as_bytes()[1] == b'\'' {
            if let Some(len) = char_literal_len(&rest[1..]) {
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col,
                    depth,
                    in_test: false,
                });
                advance!(len + 1);
                continue;
            }
        }

        // Char literal — only when it cannot be a lifetime. A char literal
        // is 'x' or an escape; a lifetime is 'ident not followed by '.
        if b == b'\'' {
            if let Some(len) = char_literal_len(rest) {
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col,
                    depth,
                    in_test: false,
                });
                advance!(len);
                continue;
            }
            // Lifetime or loop label: one token, text without the quote.
            let len = rest[1..]
                .bytes()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
                .count();
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: rest[1..1 + len].to_string(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(1 + len);
            continue;
        }

        // Raw identifier: r#type → one Ident token with text `type`.
        // (Raw *strings* were consumed above, so a `r#` here is always an
        // identifier escape.)
        if rest.starts_with("r#")
            && rest
                .as_bytes()
                .get(2)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
        {
            let len = rest[2..]
                .bytes()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
                .count();
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: rest[2..2 + len].to_string(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(2 + len);
            continue;
        }

        // Identifier / keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            let len = rest
                .bytes()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
                .count();
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: rest[..len].to_string(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(len);
            continue;
        }

        // Number (loose: digits plus any alphanumeric/underscore/dot tail,
        // which swallows suffixes and float forms; `1.0e-3` splits at `-`,
        // which is fine for linting).
        if b.is_ascii_digit() {
            let mut len = 0usize;
            let rb = rest.as_bytes();
            while len < rb.len()
                && (rb[len].is_ascii_alphanumeric()
                    || rb[len] == b'_'
                    || (rb[len] == b'.' && len + 1 < rb.len() && rb[len + 1].is_ascii_digit()))
            {
                len += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: String::new(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(len);
            continue;
        }

        // Multi-char punctuation we keep intact.
        if rest.starts_with("::") {
            tokens.push(Token {
                kind: TokenKind::PathSep,
                text: String::new(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(2);
            continue;
        }
        if rest.starts_with("->") {
            tokens.push(Token {
                kind: TokenKind::Arrow,
                text: String::new(),
                line,
                col,
                depth,
                in_test: false,
            });
            advance!(2);
            continue;
        }

        // Single punctuation; braces adjust depth.
        let c = rest.chars().next().unwrap_or('\0');
        if c == '{' {
            depth += 1;
        }
        let tok_depth = depth;
        if c == '}' {
            depth = depth.saturating_sub(1);
        }
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: String::new(),
            line,
            col,
            depth: tok_depth,
            in_test: false,
        });
        advance!(c.len_utf8());
    }

    tokens
}

/// Length of a raw (byte) string starting at `rest`, if one starts here.
fn raw_string_len(rest: &str) -> Option<usize> {
    let after_b = rest.strip_prefix('b').unwrap_or(rest);
    let stripped = after_b.strip_prefix('r')?;
    let hashes = stripped.bytes().take_while(|b| *b == b'#').count();
    let body = &stripped[hashes..];
    if !body.starts_with('"') {
        return None;
    }
    let prefix_len = (rest.len() - after_b.len()) + 1 + hashes + 1;
    let terminator = format!("\"{}", "#".repeat(hashes));
    match body[1..].find(&terminator) {
        Some(pos) => Some(prefix_len + pos + terminator.len()),
        None => Some(rest.len()), // Unterminated: consume everything.
    }
}

/// Length of a quoted literal starting at a quote, honoring backslash
/// escapes. Returns the full length including both quotes.
fn quoted_len(rest: &str, quote: char) -> usize {
    let rb = rest.as_bytes();
    let mut j = 1usize;
    while j < rb.len() {
        match rb[j] {
            b'\\' => j += 2,
            b if b == quote as u8 => return j + 1,
            _ => j += 1,
        }
    }
    rest.len()
}

/// Length of a char literal at `rest` (starting with `'`), or `None` when
/// this is a lifetime instead.
fn char_literal_len(rest: &str) -> Option<usize> {
    let rb = rest.as_bytes();
    if rb.len() < 2 {
        return None;
    }
    if rb[1] == b'\\' {
        // Escaped char: same scan as a quoted string.
        return Some(quoted_len(rest, '\''));
    }
    // 'x' — a closing quote right after one char (of any UTF-8 width).
    let mut chars = rest[1..].char_indices();
    let (_, _first) = chars.next()?;
    if let Some((off, '\'')) = chars.next() {
        return Some(1 + off + 1);
    }
    None
}

/// Marks tokens inside `#[cfg(test)]` items and `mod tests { … }` blocks.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut k = 0usize;
    while k < tokens.len() {
        if let Some(block_start) = test_region_start(tokens, k) {
            if let Some(end) = end_of_brace_block(tokens, block_start) {
                for t in &mut tokens[k..=end] {
                    t.in_test = true;
                }
                k = end + 1;
                continue;
            }
            // No block (e.g. `#[cfg(test)]` on a `use`): mark to the next
            // semicolon.
            let end = tokens[k..]
                .iter()
                .position(|t| t.is_punct(';'))
                .map_or(tokens.len() - 1, |p| k + p);
            for t in &mut tokens[k..=end] {
                t.in_test = true;
            }
            k = end + 1;
            continue;
        }
        k += 1;
    }
}

/// When a test-only region starts at token `k`, returns the index at which
/// to begin searching for its opening brace.
fn test_region_start(tokens: &[Token], k: usize) -> Option<usize> {
    // #[cfg(test)] — seven tokens: # [ cfg ( test ) ]
    if tokens[k].is_punct('#')
        && tokens.len() > k + 6
        && tokens[k + 1].is_punct('[')
        && tokens[k + 2].is_ident("cfg")
        && tokens[k + 3].is_punct('(')
        && tokens[k + 4].is_ident("test")
        && tokens[k + 5].is_punct(')')
        && tokens[k + 6].is_punct(']')
    {
        return Some(k + 7);
    }
    // mod tests { … } (any module literally named `tests`).
    if tokens[k].is_ident("mod") && tokens.len() > k + 1 && tokens[k + 1].is_ident("tests") {
        return Some(k + 2);
    }
    None
}

/// Index of the `}` closing the first `{` found at or after `from`,
/// skipping at most a few tokens of item header. Returns `None` when no
/// block opens nearby (e.g. `mod tests;` or an attribute on a field).
fn end_of_brace_block(tokens: &[Token], from: usize) -> Option<usize> {
    let mut j = from;
    // Scan forward to the opening brace, giving up at a `;` (item without
    // a body) so `#[cfg(test)] use …;` doesn't swallow the next item.
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('{') {
            break;
        }
        if t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    let open_depth = tokens[j].depth;
    let mut k = j + 1;
    while k < tokens.len() {
        if tokens[k].is_punct('}') && tokens[k].depth == open_depth {
            return Some(k);
        }
        k += 1;
    }
    Some(tokens.len() - 1)
}
