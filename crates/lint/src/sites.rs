//! Shared site extraction: the token-level pattern matchers used both by
//! the file-local rules in [`crate::rules`] and by the whole-workspace
//! call-graph analysis in `athena-analyze`.
//!
//! Everything here is purely syntactic — no name resolution, no
//! cross-file state. The analysis layers decide what a site *means*
//! (hot-reachable, held across a call, …); this module only finds them.

use crate::tokenizer::{Token, TokenKind};

/// Keywords that may directly precede a `[` without it being indexing
/// (array literals, types, and expression starts).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "dyn", "else", "enum", "fn", "for", "if", "impl", "in", "let",
    "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "trait",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// Methods whose iteration order over a hash container is
/// nondeterministic.
pub const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// One matched site: the token it anchors to plus the message to report.
#[derive(Debug, Clone)]
pub struct Site {
    /// Index into the token stream.
    pub token: usize,
    /// Human-readable description.
    pub message: String,
}

/// Panicking constructs: `unwrap`/`expect` method calls, `panic!`-family
/// macros, and `expr[…]` indexing (which panics out of bounds). Test
/// tokens are skipped.
pub fn panic_sites(tokens: &[Token]) -> Vec<Site> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
                let next_open = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if prev_dot && next_open && (t.text == "unwrap" || t.text == "expect") {
                    out.push(Site {
                        token: i,
                        message: format!(".{}() can panic; return a typed error instead", t.text),
                    });
                } else if next_bang && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                {
                    out.push(Site {
                        token: i,
                        message: format!("{}! is banned in hot-path code", t.text),
                    });
                }
            }
            TokenKind::Punct('[') => {
                if let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) {
                    let indexes_expr = match prev.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                        _ => false,
                    };
                    if indexes_expr {
                        out.push(Site {
                            token: i,
                            message: "slice/map indexing panics out of bounds; use .get()"
                                .to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Hash-container iteration sites: `.iter()`-family calls on identifiers
/// declared as `HashMap`/`HashSet` in this file, and bare `for … in map`
/// loops over them.
///
/// Only receivers rooted at `self` or bare locals are flagged: a path
/// like `topology.switches` names a *different* struct's field, which
/// merely collides with a hash-container name declared here.
pub fn unordered_iter_sites(tokens: &[Token]) -> Vec<Site> {
    let declared = hash_container_names(tokens);
    if declared.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        // `name.iter()` / `.keys()` / `.values_mut()` …
        if declared.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == TokenKind::Ident && UNORDERED_ITER_METHODS.contains(&n.text.as_str())
            })
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
            && rooted_at_self_or_bare(tokens, i)
        {
            out.push(Site {
                token: i + 2,
                message: format!(
                    "iterating hash container `{}` in a hot path is order-nondeterministic; \
                     sort the results or use an ordered structure",
                    t.text
                ),
            });
        }
        // `for … in [&[mut]] path.to.name {`
        if t.text == "in" {
            if let Some((name, rooted)) = bare_loop_target(tokens, i + 1) {
                if rooted && declared.contains(&name) {
                    out.push(Site {
                        token: i,
                        message: format!(
                            "for-loop over hash container `{name}` in a hot path is \
                             order-nondeterministic; sort the results or use an ordered \
                             structure"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Whether the field-access chain ending at `ident` starts at `self` or
/// is a bare local (`m.iter()` yes, `self.map.iter()` yes,
/// `topology.switches` no — that is someone else's field).
fn rooted_at_self_or_bare(tokens: &[Token], ident: usize) -> bool {
    let mut j = ident;
    while j >= 2 && tokens[j - 1].is_punct('.') && tokens[j - 2].kind == TokenKind::Ident {
        j -= 2;
    }
    if j == ident {
        // Bare — unless the "receiver" is a call/index result.
        return !(j > 0
            && (tokens[j - 1].is_punct('.') || tokens[j - 1].kind == TokenKind::PathSep));
    }
    tokens[j].is_ident("self")
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type
/// (field/let annotations, possibly `&`-qualified or path-qualified) or
/// bound from a `HashMap::…` constructor call.
pub fn hash_container_names(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2
            && tokens[j - 1].kind == TokenKind::PathSep
            && tokens[j - 2].kind == TokenKind::Ident
        {
            j -= 2;
        }
        // Skip reference/mutability qualifiers in the type position.
        let mut k = j;
        while k > 0 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
            k -= 1;
        }
        let name = match (
            k.checked_sub(2).map(|p| &tokens[p]),
            k.checked_sub(1).map(|p| &tokens[p]),
        ) {
            // `name: HashMap<…>` (field, param, or annotated let).
            (Some(n), Some(c)) if c.is_punct(':') && n.kind == TokenKind::Ident => Some(&n.text),
            // `name = HashMap::new()` style bindings.
            (Some(n), Some(eq)) if eq.is_punct('=') && n.kind == TokenKind::Ident => Some(&n.text),
            _ => None,
        };
        if let Some(name) = name {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    }
    out
}

/// For a `for … in <expr> {` loop, returns the final identifier of the
/// iterated expression and whether the path is rooted at `self` or a bare
/// local — `None` for anything with calls, ranges, or other operators,
/// which either iterate deterministically or are flagged at their
/// method-call site instead.
pub fn bare_loop_target(tokens: &[Token], mut j: usize) -> Option<(String, bool)> {
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    let mut path: Vec<String> = Vec::new();
    loop {
        let t = tokens.get(j)?;
        match t.kind {
            TokenKind::Ident => {
                path.push(t.text.clone());
                j += 1;
            }
            TokenKind::Punct('.') | TokenKind::PathSep => j += 1,
            TokenKind::Punct('{') => {
                let name = path.last()?.clone();
                let rooted = path.len() == 1 || path[0] == "self";
                return Some((name, rooted));
            }
            _ => return None,
        }
    }
}

/// One lock acquisition found in the token stream.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Index of the token starting the acquisition: the `.` of
    /// `.lock()`/`.read()`/`.write()`, or the helper identifier of a
    /// `lock(&…)` helper call.
    pub at: usize,
    /// Index just past the acquisition call's closing `)`.
    pub end: usize,
    /// Coarse lock name: the receiver's (or helper argument's) final
    /// field/variable identifier.
    pub name: String,
}

/// Finds lock-acquisition sites: `.lock()` / `.read()` / `.write()`
/// method calls with empty argument lists, plus calls to the configured
/// poison-recovering helper functions (`helpers`), whose first argument
/// names the lock (`lock(&self.deques[id])` → `deques`).
pub fn find_acquisitions(tokens: &[Token], helpers: &[String]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `.lock()` / `.read()` / `.write()`
        if tokens[i].is_punct('.') {
            let is_acquire = tokens
                .get(i + 1)
                .is_some_and(|t| matches!(t.text.as_str(), "lock" | "read" | "write"));
            if is_acquire
                && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                out.push(Acquisition {
                    at: i,
                    end: i + 4,
                    name: receiver_name(tokens, i),
                });
            }
            continue;
        }
        // `helper(&path.to.lock, …)`
        if tokens[i].kind == TokenKind::Ident
            && helpers.iter().any(|h| h == &tokens[i].text)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            // Not a definition (`fn lock(`), method call (`.lock(` was
            // handled above and plain-method `x.lock(arg)` is not an
            // acquisition), or qualified path we can't attribute.
            let prev = i.checked_sub(1).map(|p| &tokens[p]);
            let skip = prev.is_some_and(|p| p.is_ident("fn") || p.is_punct('.'));
            if skip {
                continue;
            }
            let Some(close) = matching_paren(tokens, i + 1) else {
                continue;
            };
            out.push(Acquisition {
                at: i,
                end: close + 1,
                name: helper_arg_name(tokens, i + 1),
            });
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(open + off);
            }
        }
    }
    None
}

/// The lock name in a helper call's first argument: the final path
/// identifier, skipping `&`/`mut`, index-bracket contents, and tuple
/// field numbers (`lock(&self.deques[id])` → `deques`,
/// `lock(&pending.0)` → `pending`).
fn helper_arg_name(tokens: &[Token], open: usize) -> String {
    let mut j = open + 1;
    let mut paren = 1i32;
    let mut last: Option<String> = None;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            TokenKind::Punct(',') if paren == 1 => break,
            TokenKind::Punct('[') => {
                // Skip index expressions: they do not name the lock.
                let mut brackets = 1i32;
                while brackets > 0 {
                    j += 1;
                    match tokens.get(j) {
                        Some(u) if u.is_punct('[') => brackets += 1,
                        Some(u) if u.is_punct(']') => brackets -= 1,
                        Some(_) => {}
                        None => return last.unwrap_or_else(|| "<expr>".to_string()),
                    }
                }
            }
            TokenKind::Ident if t.text != "mut" => last = Some(t.text.clone()),
            _ => {}
        }
        j += 1;
    }
    last.unwrap_or_else(|| "<expr>".to_string())
}

/// The identifier naming the lock: the last field/variable in the
/// receiver chain (`self.runtime.reactor.lock()` → `reactor`,
/// `s.pending.0.lock()` → `pending`).
pub fn receiver_name(tokens: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match tokens[j].kind {
            TokenKind::Ident => return tokens[j].text.clone(),
            TokenKind::Number => continue,
            // Skip a call's argument list: find its opening paren.
            TokenKind::Punct(')') => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if tokens[j].is_punct(')') {
                        depth += 1;
                    } else if tokens[j].is_punct('(') {
                        depth -= 1;
                    }
                }
            }
            // Skip an index expression: `deques[id].lock()` → `deques`.
            TokenKind::Punct(']') => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if tokens[j].is_punct(']') {
                        depth += 1;
                    } else if tokens[j].is_punct('[') {
                        depth -= 1;
                    }
                }
            }
            _ => return "<expr>".to_string(),
        }
    }
    "<expr>".to_string()
}

/// Token index (exclusive) until which the acquisition's guard is held.
///
/// Three statement shapes matter:
///
/// - `let g = ….lock();` — a named guard lives to the end of the
///   enclosing block.
/// - `if let Some(x) = ….lock().pop() { … } else { … }` — a temporary
///   born in a control-flow header lives through the whole statement,
///   *including* the body block and any `else` chain (Rust keeps
///   condition temporaries alive until the end of the `if`).
/// - `….lock().push(x);` — any other temporary (including a chained
///   `let v = ….lock().take();`) dies at the end of its statement.
pub fn guard_extent(tokens: &[Token], acq: &Acquisition) -> usize {
    let depth = tokens[acq.at].depth;
    let stmt_start = statement_start(tokens, acq.at);
    let first = &tokens[stmt_start];

    if first.is_ident("let") && !tokens.get(acq.end).is_some_and(|t| t.is_punct('.')) {
        // Named guard: lives to the end of the enclosing block. When the
        // acquisition is chained onward (`let v = m.lock().take();`) the
        // binding holds the *result*, not the guard — the guard is a
        // temporary and dies at the statement end below.
        for (off, t) in tokens[acq.end..].iter().enumerate() {
            if t.is_punct('}') && t.depth == depth {
                return acq.end + off;
            }
        }
        return tokens.len();
    }

    if matches!(
        first.text.as_str(),
        "if" | "while" | "match" | "for" | "else"
    ) && first.kind == TokenKind::Ident
    {
        return control_statement_end(tokens, acq.end, depth);
    }

    // Plain temporary: dies at the end of the statement.
    for (off, t) in tokens[acq.end..].iter().enumerate() {
        if (t.is_punct(';') || t.is_punct('}')) && t.depth == depth {
            return acq.end + off;
        }
    }
    tokens.len()
}

/// End (exclusive) of a control-flow statement whose header starts
/// before `from` at brace depth `depth`: scans to the body block (the
/// first `{` one level deeper), across its matching `}`, and through any
/// `else`/`else if` continuation.
fn control_statement_end(tokens: &[Token], from: usize, depth: u32) -> usize {
    let mut j = from;
    loop {
        // Find the body's opening brace (or give up at a terminator).
        loop {
            match tokens.get(j) {
                None => return tokens.len(),
                Some(t) if t.is_punct('{') && t.depth == depth + 1 => break,
                Some(t) if (t.is_punct(';') || t.is_punct('}')) && t.depth == depth => {
                    return j;
                }
                Some(_) => j += 1,
            }
        }
        // Skip to the matching close.
        j += 1;
        loop {
            match tokens.get(j) {
                None => return tokens.len(),
                Some(t) if t.is_punct('}') && t.depth == depth + 1 => break,
                Some(_) => j += 1,
            }
        }
        // `else` / `else if` continues the statement.
        match tokens.get(j + 1) {
            Some(t) if t.is_ident("else") => j += 2,
            _ => return j + 1,
        }
    }
}

/// The variable a `let` guard is bound to, when the acquisition's
/// statement is a `let` binding of a plain identifier.
pub fn guard_variable(tokens: &[Token], acq: &Acquisition) -> Option<String> {
    let stmt_start = statement_start(tokens, acq.at);
    if !tokens.get(stmt_start)?.is_ident("let") {
        return None;
    }
    let mut j = stmt_start + 1;
    while tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    tokens
        .get(j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Index of the first token of the statement containing `at`.
pub fn statement_start(tokens: &[Token], at: usize) -> usize {
    let mut j = at;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j;
        }
        j -= 1;
    }
    0
}

/// Whether the tokens at `k` are a `drop(…)` call whose argument list
/// contains the identifier `var` — covers both `drop(guard)` and the
/// tuple form `drop((a, guard, c))`.
pub fn drop_releases(tokens: &[Token], k: usize, var: &str) -> bool {
    if !(tokens[k].is_ident("drop") && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))) {
        return false;
    }
    let Some(close) = matching_paren(tokens, k + 1) else {
        return false;
    };
    tokens[k + 2..close].iter().any(|t| t.is_ident(var))
}
